//! CleanLab as a *repair* method (Table 1 row 16): relabelling. Detected
//! label cells are replaced by the prediction of a classifier trained on
//! the rows whose labels were not flagged.

use rein_data::{CellMask, Value};
use rein_ml::encode::{select_matrix_rows, Encoder, LabelMap};
use rein_ml::forest::{ForestParams, RandomForestClassifier};
use rein_ml::model::Classifier;

use crate::context::{RepairContext, RepairOutcome, Repairer};

/// CleanLab relabeller.
#[derive(Debug, Default, Clone)]
pub struct CleanLabRepair;

impl Repairer for CleanLabRepair {
    fn name(&self) -> &'static str {
        "cleanlab"
    }

    fn repair(&self, ctx: &RepairContext<'_>) -> RepairOutcome {
        let _span = rein_telemetry::span("repair:cleanlab");
        let t = ctx.dirty;
        let det = ctx.detections;
        let mut table = t.clone();
        let mut repaired = CellMask::new(t.n_rows(), t.n_cols());
        let Some(label_col) = ctx.label_col else {
            return RepairOutcome::repaired(table, repaired);
        };
        if det.count_col(label_col) == 0 {
            return RepairOutcome::repaired(table, repaired);
        }
        let feature_cols: Vec<usize> = (0..t.n_cols()).filter(|&c| c != label_col).collect();
        let labels = LabelMap::fit([t], label_col);
        if labels.n_classes() < 2 || feature_cols.is_empty() {
            return RepairOutcome::repaired(table, repaired);
        }
        let encoder = Encoder::fit(t, &feature_cols);
        let x = encoder.transform(t);
        let (rows, y) = labels.encode(t, label_col);
        let trusted: Vec<(usize, usize)> = rows
            .iter()
            .zip(&y)
            .filter(|(r, _)| !det.get(**r, label_col))
            .map(|(&r, &v)| (r, v))
            .collect();
        if trusted.len() < 10 {
            return RepairOutcome::repaired(table, repaired);
        }
        let tr_rows: Vec<usize> = trusted.iter().map(|(r, _)| *r).collect();
        let tr_y: Vec<usize> = trusted.iter().map(|(_, v)| *v).collect();
        let xs = select_matrix_rows(&x, &tr_rows);
        let mut model = RandomForestClassifier::new(
            ForestParams { n_trees: 20, ..Default::default() },
            ctx.seed,
        );
        model.fit(&xs, &tr_y, labels.n_classes());

        let flagged: Vec<usize> = (0..t.n_rows()).filter(|&r| det.get(r, label_col)).collect();
        let xf = select_matrix_rows(&x, &flagged);
        let preds = model.predict(&xf);
        for (local, &row) in flagged.iter().enumerate() {
            let new_label = Value::parse(labels.name_of(preds[local]));
            if &new_label != t.cell(row, label_col) {
                table.set_cell(row, label_col, new_label);
                repaired.set(row, label_col, true);
            }
        }
        RepairOutcome::repaired(table, repaired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::diff::diff_mask;
    use rein_data::{ColumnMeta, ColumnType, Schema, Table};

    fn dataset() -> (Table, Table, CellMask) {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("y", ColumnType::Str).label(),
        ]);
        let clean = Table::from_rows(
            schema,
            (0..100)
                .map(|i| {
                    let pos = i % 2 == 0;
                    vec![
                        Value::Float(if pos { 10.0 } else { -10.0 } + (i % 5) as f64 * 0.1),
                        Value::str(if pos { "pos" } else { "neg" }),
                    ]
                })
                .collect(),
        );
        let mut dirty = clean.clone();
        for r in [4usize, 17, 62, 81] {
            let cur = dirty.cell(r, 1).to_string();
            dirty.set_cell(r, 1, Value::str(if cur == "pos" { "neg" } else { "pos" }));
        }
        let det = diff_mask(&clean, &dirty);
        (clean, dirty, det)
    }

    #[test]
    fn relabels_flagged_cells_correctly() {
        let (clean, dirty, det) = dataset();
        let ctx = RepairContext { label_col: Some(1), ..RepairContext::new(&dirty, &det) };
        let out = CleanLabRepair.repair(&ctx);
        let t = out.table().unwrap();
        for r in [4usize, 17, 62, 81] {
            assert_eq!(t.cell(r, 1), clean.cell(r, 1), "row {r}");
        }
    }

    #[test]
    fn without_label_column_nothing_happens() {
        let (_, dirty, det) = dataset();
        let out = CleanLabRepair.repair(&RepairContext::new(&dirty, &det));
        assert_eq!(out.table().unwrap(), &dirty);
    }

    #[test]
    fn feature_detections_do_not_trigger_relabelling() {
        let (_, dirty, _) = dataset();
        let mut det = CellMask::new(dirty.n_rows(), dirty.n_cols());
        det.set(3, 0, true); // feature cell, not label
        let ctx = RepairContext { label_col: Some(1), ..RepairContext::new(&dirty, &det) };
        let out = CleanLabRepair.repair(&ctx);
        assert_eq!(out.table().unwrap(), &dirty);
    }
}
