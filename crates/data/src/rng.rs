//! Shared randomness helpers.
//!
//! `rand` (0.10) provides uniform sampling; the Gaussian draws used across
//! the workspace (noise injection, synthetic data, weight init, GMMs) are
//! provided here via Box–Muller so no extra distribution crate is needed.

use std::sync::OnceLock;

use rand::Rng;
use rein_telemetry::Counter;

/// Cached handle onto the global `rng_draws` counter: draws are hot
/// enough that a registry lookup per call would dominate.
fn draws() -> &'static Counter {
    static DRAWS: OnceLock<Counter> = OnceLock::new();
    DRAWS.get_or_init(|| rein_telemetry::counter("rng_draws"))
}

/// One standard-normal draw (Box–Muller, fresh pair each call).
pub fn randn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    draws().incr();
    // u1 in (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal draw with the given mean and standard deviation.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * randn(rng)
}

/// Samples an index from unnormalised non-negative weights.
///
/// Falls back to uniform sampling when all weights are zero or non-finite.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weighted_index on empty weights");
    draws().incr();
    let total: f64 = weights.iter().copied().filter(|w| w.is_finite() && *w > 0.0).sum();
    if total <= 0.0 {
        return rng.random_range(0..weights.len());
    }
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w.is_finite() && w > 0.0 {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
    }
    weights.len() - 1
}

/// Derives a child seed from a parent seed and a stream id, so parallel
/// components get decorrelated but reproducible randomness (SplitMix64 mix).
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn gaussian_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..10_000).map(|_| gaussian(&mut rng, 10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.1);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = [0usize; 3];
        for _ in 0..6000 {
            hits[weighted_index(&mut rng, &[1.0, 0.0, 2.0])] += 1;
        }
        assert_eq!(hits[1], 0);
        assert!(hits[2] > hits[0]);
        // roughly 2:1
        let ratio = hits[2] as f64 / hits[0] as f64;
        assert!((1.6..2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn weighted_index_degenerate_weights_fall_back_to_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[weighted_index(&mut rng, &[0.0, 0.0, 0.0])] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, derive_seed(42, 0));
    }
}
