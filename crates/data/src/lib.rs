//! # rein-data
//!
//! Tabular data substrate for the REIN benchmark: dynamically typed cell
//! [`Value`]s, columnar [`Table`]s with [`Schema`]s, cell [`CellMask`]s for
//! detection/repair footprints, a CSV codec, ground-truth [`diff`]ing, and
//! seeded [`split`]ting utilities.
//!
//! This crate replaces the Pandas + PostgreSQL layer of the original Python
//! benchmark; everything above (error injection, detectors, repairs, models)
//! speaks these types.

pub mod csv;
pub mod diff;
pub mod mask;
pub mod metadata;
pub mod profile;
pub mod rng;
pub mod schema;
pub mod split;
pub mod table;
pub mod value;

pub use mask::CellMask;
pub use metadata::{DatasetInfo, ErrorProfile, ErrorType, MlTask};
pub use profile::{profile, profile_column, ColumnProfile};
pub use schema::{ColumnMeta, ColumnRole, ColumnType, Schema};
pub use table::{CellRef, Table};
pub use value::Value;

#[cfg(test)]
mod proptests {
    use crate::csv;
    use crate::mask::CellMask;
    use crate::table::CellRef;
    use crate::value::Value;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            (-1e12f64..1e12).prop_map(Value::float),
            "[a-zA-Z0-9 _-]{0,12}".prop_map(|s| Value::parse(&s)),
            any::<bool>().prop_map(Value::Bool),
        ]
    }

    proptest! {
        #[test]
        fn value_total_cmp_is_total_order(a in arb_value(), b in arb_value(), c in arb_value()) {
            use std::cmp::Ordering;
            // antisymmetry
            prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
            // transitivity (spot check)
            if a.total_cmp(&b) == Ordering::Less && b.total_cmp(&c) == Ordering::Less {
                prop_assert_eq!(a.total_cmp(&c), Ordering::Less);
            }
            // reflexivity
            prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
        }

        #[test]
        fn value_eq_implies_hash_eq(a in arb_value(), b in arb_value()) {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            if a == b {
                let mut ha = DefaultHasher::new();
                let mut hb = DefaultHasher::new();
                a.hash(&mut ha);
                b.hash(&mut hb);
                prop_assert_eq!(ha.finish(), hb.finish());
            }
        }

        #[test]
        fn mask_union_intersect_laws(
            cells_a in prop::collection::vec((0usize..20, 0usize..7), 0..40),
            cells_b in prop::collection::vec((0usize..20, 0usize..7), 0..40),
        ) {
            let a = CellMask::from_cells(20, 7, cells_a.iter().map(|&(r, c)| CellRef::new(r, c)));
            let b = CellMask::from_cells(20, 7, cells_b.iter().map(|&(r, c)| CellRef::new(r, c)));
            // |A ∪ B| = |A| + |B| - |A ∩ B|
            prop_assert_eq!(
                a.union(&b).count() + a.intersect(&b).count(),
                a.count() + b.count()
            );
            // A \ B and A ∩ B partition A
            prop_assert_eq!(a.difference(&b).count() + a.intersect(&b).count(), a.count());
            // commutativity
            prop_assert_eq!(a.union(&b), b.union(&a));
            prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        }

        #[test]
        fn mask_iter_matches_count(
            cells in prop::collection::vec((0usize..33, 0usize..5), 0..60),
        ) {
            let m = CellMask::from_cells(33, 5, cells.iter().map(|&(r, c)| CellRef::new(r, c)));
            prop_assert_eq!(m.iter().count(), m.count());
            for c in m.iter() {
                prop_assert!(m.get(c.row, c.col));
            }
        }

        #[test]
        fn csv_read_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
            // Malformed input — ragged rows, stray quotes, invalid UTF-8 —
            // must surface as a typed Err, never a panic.
            let _ = csv::read_bytes(&bytes);
        }

        #[test]
        fn csv_read_str_never_panics(text in "[\\x00-\\x7f\"\\n,]{0,256}") {
            let _ = csv::read_str(&text);
        }

        #[test]
        fn csv_errors_are_typed_for_mutated_valid_input(
            flip in 0usize..64,
            byte in any::<u8>(),
        ) {
            // Start from a well-formed document, corrupt one byte, and
            // require the codec to either parse or return a CsvError.
            let mut bytes = b"id,name,score\n1,alpha,2.5\n2,beta,3.0\n3,gamma,4.5\n".to_vec();
            let at = flip % bytes.len();
            bytes[at] = byte;
            match csv::read_bytes(&bytes) {
                Ok(t) => prop_assert!(t.n_cols() >= 1),
                Err(e) => prop_assert!(!e.to_string().is_empty()),
            }
        }

        #[test]
        fn csv_roundtrip(
            rows in prop::collection::vec(
                prop::collection::vec(arb_value(), 3..=3), 1..20),
        ) {
            use crate::schema::{ColumnMeta, ColumnType, Schema};
            use crate::table::Table;
            let schema = Schema::new(vec![
                ColumnMeta::new("c0", ColumnType::Str),
                ColumnMeta::new("c1", ColumnType::Str),
                ColumnMeta::new("c2", ColumnType::Str),
            ]);
            let t = Table::from_rows(schema, rows);
            let text = csv::write_str(&t);
            let back = csv::read_str(&text).unwrap();
            prop_assert_eq!(back.n_rows(), t.n_rows());
            for r in 0..t.n_rows() {
                for c in 0..t.n_cols() {
                    // Round-trip is up to Value::parse canonicalisation of the
                    // displayed form (e.g. Float(2) -> "2.0" -> Float(2.0)).
                    let reparsed = Value::parse(&t.cell(r, c).to_string());
                    prop_assert_eq!(back.cell(r, c), &reparsed, "cell ({}, {})", r, c);
                }
            }
        }
    }
}
