//! # rein-guard
//!
//! Supervised execution for benchmark strategies: every detector, repair
//! and model invocation in the grid runs inside [`run`], which
//!
//! * **isolates panics** — `catch_unwind` converts a crashing strategy
//!   into a structured [`StrategyFailure`] instead of aborting the run
//!   and losing every finished cell;
//! * **enforces deadline budgets** — a deterministic tick allowance
//!   ([`budget::Budget`]) derived from the master seed and the cell
//!   count, debited cooperatively by [`checkpoint`] calls at kernel loop
//!   boundaries (no wall clock anywhere, so exhaustion reproduces
//!   byte-for-byte);
//! * **retries transient failures** — a bounded number of re-attempts
//!   with seeds derived from the master seed, before degrading;
//! * **injects faults on demand** — the [`chaos`] module matches guarded
//!   calls against a seeded injection spec (`REIN_CHAOS`) and makes them
//!   panic, stall, corrupt their output, or flake, deterministically.
//!
//! Failures are recorded into the telemetry failure registry (and thus
//! the run manifest's `failures` array); the caller receives them in the
//! [`GuardReport`] and degrades the one cell, never the run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use rein_data::rng::derive_seed;

pub mod budget;
pub mod chaos;
pub mod crash;

pub use budget::{checkpoint, current_budget, Budget, BudgetExhausted};
pub use chaos::{ChaosMode, ChaosRule, ChaosSpec};
pub use crash::{CrashRule, CrashSpec, CrashWhen};

/// Which grid phase a guarded call belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Error detection.
    Detect,
    /// Error repair.
    Repair,
    /// Model training / evaluation.
    Model,
}

impl Phase {
    /// Lower-case phase name, as used in spans, chaos specs and failure
    /// records.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Detect => "detect",
            Phase::Repair => "repair",
            Phase::Model => "model",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "detect" => Some(Phase::Detect),
            "repair" => Some(Phase::Repair),
            "model" => Some(Phase::Model),
            _ => None,
        }
    }
}

/// Identity of one guarded call — the coordinates of a grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardSpec<'a> {
    /// Grid phase.
    pub phase: Phase,
    /// Strategy (toolbox method) name.
    pub strategy: &'a str,
    /// Dataset name.
    pub dataset: &'a str,
    /// Sub-grid scope; for repair cells, the detector feeding the
    /// repairer. Empty when not applicable.
    pub scope: &'a str,
    /// Cells the strategy touches (`rows × cols`), sizing the budget.
    pub cells: u64,
    /// The cell's seed; attempt 0 runs with exactly this seed so a
    /// fault-free guarded run is byte-identical to an unguarded one.
    pub seed: u64,
}

/// Supervision knobs, threaded explicitly (never global) so parallel
/// tests and fan-outs cannot interfere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardPolicy {
    /// Fault-injection rules (empty by default).
    pub chaos: ChaosSpec,
    /// Re-attempts allowed after a transient failure.
    pub retries: u32,
    /// Explicit tick allowance, overriding the derived one (tests and
    /// stall injection).
    pub budget_override: Option<u64>,
    /// Crash-injection rules for the durable store's commit points
    /// (`REIN_CRASH`, empty by default). Deliberately excluded from
    /// [`GuardPolicy::cache_identity`] — see [`crash`].
    pub crash: CrashSpec,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        GuardPolicy {
            chaos: ChaosSpec::default(),
            retries: 1,
            budget_override: None,
            crash: CrashSpec::default(),
        }
    }
}

impl GuardPolicy {
    /// A policy with the given chaos spec and default supervision.
    pub fn with_chaos(chaos: ChaosSpec) -> Self {
        GuardPolicy { chaos, ..GuardPolicy::default() }
    }

    /// The canonical rendering used as a `CellKey`'s `guard_policy`
    /// component: exactly the policy knobs that can change a cell's
    /// *value* — chaos spec, retries, budget override. The crash spec is
    /// excluded on purpose: it only decides when the process dies at a
    /// commit point, never what a cell computes, and a run resumed
    /// without `REIN_CRASH` must address the very cells the crashed run
    /// committed. The rendering is byte-identical to the struct's
    /// pre-crash-field `Debug` output, keeping every committed cell
    /// digest and trace id stable across the store's introduction.
    pub fn cache_identity(&self) -> String {
        format!(
            "GuardPolicy {{ chaos: {:?}, retries: {:?}, budget_override: {:?} }}",
            self.chaos, self.retries, self.budget_override
        )
    }
}

/// Why a strategy degraded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// The strategy panicked.
    Panic {
        /// Rendered panic payload.
        message: String,
    },
    /// The cooperative deadline budget was exhausted.
    BudgetExhausted {
        /// Ticks spent when the budget tripped.
        spent: u64,
        /// The allowance that was crossed.
        allowance: u64,
    },
    /// The strategy returned, but its output failed validation.
    InvalidOutput {
        /// What the validator rejected.
        message: String,
    },
    /// A transient failure persisted through every allowed retry.
    Transient {
        /// The transient error message.
        message: String,
    },
}

impl FailureCause {
    /// Short cause tag used in the `guard:fail:<tag>` instant event name
    /// attached to the owning cell's trace.
    pub fn tag(&self) -> &'static str {
        match self {
            FailureCause::Panic { .. } => "panic",
            FailureCause::BudgetExhausted { .. } => "deadline",
            FailureCause::InvalidOutput { .. } => "invalid",
            FailureCause::Transient { .. } => "transient",
        }
    }
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::Panic { message } => write!(f, "panic: {message}"),
            FailureCause::BudgetExhausted { spent, allowance } => {
                write!(f, "budget exhausted: {spent} of {allowance} ticks")
            }
            FailureCause::InvalidOutput { message } => write!(f, "invalid output: {message}"),
            FailureCause::Transient { message } => {
                write!(f, "transient failure persisted: {message}")
            }
        }
    }
}

/// One degraded grid cell: the structured record of a strategy that
/// panicked, stalled, or produced invalid output under guard.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyFailure {
    /// Grid phase.
    pub phase: Phase,
    /// Strategy name.
    pub strategy: String,
    /// Dataset name.
    pub dataset: String,
    /// Sub-grid scope (detector name for repair cells).
    pub scope: String,
    /// Why it degraded.
    pub cause: FailureCause,
    /// Attempts made (1 = no retry).
    pub attempts: u32,
    /// Wall-clock time spent across all attempts, via the telemetry
    /// span — guard code itself never reads the clock.
    pub elapsed: Duration,
    /// Trace id of the owning cell (the `CellKey` digest the guard span
    /// inherited through the thread-local span stack); 0 when the call
    /// ran outside any cell trace.
    pub trace_id: u64,
}

impl StrategyFailure {
    /// Converts to the serializable telemetry record.
    pub fn to_record(&self) -> rein_telemetry::FailureRecord {
        rein_telemetry::FailureRecord {
            phase: self.phase.name().to_string(),
            strategy: self.strategy.clone(),
            dataset: self.dataset.clone(),
            scope: self.scope.clone(),
            cause: self.cause.to_string(),
            attempts: self.attempts,
            elapsed_ms: self.elapsed.as_secs_f64() * 1e3,
            trace_id: if self.trace_id == 0 {
                String::new()
            } else {
                format!("{:016x}", self.trace_id)
            },
        }
    }
}

impl std::fmt::Display for StrategyFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}@{}", self.phase.name(), self.strategy, self.dataset)?;
        if !self.scope.is_empty() {
            write!(f, "#{}", self.scope)?;
        }
        write!(f, ": {} (attempt {})", self.cause, self.attempts)
    }
}

/// What [`run`] hands back: the strategy's output or its failure, plus
/// timing and the attempt count.
#[derive(Debug)]
pub struct GuardReport<T> {
    /// The output, or the structured failure after all attempts.
    pub outcome: Result<T, StrategyFailure>,
    /// Wall-clock time across all attempts (from the telemetry span).
    pub elapsed: Duration,
    /// Attempts made.
    pub attempts: u32,
}

/// Typed panic payload for transient (retryable) failures. Raised by
/// [`transient_failure`], downcast by the guard.
#[derive(Debug, Clone)]
struct TransientMarker {
    message: String,
}

/// Signals a transient failure from inside a guarded strategy: the guard
/// retries the attempt (with a derived seed) up to
/// [`GuardPolicy::retries`] times before degrading the cell. Unwinds;
/// calling it outside a guard propagates like a normal panic.
pub fn transient_failure(message: impl Into<String>) -> ! {
    std::panic::panic_any(TransientMarker { message: message.into() })
}

thread_local! {
    static IN_GUARD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Clears the in-guard flag on drop, including during unwind.
struct HookSilence;

impl HookSilence {
    fn engage() -> Self {
        install_chained_hook();
        IN_GUARD.with(|g| g.set(true));
        HookSilence
    }
}

impl Drop for HookSilence {
    fn drop(&mut self) {
        IN_GUARD.with(|g| g.set(false));
    }
}

/// Installs (once per process) a panic hook that stays silent for panics
/// raised inside a guard window on the panicking thread, and delegates
/// everything else to the previously-installed hook — so unguarded
/// panics (including test failures) keep their normal reporting.
fn install_chained_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_GUARD.with(|g| g.get()) {
                prev(info);
            }
        }));
    });
}

/// Renders a caught panic payload into a [`FailureCause`], or a
/// [`TransientMarker`] message for the retry path.
fn classify_payload(payload: Box<dyn std::any::Any + Send>) -> Result<FailureCause, String> {
    let payload = match payload.downcast::<BudgetExhausted>() {
        Ok(b) => {
            return Ok(FailureCause::BudgetExhausted { spent: b.spent, allowance: b.allowance })
        }
        Err(p) => p,
    };
    let payload = match payload.downcast::<TransientMarker>() {
        Ok(t) => return Err(t.message),
        Err(p) => p,
    };
    let message = match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    };
    Ok(FailureCause::Panic { message })
}

/// Runs one strategy under supervision.
///
/// * `attempt(seed)` executes the strategy; attempt 0 receives exactly
///   `spec.seed` (so a fault-free run matches an unguarded one
///   byte-for-byte), retries receive seeds derived from it.
/// * `validate(&output)` rejects structurally-broken output (shape
///   mismatches, truncated row maps); a rejection degrades the cell with
///   [`FailureCause::InvalidOutput`].
/// * `corrupt(&mut output)` is only invoked under
///   [`ChaosMode::Corrupt`] injection and must mangle the output in a
///   way `validate` catches.
///
/// On degradation the failure is also appended to the telemetry failure
/// registry, so it lands in the run manifest's `failures` array.
pub fn run<T>(
    spec: &GuardSpec<'_>,
    policy: &GuardPolicy,
    mut attempt: impl FnMut(u64) -> T,
    validate: impl Fn(&T) -> Result<(), String>,
    corrupt: impl Fn(&mut T),
) -> GuardReport<T> {
    let span = rein_telemetry::span(format!("{}:{}", spec.phase.name(), spec.strategy));
    let mode = policy.chaos.mode_for(spec);
    let budget = match mode {
        Some(ChaosMode::Stall) => Budget::explicit(0),
        _ => match policy.budget_override {
            Some(allowance) => Budget::explicit(allowance),
            None => Budget::derive(spec.seed, spec.strategy, spec.cells),
        },
    };
    let max_attempts = policy.retries.saturating_add(1).max(1);
    let mut attempts = 0u32;
    let failure_cause: FailureCause;
    loop {
        let attempt_seed = match attempts {
            0 => spec.seed,
            n => derive_seed(spec.seed, 0xA77E_0000u64 | n as u64),
        };
        attempts += 1;
        let caught = {
            let _budget_scope = budget::install(budget);
            let _silence = HookSilence::engage();
            catch_unwind(AssertUnwindSafe(|| {
                // One mandatory tick so stall injection (zero allowance)
                // trips even for kernels without checkpoints.
                checkpoint(1);
                if matches!(mode, Some(ChaosMode::Panic)) {
                    // audit:allow(panic, deliberate chaos injection, caught by this guard)
                    panic!("chaos: injected panic for {}:{}", spec.phase.name(), spec.strategy);
                }
                if matches!(mode, Some(ChaosMode::Flaky)) && attempts == 1 {
                    transient_failure(format!(
                        "chaos: injected flake for {}:{}",
                        spec.phase.name(),
                        spec.strategy
                    ));
                }
                let mut output = attempt(attempt_seed);
                if matches!(mode, Some(ChaosMode::Corrupt)) {
                    corrupt(&mut output);
                }
                output
            }))
        };
        match caught {
            Ok(output) => match validate(&output) {
                Ok(()) => {
                    if attempts > 1 {
                        rein_telemetry::counter("guard_retries").add(attempts as u64 - 1);
                    }
                    let elapsed = span.finish();
                    return GuardReport { outcome: Ok(output), elapsed, attempts };
                }
                Err(message) => {
                    failure_cause = FailureCause::InvalidOutput { message };
                    break;
                }
            },
            Err(payload) => match classify_payload(payload) {
                Ok(cause) => {
                    failure_cause = cause;
                    break;
                }
                Err(transient_message) => {
                    if attempts >= max_attempts {
                        failure_cause = FailureCause::Transient { message: transient_message };
                        break;
                    }
                    // Retry with the next derived seed; the decision is
                    // an instant event on the owning cell's trace.
                    rein_telemetry::instant("guard:retry");
                }
            },
        }
    }
    // The degradation becomes an instant event while the guard span is
    // still open, so it lands inside the owning cell's trace tree.
    rein_telemetry::instant(format!("guard:fail:{}", failure_cause.tag()));
    let trace_id = span.trace_context().trace_id;
    let elapsed = span.finish();
    let failure = StrategyFailure {
        phase: spec.phase,
        strategy: spec.strategy.to_string(),
        dataset: spec.dataset.to_string(),
        scope: spec.scope.to_string(),
        cause: failure_cause,
        attempts,
        elapsed,
        trace_id,
    };
    rein_telemetry::counter("strategy_failures").incr();
    rein_telemetry::record_failure(failure.to_record());
    GuardReport { outcome: Err(failure), elapsed, attempts }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(phase: Phase, strategy: &str) -> GuardSpec<'_> {
        GuardSpec { phase, strategy, dataset: "unit", scope: "", cells: 4, seed: 9 }
    }

    fn no_validate<T>(_: &T) -> Result<(), String> {
        Ok(())
    }

    fn no_corrupt<T>(_: &mut T) {}

    #[test]
    fn fault_free_run_passes_through_with_the_exact_seed() {
        let s = spec(Phase::Detect, "ok");
        let report = run(&s, &GuardPolicy::default(), |seed| seed * 2, no_validate, no_corrupt);
        assert_eq!(report.outcome.unwrap(), 18);
        assert_eq!(report.attempts, 1);
    }

    #[test]
    fn panics_become_structured_failures() {
        let s = spec(Phase::Detect, "boom");
        let report = run(
            &s,
            &GuardPolicy::default(),
            |_| -> u32 { panic!("kernel exploded") },
            no_validate,
            no_corrupt,
        );
        let failure = report.outcome.unwrap_err();
        assert_eq!(failure.cause, FailureCause::Panic { message: "kernel exploded".into() });
        assert_eq!(failure.attempts, 1);
        assert_eq!(failure.strategy, "boom");
    }

    #[test]
    fn budget_exhaustion_degrades_with_spend_figures() {
        let s = spec(Phase::Repair, "spin");
        let policy = GuardPolicy { budget_override: Some(10), ..GuardPolicy::default() };
        let report = run(
            &s,
            &policy,
            |_| loop {
                checkpoint(7);
            },
            no_validate,
            no_corrupt::<u32>,
        );
        let failure = report.outcome.unwrap_err();
        assert!(
            matches!(failure.cause, FailureCause::BudgetExhausted { spent: 15, allowance: 10 }),
            "{:?}",
            failure.cause
        );
    }

    #[test]
    fn transient_failures_retry_with_derived_seeds_then_succeed() {
        let s = spec(Phase::Detect, "flaky");
        let mut seeds = Vec::new();
        let report = run(
            &s,
            &GuardPolicy { retries: 2, ..GuardPolicy::default() },
            |seed| {
                seeds.push(seed);
                if seeds.len() < 3 {
                    transient_failure("blip");
                }
                seed
            },
            no_validate,
            no_corrupt,
        );
        assert_eq!(report.attempts, 3);
        assert_eq!(seeds[0], 9, "attempt 0 must use the spec seed verbatim");
        assert_ne!(seeds[1], seeds[0]);
        assert_ne!(seeds[2], seeds[1]);
        assert_eq!(report.outcome.unwrap(), seeds[2]);
    }

    #[test]
    fn persistent_transient_failure_degrades() {
        let s = spec(Phase::Detect, "flaky");
        let report = run(
            &s,
            &GuardPolicy { retries: 1, ..GuardPolicy::default() },
            |_| -> u32 { transient_failure("still down") },
            no_validate,
            no_corrupt,
        );
        let failure = report.outcome.unwrap_err();
        assert_eq!(failure.cause, FailureCause::Transient { message: "still down".into() });
        assert_eq!(failure.attempts, 2);
    }

    #[test]
    fn invalid_output_is_rejected_without_retry() {
        let s = spec(Phase::Detect, "liar");
        let report = run(
            &s,
            &GuardPolicy::default(),
            |_| 7u32,
            |&v| if v == 0 { Ok(()) } else { Err(format!("nonzero {v}")) },
            no_corrupt,
        );
        let failure = report.outcome.unwrap_err();
        assert_eq!(failure.cause, FailureCause::InvalidOutput { message: "nonzero 7".into() });
        assert_eq!(failure.attempts, 1);
    }

    #[test]
    fn chaos_modes_inject_deterministically() {
        let s = spec(Phase::Detect, "victim");
        let chaos = ChaosSpec::parse("detect:victim=panic").unwrap();
        let policy = GuardPolicy::with_chaos(chaos);
        let report = run(&s, &policy, |_| 1u32, no_validate, no_corrupt);
        assert!(matches!(report.outcome.unwrap_err().cause, FailureCause::Panic { .. }));

        let stall = GuardPolicy::with_chaos(ChaosSpec::parse("detect:victim=stall").unwrap());
        let report = run(&s, &stall, |_| 1u32, no_validate, no_corrupt);
        assert!(matches!(
            report.outcome.unwrap_err().cause,
            FailureCause::BudgetExhausted { allowance: 0, .. }
        ));

        let corrupt = GuardPolicy::with_chaos(ChaosSpec::parse("detect:victim=corrupt").unwrap());
        let report = run(
            &s,
            &corrupt,
            |_| 1u32,
            |&v| if v == 1 { Ok(()) } else { Err("mangled".into()) },
            |v| *v = 99,
        );
        assert!(matches!(report.outcome.unwrap_err().cause, FailureCause::InvalidOutput { .. }));

        let flaky = GuardPolicy::with_chaos(ChaosSpec::parse("detect:victim=flaky").unwrap());
        let report = run(&s, &flaky, |_| 1u32, no_validate, no_corrupt);
        assert_eq!(report.outcome.unwrap(), 1);
        assert_eq!(report.attempts, 2, "flaky injection succeeds on the retry");

        // A non-matching spec leaves the strategy untouched.
        let other = GuardPolicy::with_chaos(ChaosSpec::parse("detect:other=panic").unwrap());
        let report = run(&s, &other, |_| 1u32, no_validate, no_corrupt);
        assert_eq!(report.outcome.unwrap(), 1);
        assert_eq!(report.attempts, 1);
    }

    #[test]
    fn failures_and_retries_become_instants_on_the_owning_trace() {
        const TRACE: u64 = 0x9AD_0001;
        let cell = rein_telemetry::span_traced("cell:guardtest", None, TRACE);
        let s = spec(Phase::Detect, "tracedboom");
        let report = run(
            &s,
            &GuardPolicy { retries: 1, ..GuardPolicy::default() },
            |_| -> u32 { transient_failure("still down") },
            no_validate,
            no_corrupt,
        );
        let failure = report.outcome.unwrap_err();
        assert_eq!(failure.trace_id, TRACE, "failure links back to the cell trace");
        assert_eq!(failure.to_record().trace_id, format!("{TRACE:016x}"));
        drop(cell);
        let spans: Vec<_> =
            rein_telemetry::snapshot_spans().into_iter().filter(|r| r.trace_id == TRACE).collect();
        let guard_span = spans
            .iter()
            .find(|r| r.name == "detect:tracedboom" && !r.instant)
            .expect("guard span inherits the cell trace");
        let retry = spans
            .iter()
            .find(|r| r.name == "guard:retry")
            .expect("retry decision recorded as instant");
        let fail = spans
            .iter()
            .find(|r| r.name == "guard:fail:transient")
            .expect("degradation recorded as instant");
        for instant in [retry, fail] {
            assert!(instant.instant);
            assert_eq!(
                instant.parent_id, guard_span.id,
                "instants parent under the open guard span"
            );
        }
    }

    #[test]
    fn failures_outside_any_trace_record_an_empty_trace_link() {
        let s = spec(Phase::Detect, "untracedboom");
        let report = run(
            &s,
            &GuardPolicy::default(),
            |_| -> u32 { panic!("kernel exploded") },
            no_validate,
            no_corrupt,
        );
        let failure = report.outcome.unwrap_err();
        assert_eq!(failure.trace_id, 0);
        assert_eq!(failure.to_record().trace_id, "");
    }

    #[test]
    fn cache_identity_is_the_pre_crash_debug_rendering() {
        // Committed artifacts (cell dumps, trace exports) embed digests
        // computed from the old `format!("{:?}", policy)` — adding the
        // crash field must not move them.
        let policy = GuardPolicy::default();
        assert_eq!(
            policy.cache_identity(),
            "GuardPolicy { chaos: ChaosSpec { rules: [] }, retries: 1, budget_override: None }"
        );
        let crashy = GuardPolicy {
            crash: CrashSpec::parse("detect:raha=before").unwrap(),
            ..GuardPolicy::default()
        };
        assert_eq!(
            crashy.cache_identity(),
            policy.cache_identity(),
            "crash injection must not change any cell's cache identity"
        );
        let chaotic = GuardPolicy::with_chaos(ChaosSpec::parse("detect:raha=panic").unwrap());
        assert_ne!(chaotic.cache_identity(), policy.cache_identity());
    }

    #[test]
    fn unguarded_panics_still_reach_the_hook() {
        // Engaging and dropping the silence must restore normal panics.
        let s = spec(Phase::Detect, "once");
        let _ = run(&s, &GuardPolicy::default(), |_| 1u32, no_validate, no_corrupt);
        assert!(!IN_GUARD.with(|g| g.get()));
    }
}
