//! Fixture: every RNG derives from an explicit seed.
use rand::SeedableRng;

pub fn noise(seed: u64) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    rand::Rng::gen(&mut rng)
}
