//! Figure 6: accuracy of the ML-oriented repair methods (ActiveClean,
//! CPClean, BoostClean) on Adult and Breast Cancer.
//!
//! Each method's model is compared across scenarios: S1 (a reference
//! model trained and tested on the dirty data), S4 (trained and tested on
//! the ground truth) and S5 (the method's own output model tested on
//! dirty data).

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use rein_bench::{conclude, dataset, f, header, phase, repeats};
use rein_core::{eval_classifier, eval_pipeline_s5, run_repair, Scenario, VersionTable};
use rein_data::rng::derive_seed;
use rein_datasets::DatasetId;
use rein_ml::model::ClassifierKind;
use rein_repair::RepairKind;
use rein_stats::mean_std;

fn run_dataset(id: DatasetId, seed: u64) {
    let generate = phase("generate");
    let ds = dataset(id, seed);
    drop(generate);
    header(&format!("Figure 6 — ML-oriented repair methods ({})", ds.info.name));
    let version = VersionTable::identity(ds.dirty.clone());
    let reps = repeats();

    // Reference scenario scores with a logistic model (ActiveClean's
    // convex-model family).
    let scenarios = phase("reference-scenarios");
    let s1 = eval_classifier(Scenario::S1, &ds, &version, ClassifierKind::Logit, reps, seed);
    let s4 = eval_classifier(Scenario::S4, &ds, &version, ClassifierKind::Logit, reps, seed);
    drop(scenarios);

    let _methods = phase("methods");
    println!("{:<14} {:>10} {:>10} {:>10}", "method", "S1", "S4", "S5");
    for kind in [RepairKind::ActiveClean, RepairKind::CpClean, RepairKind::BoostClean] {
        let s5: Vec<f64> = (0..reps)
            .map(|r| {
                let run = run_repair(&ds, &ds.mask, kind, derive_seed(seed, r as u64));
                let p = run.pipeline.expect("ML-oriented methods output a model");
                eval_pipeline_s5(&ds, &p, derive_seed(seed, 100 + r as u64))
            })
            .collect();
        println!(
            "{:<14} {:>10} {:>10} {:>10}",
            kind.name(),
            f(mean_std(&s1).mean),
            f(mean_std(&s4).mean),
            f(mean_std(&s5).mean),
        );
    }
}

fn main() {
    run_dataset(DatasetId::Adult, 71);
    run_dataset(DatasetId::BreastCancer, 72);
    conclude("fig6_ml_oriented", 71, 0);
}
