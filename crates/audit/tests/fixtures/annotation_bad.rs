//! Fixture: allows without a reason are themselves violations, and do not
//! suppress anything.
// audit:allow-file(panic)
pub fn first(xs: &[u32]) -> u32 {
    // audit:allow(panic)
    *xs.first().unwrap()
}
