//! Positive fixture: fit on train, predict on test — no leakage.

use crate::linalg::Matrix;
use crate::model::Classifier;

pub fn evaluate(
    model: &mut dyn Classifier,
    x_train: &Matrix,
    y_train: &[usize],
    x_test: &Matrix,
    y_test: &[usize],
) -> f64 {
    model.fit(x_train, y_train, 2);
    let preds = model.predict(x_test);
    preds.iter().zip(y_test).filter(|(p, t)| p == t).count() as f64 / y_test.len() as f64
}

/// `train_test_split` mentions the test split by name but does not
/// learn from it — the rule must not flag split construction.
pub fn prepare(x: &Matrix, y: &[usize], seed: u64) -> (Matrix, Matrix) {
    let (x_train, x_test) = crate::split::train_test_split(x, y, 0.2, seed);
    (x_train, x_test)
}
