//! The canonical cell-granularity cache key for incremental evaluation.
//!
//! The ROADMAP's content-addressed incremental store memoizes one grid
//! *cell* — a (dataset version, strategy, seed, scale, guard policy)
//! tuple — and replays its stored result on a key hit. That is only
//! sound if every value-influencing input of the cell computation is a
//! component of this key; `rein-audit`'s `cache-key-completeness` rule
//! certifies exactly that by proving the cell-compute entry points
//! key-pure against [`CellKey`] (see DESIGN.md §6h).
//!
//! The hash is the same FNV-1a-64 that `rein-ledger` content-addresses
//! run-level artifacts with, so a cell key and a run key live in one
//! address space and a future incremental store can share the ledger's
//! index machinery.

use rein_ledger::{content_key, fnv1a64};

/// The declared cache-key tuple of one grid cell.
///
/// Field order is the identity order: [`CellKey::identity`] joins the
/// components with `|` exactly as [`rein_ledger::run_identity`] does for
/// run-level keys, and [`CellKey::content_key`] hashes that string.
/// Adding a value-influencing input to the cell computation means
/// adding a field here — the audit's purity certificate is relative to
/// this struct's declared fields.
#[derive(Debug, Clone, PartialEq)]
pub struct CellKey {
    /// Dataset name (`DatasetInfo::name`).
    pub dataset: String,
    /// Content identity of the exact table version the cell consumes:
    /// the dirty table for detection cells, a repair's output version
    /// for model cells.
    pub dataset_version: String,
    /// Strategy id: detector name, `repair#detector`, or
    /// `scenario:repair#detector` — the same labels `run_grid` keys
    /// its score map with.
    pub strategy: String,
    /// The fully-derived cell seed (after every `derive_seed` step).
    pub seed: u64,
    /// Dataset scale factor the cell ran at.
    pub scale: f64,
    /// Canonical rendering of the guard policy (deadline budgets and
    /// chaos spec), since the guard can degrade a cell's result.
    pub guard_policy: String,
}

impl CellKey {
    /// The `|`-joined identity string, mirroring
    /// [`rein_ledger::run_identity`]'s `kind|bin|seed|scale|strategies`
    /// convention at cell granularity.
    pub fn identity(&self) -> String {
        format!(
            "cell|{}|{}|{}|{}|{}|{}",
            self.dataset,
            self.dataset_version,
            self.strategy,
            self.seed,
            self.scale,
            self.guard_policy
        )
    }

    /// FNV-1a-64 of [`CellKey::identity`], as the ledger's 16-hex-digit
    /// content key format.
    pub fn content_key(&self) -> String {
        content_key(&self.identity())
    }

    /// The raw 64-bit hash, for callers that index numerically.
    pub fn hash(&self) -> u64 {
        fnv1a64(self.identity().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> CellKey {
        CellKey {
            dataset: "beers".to_string(),
            dataset_version: "v:0123456789abcdef".to_string(),
            strategy: "eval:S1:ImputeMeanMode#Raha".to_string(),
            seed: 41_207,
            scale: 1.0,
            guard_policy: "deadline=0;chaos=off".to_string(),
        }
    }

    #[test]
    fn identity_is_pipe_joined_in_field_order() {
        assert_eq!(
            key().identity(),
            "cell|beers|v:0123456789abcdef|eval:S1:ImputeMeanMode#Raha|41207|1|deadline=0;chaos=off"
        );
    }

    #[test]
    fn content_key_matches_ledger_hash_of_identity() {
        let k = key();
        assert_eq!(k.content_key(), content_key(&k.identity()));
        assert_eq!(k.content_key(), format!("{:016x}", k.hash()));
        assert_eq!(k.hash(), fnv1a64(k.identity().as_bytes()));
    }

    #[test]
    fn distinct_components_produce_distinct_keys() {
        let base = key();
        for mutate in [
            |k: &mut CellKey| k.dataset.push('x'),
            |k: &mut CellKey| k.dataset_version.push('x'),
            |k: &mut CellKey| k.strategy.push('x'),
            |k: &mut CellKey| k.seed += 1,
            |k: &mut CellKey| k.scale += 0.5,
            |k: &mut CellKey| k.guard_policy.push('x'),
        ] {
            let mut other = base.clone();
            mutate(&mut other);
            assert_ne!(base.content_key(), other.content_key());
        }
    }
}
