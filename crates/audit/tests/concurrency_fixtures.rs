//! Fixture-based tests for the concurrency-determinism rules and for
//! closure-argument call-graph resolution: each `par-*` rule has a
//! negative fixture it must flag and a positive fixture it must pass,
//! and closures passed to higher-order functions are proven to be
//! traversable call edges (same-file, cross-file, and parallel-entry
//! variants).

use std::path::Path;

use rein_audit::{analyze, Violation, WorkspaceModel};

/// Parses the named fixtures under their virtual workspace paths and
/// runs the semantic pass (which includes the concurrency rules).
fn analyze_assembly(files: &[(&str, &str)]) -> Vec<Violation> {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(fixture, vpath)| {
            let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture);
            let source = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            (vpath.to_string(), source)
        })
        .collect();
    let model = WorkspaceModel::build(&sources);
    let errors = model.parse_errors();
    assert!(errors.is_empty(), "fixtures must parse cleanly: {errors:?}");
    analyze(&model).violations
}

fn of_rule<'a>(violations: &'a [Violation], rule: &str) -> Vec<&'a Violation> {
    violations.iter().filter(|v| v.rule == rule).collect()
}

// ------------------------------------------------------ par-shared-mutable

#[test]
fn par_shared_mutable_flags_cells_reachable_from_parallel_region() {
    let violations = analyze_assembly(&[("par_shared_bad.rs", "crates/core/src/fixture.rs")]);
    let hits = of_rule(&violations, "par-shared-mutable");
    // The `static mut` and the `RefCell` field — but not the `use` line.
    assert_eq!(hits.len(), 2, "got {violations:?}");
    assert!(hits.iter().any(|v| v.message.contains("static mut")), "got {hits:?}");
    assert!(hits.iter().any(|v| v.message.contains("RefCell")), "got {hits:?}");
}

#[test]
fn par_shared_mutable_accepts_atomics_mutex_and_thread_local() {
    let violations = analyze_assembly(&[("par_shared_ok.rs", "crates/core/src/fixture.rs")]);
    assert!(of_rule(&violations, "par-shared-mutable").is_empty(), "got {violations:?}");
}

#[test]
fn par_shared_mutable_ignores_files_outside_any_parallel_region() {
    // The same interior mutability with the parallel entry removed: a
    // purely serial file may keep its cells.
    let source = "\
use std::cell::RefCell;

pub struct Tally {
    slots: RefCell<Vec<usize>>,
}

pub fn tally(xs: &[usize]) -> Vec<usize> {
    xs.iter().map(|x| *x + 1).collect()
}
";
    let model =
        WorkspaceModel::build(&[("crates/core/src/serial.rs".to_string(), source.to_string())]);
    let out = analyze(&model);
    assert!(
        !out.violations.iter().any(|v| v.rule == "par-shared-mutable"),
        "got {:?}",
        out.violations
    );
}

// ----------------------------------------------------- par-seed-derivation

#[test]
fn par_seed_derivation_flags_loop_shared_seed() {
    let violations = analyze_assembly(&[("par_seed_bad.rs", "crates/core/src/fixture.rs")]);
    let hits = of_rule(&violations, "par-seed-derivation");
    assert_eq!(hits.len(), 1, "got {violations:?}");
    assert!(hits[0].message.contains("seed_from_u64"), "got {hits:?}");
    // The plain provenance rule is satisfied (the seed IS a parameter):
    // only the parallel rule catches the per-worker sharing.
    assert!(of_rule(&violations, "seed-provenance").is_empty(), "got {violations:?}");
}

#[test]
fn par_seed_derivation_accepts_per_cell_derivation() {
    let violations = analyze_assembly(&[("par_seed_ok.rs", "crates/core/src/fixture.rs")]);
    assert!(of_rule(&violations, "par-seed-derivation").is_empty(), "got {violations:?}");
    assert!(of_rule(&violations, "seed-provenance").is_empty(), "got {violations:?}");
}

// ---------------------------------------------------- par-merge-registered

#[test]
fn par_merge_registered_flags_ad_hoc_float_reduce() {
    let violations = analyze_assembly(&[("par_merge_bad.rs", "crates/core/src/fixture.rs")]);
    let hits = of_rule(&violations, "par-merge-registered");
    // One finding on the reduce call, not one per closure argument.
    assert_eq!(hits.len(), 1, "got {violations:?}");
    assert!(hits[0].message.contains("reduce"), "got {hits:?}");
}

#[test]
fn par_merge_registered_accepts_registered_merges_and_collect() {
    let violations = analyze_assembly(&[("par_merge_ok.rs", "crates/core/src/fixture.rs")]);
    assert!(of_rule(&violations, "par-merge-registered").is_empty(), "got {violations:?}");
}

// ----------------------------------------------------- par-atomic-ordering

#[test]
fn par_atomic_ordering_flags_relaxed_outside_allowlist() {
    let violations = analyze_assembly(&[("par_atomic_bad.rs", "crates/core/src/fixture.rs")]);
    let hits = of_rule(&violations, "par-atomic-ordering");
    assert_eq!(hits.len(), 1, "got {violations:?}");
}

#[test]
fn par_atomic_ordering_accepts_stronger_orderings() {
    let violations = analyze_assembly(&[("par_atomic_ok.rs", "crates/core/src/fixture.rs")]);
    assert!(of_rule(&violations, "par-atomic-ordering").is_empty(), "got {violations:?}");
}

#[test]
fn par_atomic_ordering_allowlists_telemetry_counter_sites() {
    // The very same Relaxed counter is legitimate at an allowlisted
    // telemetry path.
    let violations = analyze_assembly(&[("par_atomic_bad.rs", "crates/telemetry/src/metrics.rs")]);
    assert!(of_rule(&violations, "par-atomic-ordering").is_empty(), "got {violations:?}");
}

// ----------------------------------------------------- par-lock-discipline

#[test]
fn par_lock_discipline_flags_conflicting_acquisition_orders() {
    let violations = analyze_assembly(&[("par_lock_bad.rs", "crates/core/src/fixture.rs")]);
    let hits = of_rule(&violations, "par-lock-discipline");
    // Both directions of the cycle are reported.
    assert_eq!(hits.len(), 2, "got {violations:?}");
    assert!(hits.iter().all(|v| v.message.contains("reverse order")), "got {hits:?}");
}

#[test]
fn par_lock_discipline_accepts_consistent_global_order() {
    let violations = analyze_assembly(&[("par_lock_ok.rs", "crates/core/src/fixture.rs")]);
    assert!(of_rule(&violations, "par-lock-discipline").is_empty(), "got {violations:?}");
}

// --------------------------------------------------------- trace-context

#[test]
fn trace_context_flags_ambient_span_in_parallel_closure() {
    let violations = analyze_assembly(&[("trace_ctx_bad.rs", "crates/core/src/fixture.rs")]);
    let hits = of_rule(&violations, "trace-context");
    assert_eq!(hits.len(), 1, "got {violations:?}");
    assert!(hits[0].message.contains("span_traced"), "got {hits:?}");
}

#[test]
fn trace_context_accepts_span_traced_cell_roots() {
    let violations = analyze_assembly(&[("trace_ctx_ok.rs", "crates/core/src/fixture.rs")]);
    assert!(of_rule(&violations, "trace-context").is_empty(), "got {violations:?}");
}

// ------------------------------------------- closure-argument call edges

#[test]
fn closure_passed_to_adapter_is_a_call_edge() {
    let violations =
        analyze_assembly(&[("closure_edge_adapter_bad.rs", "crates/data/src/fixture.rs")]);
    let hits = of_rule(&violations, "panic-reachability");
    // `grid` only reaches the panic through the `.map(|x| risky(*x))`
    // closure — the finding proves the closure body is a call edge.
    assert_eq!(hits.len(), 1, "got {violations:?}");
    assert!(hits[0].message.contains("`grid`"), "got {hits:?}");
}

#[test]
fn annotated_panic_behind_closure_edge_is_quiet() {
    let violations =
        analyze_assembly(&[("closure_edge_adapter_ok.rs", "crates/data/src/fixture.rs")]);
    assert!(of_rule(&violations, "panic-reachability").is_empty(), "got {violations:?}");
}

#[test]
fn spawn_closure_resolves_across_files() {
    let violations = analyze_assembly(&[
        ("closure_edge_spawn_bad.rs", "crates/core/src/fixture.rs"),
        ("closure_edge_remote.rs", "crates/core/src/remote.rs"),
    ]);
    let hits = of_rule(&violations, "panic-reachability");
    // `launch` reaches `remote_step`'s panic (in the other file) only
    // through the spawn closure.
    assert!(
        hits.iter()
            .any(|v| v.message.contains("`launch`")
                && v.message.contains("crates/core/src/remote.rs:")),
        "got {violations:?}"
    );
}

#[test]
fn suppressions_work_on_concurrency_findings() {
    // An `audit:allow(par-shared-mutable, …)` on the offending line
    // silences the finding like any other rule.
    let source = "\
pub fn tally(xs: &[usize]) -> Vec<usize> {
    xs.par_iter().map(|x| *x + COUNTER.with(|c| c.get())).collect()
}
// audit:allow(par-shared-mutable, single-owner scratch counter, reset per call)
static SCRATCH: std::cell::Cell<usize> = std::cell::Cell::new(0);
";
    let model =
        WorkspaceModel::build(&[("crates/core/src/fixture.rs".to_string(), source.to_string())]);
    let out = analyze(&model);
    assert!(
        !out.violations.iter().any(|v| v.rule == "par-shared-mutable"),
        "got {:?}",
        out.violations
    );
    assert!(out.suppressed >= 1, "expected a suppressed finding");
}
