//! Outlier and Gaussian-noise injection.
//!
//! Outliers are planted `outlier_degree` standard deviations away from the
//! column mean (the knob swept in the paper's Figure 3c); Gaussian noise
//! perturbs values by a σ-scaled amount without pushing them out of range.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::rng::randn;
use rein_data::{CellMask, Table, Value};

use crate::common::{cells_of_columns, pick_cells, Injection};

/// Per-column mean and standard deviation of the numeric values.
fn column_stats(table: &Table, col: usize) -> Option<(f64, f64)> {
    let xs = table.numeric_values(col);
    if xs.len() < 2 {
        return None;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    Some((mean, var.sqrt().max(1e-12)))
}

/// Plants outliers into `rate` of the numeric cells of `cols`.
///
/// Each corrupted cell is moved to
/// `mean ± (degree + |ε|) · σ` with `ε ~ N(0, σ/4)`-ish jitter, so injected
/// outliers sit *at least* `degree` standard deviations out — matching the
/// paper's "outlier degree, defined as the number of standard deviations
/// away from the mean".
pub fn inject_outliers(
    table: &Table,
    cols: &[usize],
    rate: f64,
    degree: f64,
    seed: u64,
) -> Injection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = table.clone();
    let mut mask = CellMask::new(table.n_rows(), table.n_cols());
    let numeric_cols: Vec<usize> =
        cols.iter().copied().filter(|&c| column_stats(table, c).is_some()).collect();
    let candidates: Vec<_> = cells_of_columns(table, &numeric_cols)
        .into_iter()
        .filter(|c| table.cell(c.row, c.col).as_f64().is_some())
        .collect();
    for cell in pick_cells(&candidates, rate, &mut rng) {
        // audit:allow(panic, candidates pre-filtered to columns with stats)
        let (mean, std) = column_stats(table, cell.col).expect("filtered");
        let sign = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
        let jitter = randn(&mut rng).abs() * 0.25;
        let v = mean + sign * (degree + jitter) * std;
        out.set_cell(cell.row, cell.col, Value::float(v));
        mask.set(cell.row, cell.col, true);
    }
    Injection { table: out, cells: mask }
}

/// Adds zero-mean Gaussian noise with standard deviation `sigma_scale · σ`
/// to `rate` of the numeric cells of `cols`.
pub fn inject_gaussian_noise(
    table: &Table,
    cols: &[usize],
    rate: f64,
    sigma_scale: f64,
    seed: u64,
) -> Injection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = table.clone();
    let mut mask = CellMask::new(table.n_rows(), table.n_cols());
    let numeric_cols: Vec<usize> =
        cols.iter().copied().filter(|&c| column_stats(table, c).is_some()).collect();
    let candidates: Vec<_> = cells_of_columns(table, &numeric_cols)
        .into_iter()
        .filter(|c| table.cell(c.row, c.col).as_f64().is_some())
        .collect();
    for cell in pick_cells(&candidates, rate, &mut rng) {
        // audit:allow(panic, candidates pre-filtered to columns with stats)
        let (_, std) = column_stats(table, cell.col).expect("filtered");
        // audit:allow(panic, candidates pre-filtered to numeric cells)
        let x = table.cell(cell.row, cell.col).as_f64().expect("filtered");
        let mut noise = randn(&mut rng) * sigma_scale * std;
        if noise == 0.0 {
            noise = sigma_scale * std; // guarantee the cell actually changes
        }
        out.set_cell(cell.row, cell.col, Value::float(x + noise));
        mask.set(cell.row, cell.col, true);
    }
    Injection { table: out, cells: mask }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::diff::diff_mask;
    use rein_data::{ColumnMeta, ColumnType, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("s", ColumnType::Str),
        ]);
        // x ~ tight around 100 so sigma is small and outliers are obvious.
        Table::from_rows(
            schema,
            (0..100)
                .map(|i| {
                    vec![Value::Float(100.0 + (i % 7) as f64 * 0.1), Value::str(format!("v{i}"))]
                })
                .collect(),
        )
    }

    #[test]
    fn outliers_are_far_from_the_mean() {
        let t = table();
        let degree = 4.0;
        let inj = inject_outliers(&t, &[0], 0.1, degree, 3);
        assert_eq!(inj.cells.count(), 10);
        let (mean, std) = column_stats(&t, 0).unwrap();
        for c in inj.cells.iter() {
            let v = inj.table.cell(c.row, c.col).as_f64().unwrap();
            let z = (v - mean).abs() / std;
            assert!(z >= degree - 1e-9, "z = {z}");
        }
        assert_eq!(diff_mask(&t, &inj.table), inj.cells);
    }

    #[test]
    fn outlier_degree_scales_distance() {
        let t = table();
        let (mean, std) = column_stats(&t, 0).unwrap();
        let z_of = |degree: f64| {
            let inj = inject_outliers(&t, &[0], 0.2, degree, 5);
            inj.cells
                .iter()
                .map(|c| (inj.table.cell(c.row, c.col).as_f64().unwrap() - mean).abs() / std)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(z_of(8.0) > z_of(2.0));
    }

    #[test]
    fn gaussian_noise_changes_cells_but_stays_close() {
        let t = table();
        let inj = inject_gaussian_noise(&t, &[0], 0.2, 0.5, 9);
        assert_eq!(inj.cells.count(), 20);
        let (_, std) = column_stats(&t, 0).unwrap();
        for c in inj.cells.iter() {
            let v = inj.table.cell(c.row, c.col).as_f64().unwrap();
            let orig = t.cell(c.row, c.col).as_f64().unwrap();
            assert_ne!(v, orig);
            assert!((v - orig).abs() < 5.0 * std, "noise too large");
        }
        assert_eq!(diff_mask(&t, &inj.table), inj.cells);
    }

    #[test]
    fn string_columns_are_ignored() {
        let t = table();
        assert!(inject_outliers(&t, &[1], 0.5, 3.0, 1).cells.is_empty());
        assert!(inject_gaussian_noise(&t, &[1], 0.5, 1.0, 1).cells.is_empty());
    }

    #[test]
    fn deterministic_by_seed() {
        let t = table();
        assert_eq!(
            inject_outliers(&t, &[0], 0.1, 3.0, 42).table,
            inject_outliers(&t, &[0], 0.1, 3.0, 42).table
        );
    }
}
