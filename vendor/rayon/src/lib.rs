//! Offline vendored stand-in for `rayon`.
//!
//! Implements the parallel-iterator subset the REIN-RS workspace uses
//! (`par_iter` / `into_par_iter` on slices, vectors and ranges, plus
//! `map` / `filter` / `for_each` / `collect` / `sum` / `count`) on top of
//! `std::thread::scope`. Work is materialised into a `Vec`, split into
//! one contiguous chunk per available core, and mapped in parallel, so
//! the fan-out behaviour the benchmark's telemetry has to survive is
//! real OS-thread concurrency, not a sequential simulation.

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

/// Width of the global pool once [`ThreadPoolBuilder::build_global`]
/// has run; `None` means "machine default".
static GLOBAL_WIDTH: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Width override installed by [`ThreadPool::install`], inherited
    /// by worker threads a parallel stage spawns.
    static POOL_WIDTH: Cell<Option<usize>> = Cell::new(None);
}

/// Number of worker threads a parallel stage uses: the scoped
/// [`ThreadPool::install`] override when inside one, then the global
/// pool width, then the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(w) = POOL_WIDTH.with(Cell::get) {
        return w;
    }
    if let Some(&w) = GLOBAL_WIDTH.get() {
        return w;
    }
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Configures pool widths; the subset of the real builder the
/// workspace uses.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error from [`ThreadPoolBuilder::build_global`] when a global pool
/// already exists (rayon forbids re-configuration).
#[derive(Debug)]
pub struct ThreadPoolBuildError(&'static str);

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default (machine-wide) width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` restores the default, like rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    fn width(&self) -> usize {
        self.num_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1))
    }

    /// Builds a scoped pool; see [`ThreadPool::install`].
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { width: self.width() })
    }

    /// Fixes the global pool width. Errs if a global pool was already
    /// installed — the first configuration wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_WIDTH
            .set(self.width())
            .map_err(|_| ThreadPoolBuildError("the global thread pool has already been initialized"))
    }
}

/// A scoped pool: a width that applies to every parallel stage reached
/// from inside [`ThreadPool::install`], overriding the global pool.
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's width governing parallel stages
    /// (restored on exit, even across panics).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_WIDTH.with(|w| w.set(self.0));
            }
        }
        let _restore = Restore(POOL_WIDTH.with(|w| w.replace(Some(self.width))));
        op()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }
}

/// Runs `f` over the items of `items` on up to [`current_num_threads`]
/// scoped threads, preserving order. Workers inherit the stage's width
/// so nested parallel stages honour a scoped pool.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let width = current_num_threads();
    let threads = width.min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunk = n.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in slots.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                POOL_WIDTH.with(|w| w.set(Some(width)));
                for (slot, dst) in in_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                    *dst = Some(f(slot.take().expect("slot taken twice")));
                }
            });
        }
    });
    out.into_iter().map(|o| o.expect("parallel_map slot unfilled")).collect()
}

/// A materialised parallel iterator: holds its items and applies each
/// adaptor stage across scoped threads.
pub struct ParallelIterator<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator<T> {
    /// Parallel map.
    pub fn map<R: Send, F: Fn(T) -> R + Sync + Send>(self, f: F) -> ParallelIterator<R> {
        ParallelIterator { items: parallel_map(self.items, f) }
    }

    /// Parallel filter.
    pub fn filter<F: Fn(&T) -> bool + Sync + Send>(self, f: F) -> ParallelIterator<T> {
        let kept = parallel_map(self.items, |item| if f(&item) { Some(item) } else { None });
        ParallelIterator { items: kept.into_iter().flatten().collect() }
    }

    /// Parallel filter-map.
    pub fn filter_map<R: Send, F: Fn(T) -> Option<R> + Sync + Send>(
        self,
        f: F,
    ) -> ParallelIterator<R> {
        let kept = parallel_map(self.items, f);
        ParallelIterator { items: kept.into_iter().flatten().collect() }
    }

    /// Parallel flat-map.
    pub fn flat_map<R, I, F>(self, f: F) -> ParallelIterator<R>
    where
        R: Send,
        I: IntoIterator<Item = R>,
        F: Fn(T) -> I + Sync + Send,
    {
        let nested: Vec<Vec<R>> =
            parallel_map(self.items, |item| f(item).into_iter().collect());
        ParallelIterator { items: nested.into_iter().flatten().collect() }
    }

    /// Parallel side-effecting traversal.
    pub fn for_each<F: Fn(T) + Sync + Send>(self, f: F) {
        drop(self.map(f));
    }

    /// Collects into any `FromIterator` container (order preserved).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Item count.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Reduces with an identity (both applied sequentially post-map).
    pub fn reduce<Id, F>(self, identity: Id, op: F) -> T
    where
        Id: Fn() -> T,
        F: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Builds the parallel iterator.
    fn into_par_iter(self) -> ParallelIterator<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParallelIterator<T> {
        ParallelIterator { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParallelIterator<$t> {
                ParallelIterator { items: self.collect() }
            }
        }
    )*};
}
impl_range_par_iter!(u32, u64, usize, i32, i64);

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;

    /// Builds the parallel iterator.
    fn par_iter(&'a self) -> ParallelIterator<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParallelIterator<&'a T> {
        ParallelIterator { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParallelIterator<&'a T> {
        ParallelIterator { items: self.iter().collect() }
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// The customary glob import.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_refs() {
        let data = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let total: u64 = data.par_iter().map(|&x| x).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn for_each_runs_every_item() {
        let hits = AtomicUsize::new(0);
        (0..517usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 517);
    }

    #[test]
    fn filter_and_join() {
        let evens: Vec<usize> = (0..20).into_par_iter().filter(|i| i % 2 == 0).collect();
        assert_eq!(evens.len(), 10);
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }
}
