//! BARAN (Mahdavi & Abedjan): holistic, configuration-free error
//! correction. Three incrementally updatable candidate models — the
//! **value** model (string-similarity transformations of the erroneous
//! value), the **vicinity** model (co-occurrence with the row's other
//! attributes) and the **domain** model (column value distribution) —
//! propose corrections; their votes are combined with weights learned from
//! a small set of labelled corrections (the "Labels" signal of Table 1,
//! simulated from the ground truth, standing in for Wikipedia revision
//! data).

use std::collections::BTreeMap;

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::{CellMask, CellRef, Table, Value};

use crate::context::{RepairContext, RepairOutcome, Repairer};

/// BARAN repairer.
#[derive(Debug, Clone)]
pub struct Baran {
    /// Minimum combined score for a candidate to be applied.
    pub min_score: f64,
}

impl Default for Baran {
    fn default() -> Self {
        Self { min_score: 0.2 }
    }
}

/// Character-trigram similarity (the value model's transformation proxy).
fn trigram_sim(a: &str, b: &str) -> f64 {
    let grams = |s: &str| -> std::collections::BTreeSet<String> {
        let lower = s.to_lowercase();
        let cs: Vec<char> = lower.chars().collect();
        if cs.len() < 3 {
            return [lower].into_iter().collect();
        }
        cs.windows(3).map(|w| w.iter().collect()).collect()
    };
    let ga = grams(a);
    let gb = grams(b);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let inter = ga.intersection(&gb).count();
    inter as f64 / (ga.len() + gb.len() - inter).max(1) as f64
}

/// Per-column evidence shared by all candidate models.
struct ColumnModels {
    /// Candidate domain: trusted values with relative frequencies.
    domain: Vec<(Value, f64)>,
    /// vicinity: (other_col, other_value_key) -> value votes.
    vicinity: BTreeMap<(usize, String), BTreeMap<String, f64>>,
}

fn build_models(t: &Table, det: &CellMask, col: usize) -> ColumnModels {
    let trusted_rows: Vec<usize> =
        (0..t.n_rows()).filter(|&r| !det.get(r, col) && !t.cell(r, col).is_null()).collect();
    let mut counts: BTreeMap<String, (Value, usize)> = BTreeMap::new();
    for &r in &trusted_rows {
        let v = t.cell(r, col);
        counts.entry(v.as_key().into_owned()).or_insert((v.clone(), 0)).1 += 1;
    }
    let total = trusted_rows.len().max(1) as f64;
    let mut domain: Vec<(Value, f64)> =
        counts.into_values().map(|(v, n)| (v, n as f64 / total)).collect();
    domain.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.total_cmp(&b.0)));
    domain.truncate(64);

    let mut vicinity: BTreeMap<(usize, String), BTreeMap<String, f64>> = BTreeMap::new();
    for other in 0..t.n_cols() {
        if other == col {
            continue;
        }
        for &r in &trusted_rows {
            let anchor = t.cell(r, other);
            if anchor.is_null() || det.get(r, other) {
                continue;
            }
            let entry = vicinity.entry((other, anchor.as_key().into_owned())).or_default();
            *entry.entry(t.cell(r, col).as_key().into_owned()).or_insert(0.0) += 1.0;
        }
    }
    // Normalise vicinity votes per anchor.
    for votes in vicinity.values_mut() {
        let s: f64 = votes.values().sum();
        if s > 0.0 {
            votes.values_mut().for_each(|v| *v /= s);
        }
    }
    ColumnModels { domain, vicinity }
}

/// Per-model score of `candidate` for cell `(row, col)`.
fn model_scores(
    t: &Table,
    det: &CellMask,
    models: &ColumnModels,
    row: usize,
    col: usize,
    candidate: &Value,
) -> [f64; 3] {
    let error = t.cell(row, col).to_string();
    let cand_key = candidate.as_key().into_owned();
    // Value model: similarity of candidate to the erroneous spelling.
    let value_score = trigram_sim(&error, &candidate.to_string());
    // Vicinity model: co-occurrence votes from the row's trusted attributes.
    let mut vicinity_score = 0.0;
    let mut anchors = 0usize;
    for other in 0..t.n_cols() {
        if other == col || det.get(row, other) {
            continue;
        }
        let anchor = t.cell(row, other);
        if anchor.is_null() {
            continue;
        }
        if let Some(votes) = models.vicinity.get(&(other, anchor.as_key().into_owned())) {
            vicinity_score += votes.get(&cand_key).copied().unwrap_or(0.0);
            anchors += 1;
        }
    }
    if anchors > 0 {
        vicinity_score /= anchors as f64;
    }
    // Domain model: candidate frequency.
    let domain_score =
        models.domain.iter().find(|(v, _)| v == candidate).map(|(_, f)| *f).unwrap_or(0.0);
    [value_score, vicinity_score, domain_score]
}

impl Repairer for Baran {
    fn name(&self) -> &'static str {
        "baran"
    }

    fn repair(&self, ctx: &RepairContext<'_>) -> RepairOutcome {
        let _span = rein_telemetry::span("repair:baran");
        let t = ctx.dirty;
        let det = ctx.detections;
        let mut table = t.clone();
        let mut repaired = CellMask::new(t.n_rows(), t.n_cols());

        let per_column_models: BTreeMap<usize, ColumnModels> = (0..t.n_cols())
            .filter(|&c| det.count_col(c) > 0)
            .map(|c| (c, build_models(t, det, c)))
            .collect();

        // Learn model weights from labelled corrections (incremental
        // training on user feedback in the original; ground-truth oracle
        // here, exactly as the benchmark supplies it).
        let mut weights = [1.0f64, 1.0, 1.0];
        if let Some(clean) = ctx.clean {
            let mut rng = StdRng::seed_from_u64(ctx.seed);
            let mut labelled: Vec<CellRef> =
                det.iter().filter(|cell| cell.row < clean.n_rows()).collect();
            labelled.shuffle(&mut rng);
            labelled.truncate(ctx.label_budget.max(5));
            let mut hits = [1.0f64; 3]; // Laplace smoothing
            for cell in labelled {
                let truth = clean.cell(cell.row, cell.col);
                let Some(models) = per_column_models.get(&cell.col) else { continue };
                // Which model ranks the truth highest among domain cands?
                for (m, hit) in hits.iter_mut().enumerate() {
                    let truth_score = model_scores(t, det, models, cell.row, cell.col, truth)[m];
                    let best_other = models
                        .domain
                        .iter()
                        .filter(|(v, _)| v != truth)
                        .map(|(v, _)| model_scores(t, det, models, cell.row, cell.col, v)[m])
                        .fold(0.0, f64::max);
                    if truth_score > best_other {
                        *hit += 1.0;
                    }
                }
            }
            let total: f64 = hits.iter().sum();
            for (w, h) in weights.iter_mut().zip(hits) {
                *w = h / total * 3.0;
            }
        }

        for cell in det.iter() {
            rein_guard::checkpoint(1);
            let Some(models) = per_column_models.get(&cell.col) else { continue };
            let mut best: Option<(&Value, f64)> = None;
            for (cand, _) in &models.domain {
                let s = model_scores(t, det, models, cell.row, cell.col, cand);
                let combined = (weights[0] * s[0] + weights[1] * s[1] + weights[2] * s[2]) / 3.0;
                if best.is_none_or(|(_, b)| combined > b) {
                    best = Some((cand, combined));
                }
            }
            if let Some((cand, score)) = best {
                if score >= self.min_score && cand != t.cell(cell.row, cell.col) {
                    table.set_cell(cell.row, cell.col, cand.clone());
                    repaired.set(cell.row, cell.col, true);
                }
            }
        }
        RepairOutcome::repaired(table, repaired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::diff::diff_mask;
    use rein_data::{ColumnMeta, ColumnType, Schema};

    fn dataset() -> (Table, Table, CellMask) {
        let schema = Schema::new(vec![
            ColumnMeta::new("zip", ColumnType::Str),
            ColumnMeta::new("city", ColumnType::Str),
        ]);
        let clean = Table::from_rows(
            schema,
            (0..60)
                .map(|i| {
                    vec![
                        Value::str(["10115", "80331", "20095"][i % 3]),
                        Value::str(["Berlin", "Munich", "Hamburg"][i % 3]),
                    ]
                })
                .collect(),
        );
        let mut dirty = clean.clone();
        dirty.set_cell(3, 1, Value::str("Berlln")); // typo: value model territory (truth Berlin)
        dirty.set_cell(7, 1, Value::str("Hamburg")); // wrong city: vicinity territory
        dirty.set_cell(11, 1, Value::Null); // missing: domain/vicinity
        let det = diff_mask(&clean, &dirty);
        (clean, dirty, det)
    }

    #[test]
    fn baran_corrects_typos_via_value_model() {
        let (clean, dirty, det) = dataset();
        let ctx = RepairContext { clean: Some(&clean), ..RepairContext::new(&dirty, &det) };
        let out = Baran::default().repair(&ctx);
        let t = out.table().unwrap();
        assert_eq!(t.cell(3, 1), &Value::str("Berlin"), "typo corrected");
    }

    #[test]
    fn baran_corrects_semantic_errors_via_vicinity() {
        let (clean, dirty, det) = dataset();
        let ctx = RepairContext { clean: Some(&clean), ..RepairContext::new(&dirty, &det) };
        let out = Baran::default().repair(&ctx);
        let t = out.table().unwrap();
        assert_eq!(t.cell(7, 1), &Value::str("Munich"), "vicinity vote");
        assert_eq!(t.cell(11, 1), &Value::str("Hamburg"), "missing value filled");
    }

    #[test]
    fn baran_works_without_labels_using_uniform_weights() {
        let (_, dirty, det) = dataset();
        let out = Baran::default().repair(&RepairContext::new(&dirty, &det));
        let t = out.table().unwrap();
        // Typo correction only needs value+domain evidence.
        assert_eq!(t.cell(3, 1), &Value::str("Berlin"));
    }

    #[test]
    fn untouched_cells_stay_identical() {
        let (clean, dirty, det) = dataset();
        let ctx = RepairContext { clean: Some(&clean), ..RepairContext::new(&dirty, &det) };
        let out = Baran::default().repair(&ctx);
        let t = out.table().unwrap();
        for r in 0..dirty.n_rows() {
            for c in 0..dirty.n_cols() {
                if !det.get(r, c) {
                    assert_eq!(t.cell(r, c), dirty.cell(r, c));
                }
            }
        }
    }
}
