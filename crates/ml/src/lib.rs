//! # rein-ml
//!
//! From-scratch ML substrate replacing scikit-learn / XGBoost / Optuna /
//! Auto-Sklearn / TPOT in the REIN benchmark (Table 2 of the paper):
//!
//! * 12 classifiers, 11 regressors and 6 clustering algorithms behind the
//!   [`model::Classifier`] / [`model::Regressor`] / [`model::Clusterer`]
//!   traits, enumerable via the `*Kind` zoos;
//! * feature [`encode`]-ing from tables (standardisation + one-hot, with
//!   mean imputation at the model boundary);
//! * evaluation [`metrics`] including the silhouette index;
//! * seeded hyperparameter search ([`tune`], the Optuna stand-in) and two
//!   AutoML searchers ([`automl`]).
//!
//! Every stochastic component is a pure function of its seed.

// Numeric kernels index several parallel arrays at once; iterator zips
// would obscure them.
#![allow(clippy::needless_range_loop)]

pub mod adaboost;
pub mod affinity;
pub mod automl;
pub mod birch;
pub mod encode;
pub mod forest;
pub mod gbt;
pub mod gmm;
pub mod hierarchical;
pub mod instrument;
pub mod kmeans;
pub mod knn;
pub mod linalg;
pub mod linreg;
pub mod logistic;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod naive_bayes;
pub mod optics;
pub mod ridge;
pub mod sgd;
pub mod svc;
pub mod tree;
pub mod tune;

#[cfg(test)]
pub(crate) mod testutil;

pub use encode::{Encoder, LabelMap};
pub use linalg::Matrix;
pub use metrics::{classification_report, rmse, silhouette, ClassificationReport};
pub use model::{
    Classifier, ClassifierKind, Clusterer, ClustererKind, Regressor, RegressorKind, NOISE_LABEL,
};

#[cfg(test)]
mod zoo_tests {
    //! Every model in the zoo must fit and predict on a small task.
    use super::*;
    use crate::testutil::{blob_classification, linear_regression_data};

    #[test]
    fn every_classifier_beats_chance_on_blobs() {
        let (x, y) = blob_classification(120, 3, 301);
        for kind in ClassifierKind::ALL {
            let mut m = kind.build(1);
            m.fit(&x, &y, 3);
            let acc = metrics::accuracy(&y, &m.predict(&x));
            assert!(acc > 0.5, "{} training accuracy only {acc}", kind.name());
        }
    }

    #[test]
    fn every_regressor_beats_mean_baseline() {
        let (x, y) = linear_regression_data(200, 0.2, 302);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let baseline = metrics::rmse(&y, &vec![mean; y.len()]);
        for kind in RegressorKind::ALL {
            let mut m = kind.build(1);
            m.fit(&x, &y);
            let err = metrics::rmse(&y, &m.predict(&x));
            assert!(err < baseline, "{} rmse {err} vs baseline {baseline}", kind.name());
        }
    }

    #[test]
    fn every_clusterer_labels_every_point() {
        let (x, _) = blob_classification(60, 3, 303);
        for kind in ClustererKind::ALL {
            let mut c = kind.build(3, 1);
            let labels = c.fit_predict(&x);
            assert_eq!(labels.len(), 60, "{}", kind.name());
        }
    }

    #[test]
    fn every_classifier_proba_rows_are_valid() {
        let (x, y) = blob_classification(80, 2, 304);
        for kind in ClassifierKind::ALL {
            let mut m = kind.build(1);
            m.fit(&x, &y, 2);
            let p = m.predict_proba(&x, 2);
            for r in 0..p.rows() {
                let s: f64 = p.row(r).iter().sum();
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&s) || (s - 1.0).abs() < 1e-6,
                    "{} proba row sums to {s}",
                    kind.name()
                );
                assert!(p.row(r).iter().all(|&v| v >= -1e-12), "{} negative proba", kind.name());
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn silhouette_is_bounded(
            points in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 6..40),
            k in 2usize..4,
        ) {
            let rows: Vec<Vec<f64>> = points.iter().map(|&(a, b)| vec![a, b]).collect();
            let x = Matrix::from_rows(&rows);
            let mut km = kmeans::KMeans::new(k, 1);
            let labels = km.fit_predict(&x);
            let s = metrics::silhouette(&x, &labels);
            if !s.is_nan() {
                prop_assert!((-1.0..=1.0).contains(&s), "s = {}", s);
            }
        }

        #[test]
        fn kmeans_labels_bounded(
            points in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 3..40),
            k in 1usize..5,
        ) {
            let rows: Vec<Vec<f64>> = points.iter().map(|&(a, b)| vec![a, b]).collect();
            let x = Matrix::from_rows(&rows);
            let mut km = kmeans::KMeans::new(k, 2);
            let labels = km.fit_predict(&x);
            prop_assert_eq!(labels.len(), x.rows());
            prop_assert!(labels.iter().all(|&l| l < k.min(x.rows())));
        }

        #[test]
        fn tree_predictions_are_within_target_range(
            ys in prop::collection::vec(-100.0f64..100.0, 5..50),
        ) {
            let rows: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
            let x = Matrix::from_rows(&rows);
            let mut t = tree::DecisionTreeRegressor::new(tree::TreeParams::default());
            t.fit(&x, &ys);
            let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for p in t.predict(&x) {
                prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            }
        }

        #[test]
        fn classification_report_bounded(
            pairs in prop::collection::vec((0usize..4, 0usize..4), 1..60),
        ) {
            let truth: Vec<usize> = pairs.iter().map(|p| p.0).collect();
            let pred: Vec<usize> = pairs.iter().map(|p| p.1).collect();
            let r = metrics::classification_report(&truth, &pred, 4);
            for v in [r.precision, r.recall, r.f1, r.accuracy] {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
