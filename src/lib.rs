//! # REIN
//!
//! Facade crate re-exporting the whole REIN workspace — a Rust
//! reproduction of the EDBT 2023 benchmark *"REIN: A Comprehensive
//! Benchmark Framework for Data Cleaning Methods in ML Pipelines"*.
//!
//! ```
//! use rein::core::{run_repair, DetectorHarness};
//! use rein::datasets::{DatasetId, Params};
//! use rein::detect::DetectorKind;
//! use rein::repair::RepairKind;
//!
//! // A scaled benchmark dataset with exact error ground truth.
//! let ds = DatasetId::Beers.generate(&Params::scaled(0.05, 42));
//! assert!(ds.error_rate() > 0.05);
//!
//! // Detect with the Min-K ensemble, repair with mean-mode imputation.
//! let harness = DetectorHarness::new(&ds, 50, 1);
//! let detection = harness.run(&ds, DetectorKind::MinK);
//! assert!(detection.quality.recall > 0.0);
//!
//! let repair = run_repair(&ds, &detection.mask, RepairKind::ImputeMeanMode, 1);
//! let repaired = repair.version.expect("generic repairers return a table");
//! assert_eq!(repaired.table.n_rows(), ds.dirty.n_rows());
//! ```
pub use rein_constraints as constraints;
pub use rein_core as core;
pub use rein_data as data;
pub use rein_datasets as datasets;
pub use rein_detect as detect;
pub use rein_errors as errors;
pub use rein_ml as ml;
pub use rein_repair as repair;
pub use rein_stats as stats;
