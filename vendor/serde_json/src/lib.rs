//! Offline vendored stand-in for `serde_json`.
//!
//! JSON text ⇄ the vendored `serde`'s [`Content`] tree. Supports the
//! subset REIN-RS uses: [`to_string`], [`to_string_pretty`],
//! [`from_str`], plus [`to_vec`] and [`from_slice`] conveniences.
//!
//! Numbers keep 64-bit integer precision (important for RNG seeds in the
//! telemetry run manifests); floats are emitted via Rust's shortest
//! round-trip formatting; non-finite floats serialize as `null`.

use serde::{Content, Deserialize, Serialize};

/// Alias so callers can name the self-describing tree the JSON layer
/// works on (a stand-in for `serde_json::Value`).
pub type Value = Content;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::deserialize_content(&content).map_err(Error::from)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // Keep a distinguishable float form for integral values so
                // 1.0 round-trips as a float, matching serde_json.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&v.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".to_string()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|c| c as char))))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".to_string()))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![Some(1.25f64), None, Some(-3.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.25,null,-3.0]");
        assert_eq!(from_str::<Vec<Option<f64>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1u32, 2];
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(json, "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<Vec<u8>>("[1,]").is_err());
    }
}
