//! Chaos smoke test: runs a full S1 detection + repair grid twice — once
//! fault-free, once under seeded fault injection — and asserts that
//!
//! 1. exactly the injected cells degrade (each with a structured
//!    failure of the expected cause),
//! 2. every non-injected cell's output is byte-identical between the
//!    two runs (serialized masks and repaired versions compared as
//!    strings), and
//! 3. every injected failure is causally attributed: its failure record
//!    links a cell trace id, that trace's root is the injected cell,
//!    the tree carries a `guard:fail:*` instant event — and no
//!    *other* cell trace carries one.
//!
//! The injection spec comes from `REIN_CHAOS` when set, otherwise the
//! built-in default targets one detector (panic) and one repair cell
//! (budget stall). Exit codes: `3` (the standard degraded-run exit from
//! [`rein_bench::conclude`]) on success — the chaos run *did* degrade
//! cells, and the manifest records them; `4` when a non-injected cell
//! diverged; `5` when the failure set differs from the injection spec;
//! `2` for a bad environment.
//!
//! `--dump-cells PATH` additionally writes the fault-free grid's
//! serialized cells to `PATH` — CI runs the smoke at `REIN_THREADS=1`
//! and `REIN_THREADS=4` and asserts the two dumps hash identically.

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use rein_bench::{conclude, dataset, dump_cells, header, install_thread_pool, phase};
use rein_core::{ChaosSpec, Controller, GuardPolicy};
use rein_datasets::DatasetId;

/// One detector panics; one (detector, repairer) cell stalls.
const DEFAULT_SPEC: &str = "detect:raha=panic,repair:impute_mean_mode#max_entropy=stall";

fn main() {
    let setup = phase("setup");
    install_thread_pool();
    let dump_path = match parse_args() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let spec_text = std::env::var("REIN_CHAOS").unwrap_or_else(|_| DEFAULT_SPEC.to_string());
    let chaos = match ChaosSpec::parse(&spec_text) {
        Ok(c) if !c.is_empty() => c,
        Ok(_) => {
            eprintln!("error: chaos smoke needs at least one injection rule");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: REIN_CHAOS={spec_text:?} is invalid: {e}");
            std::process::exit(2);
        }
    };
    let ds = dataset(DatasetId::BreastCancer, 29);
    drop(setup);

    header("Chaos smoke — S1 grid under fault injection");
    println!("dataset: {} ({} rows)", ds.info.name, ds.dirty.n_rows());
    println!("spec:    {spec_text}");

    let baseline_phase = phase("baseline");
    let clean_ctrl = Controller { label_budget: 50, seed: 29, ..Controller::default() };
    let baseline = clean_ctrl.run_grid(&ds, &[], 0);
    drop(baseline_phase);
    let baseline_failures = rein_telemetry::failures_snapshot();
    if !baseline_failures.is_empty() {
        eprintln!("error: fault-free run degraded {} cell(s)", baseline_failures.len());
        std::process::exit(5);
    }
    if let Some(path) = &dump_path {
        match dump_cells(path, &baseline) {
            Ok(()) => println!("cells dump: {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }

    let chaos_phase = phase("chaos");
    let chaos_ctrl = Controller {
        label_budget: 50,
        seed: 29,
        policy: GuardPolicy::with_chaos(chaos.clone()),
        ..Controller::default()
    };
    let injected = chaos_ctrl.run_grid(&ds, &[], 0);
    drop(chaos_phase);

    let verify = phase("verify");
    // Every injected rule must have produced at least one failure, and
    // every failure must trace back to an injected rule.
    let failures = rein_telemetry::failures_snapshot();
    println!("\n{} failure record(s):", failures.len());
    for f in &failures {
        println!(
            "  {}:{}@{}#{} -> {} (attempts {})",
            f.phase, f.strategy, f.dataset, f.scope, f.cause, f.attempts
        );
    }
    if failures.len() != chaos.len() {
        eprintln!(
            "error: {} injection rule(s) but {} failure record(s)",
            chaos.len(),
            failures.len()
        );
        std::process::exit(5);
    }
    for f in &failures {
        let covered =
            chaos.rules().iter().any(|r| r.phase.name() == f.phase && r.strategy == f.strategy);
        if !covered {
            eprintln!(
                "error: failure {}:{} does not match any injection rule",
                f.phase, f.strategy
            );
            std::process::exit(5);
        }
    }

    // Causal attribution: each failure record links the trace of the
    // cell it was injected into, and the failure instant sits on that
    // trace — and only there.
    let spans = rein_telemetry::snapshot_spans();
    let forest = rein_telemetry::build_traces(&spans);
    fn count_fail_instants(node: &rein_telemetry::TraceNode) -> usize {
        usize::from(node.instant && node.name.starts_with("guard:fail:"))
            + node.children.iter().map(count_fail_instants).sum::<usize>()
    }
    for f in &failures {
        if f.trace_id.is_empty() {
            eprintln!("error: failure {}:{} carries no trace link", f.phase, f.strategy);
            std::process::exit(5);
        }
        let Some(trace) = forest.traces.iter().find(|t| t.trace_hex() == f.trace_id) else {
            eprintln!(
                "error: failure {}:{} links trace {} but no such trace exists",
                f.phase, f.strategy, f.trace_id
            );
            std::process::exit(5);
        };
        let expected_root = if f.scope.is_empty() {
            format!("cell:{}:{}", f.phase, f.strategy)
        } else {
            format!("cell:{}:{}#{}", f.phase, f.strategy, f.scope)
        };
        if trace.root.name != expected_root {
            eprintln!(
                "error: failure {}:{} links trace {} rooted at {:?}, expected {:?}",
                f.phase, f.strategy, f.trace_id, trace.root.name, expected_root
            );
            std::process::exit(5);
        }
        if count_fail_instants(&trace.root) == 0 {
            eprintln!(
                "error: trace {} ({}) carries no guard:fail instant",
                f.trace_id, trace.root.name
            );
            std::process::exit(5);
        }
    }
    let failing_traces = forest.traces.iter().filter(|t| count_fail_instants(&t.root) > 0).count();
    if failing_traces != failures.len() {
        eprintln!(
            "error: {failing_traces} trace(s) carry failure instants but {} cell(s) failed",
            failures.len()
        );
        std::process::exit(5);
    }
    println!("{} failure(s) causally attributed to their injected cell traces", failures.len());

    // Non-injected cells must match the fault-free run byte-for-byte.
    let failed_keys: Vec<String> = failures
        .iter()
        .map(|f| {
            if f.scope.is_empty() {
                format!("{}:{}", f.phase, f.strategy)
            } else {
                format!("{}:{}#{}", f.phase, f.strategy, f.scope)
            }
        })
        .collect();
    // A degraded detector also changes every repair cell it feeds.
    let affected = |key: &str| {
        failed_keys.iter().any(|fk| {
            key == fk
                || (fk.starts_with("detect:")
                    && key.starts_with("repair:")
                    && key.ends_with(&format!("#{}", &fk["detect:".len()..])))
        })
    };
    let mut checked = 0usize;
    let mut diverged = 0usize;
    for (key, bytes) in &baseline {
        if affected(key) {
            continue;
        }
        checked += 1;
        match injected.get(key) {
            Some(other) if other == bytes => {}
            Some(_) => {
                eprintln!("error: non-injected cell {key} diverged under chaos");
                diverged += 1;
            }
            None => {
                eprintln!("error: cell {key} missing from the chaos run");
                diverged += 1;
            }
        }
    }
    drop(verify);
    println!(
        "\n{checked} non-injected cell(s) byte-identical; {} degraded as injected",
        failures.len()
    );
    if diverged > 0 {
        std::process::exit(4);
    }
    conclude("chaos_smoke", 29, 50);
}

/// Parses the binary's arguments: only `--dump-cells PATH` is accepted.
fn parse_args() -> Result<Option<std::path::PathBuf>, String> {
    let mut args = std::env::args().skip(1);
    let mut dump = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dump-cells" => {
                let path = args.next().ok_or("--dump-cells needs a PATH argument")?;
                dump = Some(std::path::PathBuf::from(path));
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(dump)
}
