//! Column profiling: the summary statistics a data-quality tool shows
//! first — null counts, distinct counts, numeric ranges, top values.

use serde::{Deserialize, Serialize};

use crate::table::Table;
use crate::value::Value;

/// Profile of one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Total cells.
    pub count: usize,
    /// NULL cells.
    pub nulls: usize,
    /// Distinct non-null values.
    pub distinct: usize,
    /// Cells convertible to a number.
    pub numeric_cells: usize,
    /// Minimum numeric value (None when no numeric cells).
    pub min: Option<f64>,
    /// Maximum numeric value.
    pub max: Option<f64>,
    /// Mean of the numeric cells.
    pub mean: Option<f64>,
    /// The most frequent non-null value and its count.
    pub top_value: Option<(String, usize)>,
}

impl ColumnProfile {
    /// Fraction of NULL cells.
    pub fn null_fraction(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.nulls as f64 / self.count as f64
        }
    }

    /// Whether the column looks like a key (all non-null values distinct).
    pub fn is_key_like(&self) -> bool {
        self.distinct > 0 && self.distinct == self.count - self.nulls
    }
}

/// Profiles every column of a table.
pub fn profile(table: &Table) -> Vec<ColumnProfile> {
    (0..table.n_cols()).map(|c| profile_column(table, c)).collect()
}

/// Profiles one column.
pub fn profile_column(table: &Table, col: usize) -> ColumnProfile {
    let mut nulls = 0usize;
    let mut numeric_cells = 0usize;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0f64;
    for v in table.column(col) {
        match v {
            Value::Null => nulls += 1,
            other => {
                if let Some(x) = other.as_f64() {
                    numeric_cells += 1;
                    min = min.min(x);
                    max = max.max(x);
                    sum += x;
                }
            }
        }
    }
    let counts = table.value_counts(col);
    ColumnProfile {
        name: table.schema().column(col).name.clone(),
        count: table.n_rows(),
        nulls,
        distinct: counts.len(),
        numeric_cells,
        min: (numeric_cells > 0).then_some(min),
        max: (numeric_cells > 0).then_some(max),
        mean: (numeric_cells > 0).then_some(sum / numeric_cells as f64),
        top_value: counts.first().map(|(v, n)| (v.to_string(), *n)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnMeta, ColumnType, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("id", ColumnType::Int),
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("c", ColumnType::Str),
        ]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::Int(1), Value::Float(10.0), Value::str("a")],
                vec![Value::Int(2), Value::Null, Value::str("a")],
                vec![Value::Int(3), Value::Float(30.0), Value::str("b")],
                vec![Value::Int(4), Value::Float(10.0), Value::Null],
            ],
        )
    }

    #[test]
    fn numeric_profile() {
        let p = profile_column(&table(), 1);
        assert_eq!(p.count, 4);
        assert_eq!(p.nulls, 1);
        assert_eq!(p.numeric_cells, 3);
        assert_eq!(p.min, Some(10.0));
        assert_eq!(p.max, Some(30.0));
        assert!((p.mean.unwrap() - 50.0 / 3.0).abs() < 1e-12);
        assert!((p.null_fraction() - 0.25).abs() < 1e-12);
        assert!(!p.is_key_like());
    }

    #[test]
    fn categorical_profile() {
        let p = profile_column(&table(), 2);
        assert_eq!(p.distinct, 2);
        assert_eq!(p.numeric_cells, 0);
        assert_eq!(p.min, None);
        assert_eq!(p.top_value, Some(("a".to_string(), 2)));
    }

    #[test]
    fn key_detection() {
        let p = profile_column(&table(), 0);
        assert!(p.is_key_like());
        assert_eq!(p.distinct, 4);
    }

    #[test]
    fn whole_table_profile() {
        let ps = profile(&table());
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].name, "id");
        assert_eq!(ps[2].name, "c");
    }

    #[test]
    fn empty_table() {
        let schema = Schema::new(vec![ColumnMeta::new("x", ColumnType::Int)]);
        let t = Table::empty(schema);
        let p = profile_column(&t, 0);
        assert_eq!(p.count, 0);
        assert_eq!(p.null_fraction(), 0.0);
        assert_eq!(p.top_value, None);
    }
}
