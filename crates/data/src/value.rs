//! Cell values.
//!
//! A [`Value`] is the content of one table cell. Dirty data routinely holds
//! values that do not match the declared column type (a typo turns `12.5`
//! into `12.t`), so every cell stores a dynamically typed value regardless of
//! its column's [`crate::schema::ColumnType`].

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

/// Dynamically typed cell content.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Explicit missing value (SQL NULL / empty CSV field / NaN).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. `NaN` is normalised to [`Value::Null`] on construction
    /// via [`Value::float`].
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Builds a float value, normalising non-finite payloads to `Null`.
    ///
    /// NaN cells are how Pandas (the paper's substrate) represents missing
    /// numeric data, so we fold them into `Null` at the boundary.
    pub fn float(x: f64) -> Self {
        if x.is_nan() {
            Value::Null
        } else {
            Value::Float(x)
        }
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Returns `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value: ints and floats convert directly, bools map
    /// to 0/1 and numeric-looking strings are parsed. Returns `None` for
    /// nulls and non-numeric strings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Null => None,
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(s) => s.trim().parse::<f64>().ok().filter(|f| f.is_finite()),
        }
    }

    /// Integer view (strict: floats only convert when integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Str(s) => s.trim().parse::<i64>().ok(),
            _ => None,
        }
    }

    /// Canonical string view used for categorical comparisons and hashing.
    ///
    /// Numbers render through [`fmt::Display`] so `Int(3)` and `Str("3")`
    /// produce the same key.
    pub fn as_key(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed(""),
            Value::Str(s) => Cow::Borrowed(s.as_str()),
            other => Cow::Owned(other.to_string()),
        }
    }

    /// Parses a raw text field into the most specific value.
    ///
    /// Empty strings and a small set of NULL spellings become `Null`; then
    /// integer, float and boolean parses are attempted in order; anything
    /// else stays a string. This mirrors the loose typing of the CSV inputs
    /// the original benchmark consumes.
    pub fn parse(raw: &str) -> Self {
        let t = raw.trim();
        if t.is_empty() || matches!(t, "NULL" | "null" | "NaN" | "nan" | "NA" | "N/A" | "None") {
            return Value::Null;
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            return Value::float(f);
        }
        match t {
            "true" | "True" | "TRUE" => Value::Bool(true),
            "false" | "False" | "FALSE" => Value::Bool(false),
            _ => Value::Str(t.to_string()),
        }
    }

    /// Structural equality with a relative/absolute tolerance on numerics.
    ///
    /// Used when diffing a repaired table against the ground truth: repairs
    /// produced by regression imputers are counted correct when within
    /// `tol` of the true value.
    pub fn approx_eq(&self, other: &Value, tol: f64) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => {
                let scale = a.abs().max(b.abs()).max(1.0);
                (a - b).abs() <= tol * scale
            }
            _ => self == other,
        }
    }

    /// A total order over values: Null < Bool < numeric < Str.
    ///
    /// Numeric values (Int/Float) compare by magnitude across the two
    /// variants, giving masks and group-bys a deterministic order.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

/// `Ord` delegates to [`Value::total_cmp`], making `Value` usable as a
/// `BTreeMap`/`BTreeSet` key — the workspace's determinism rules forbid
/// hash-ordered containers in result-producing code. Consistent with
/// `Eq`: cross-variant numeric equality (`Int(3) == Float(3.0)`) compares
/// `Equal` through the same f64 view.
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a.to_bits() == b.to_bits(),
            (Int(a), Float(b)) | (Float(b), Int(a)) => (*a as f64).to_bits() == b.to_bits(),
            (Str(a), Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float hash through the same f64-bits representation so
            // that `Int(3) == Float(3.0)` implies equal hashes.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => Ok(()),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn nan_normalises_to_null() {
        assert!(Value::float(f64::NAN).is_null());
        assert_eq!(Value::float(1.5), Value::Float(1.5));
    }

    #[test]
    fn parse_covers_all_variants() {
        assert_eq!(Value::parse(""), Value::Null);
        assert_eq!(Value::parse("NaN"), Value::Null);
        assert_eq!(Value::parse("N/A"), Value::Null);
        assert_eq!(Value::parse("42"), Value::Int(42));
        assert_eq!(Value::parse("-7"), Value::Int(-7));
        assert_eq!(Value::parse("3.25"), Value::Float(3.25));
        assert_eq!(Value::parse("true"), Value::Bool(true));
        assert_eq!(Value::parse("FALSE"), Value::Bool(false));
        assert_eq!(Value::parse("ale"), Value::str("ale"));
        assert_eq!(Value::parse("  padded  "), Value::str("padded"));
    }

    #[test]
    fn int_float_cross_equality_and_hash() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn as_f64_conversions() {
        assert_eq!(Value::Int(5).as_f64(), Some(5.0));
        assert_eq!(Value::str("2.5").as_f64(), Some(2.5));
        assert_eq!(Value::str("abc").as_f64(), None);
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn as_i64_strictness() {
        assert_eq!(Value::Float(4.0).as_i64(), Some(4));
        assert_eq!(Value::Float(4.5).as_i64(), None);
        assert_eq!(Value::str("11").as_i64(), Some(11));
    }

    #[test]
    fn approx_eq_uses_relative_tolerance() {
        assert!(Value::Float(100.0).approx_eq(&Value::Float(100.4), 0.005));
        assert!(!Value::Float(100.0).approx_eq(&Value::Float(102.0), 0.005));
        assert!(Value::str("x").approx_eq(&Value::str("x"), 0.0));
        assert!(!Value::str("x").approx_eq(&Value::str("y"), 0.5));
    }

    #[test]
    fn total_cmp_orders_across_variants() {
        let mut vs = vec![
            Value::str("z"),
            Value::Int(5),
            Value::Null,
            Value::Float(2.5),
            Value::Bool(false),
        ];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(false),
                Value::Float(2.5),
                Value::Int(5),
                Value::str("z"),
            ]
        );
    }

    #[test]
    fn display_roundtrips_through_parse_for_simple_values() {
        for v in [Value::Int(17), Value::str("hello"), Value::Bool(true)] {
            assert_eq!(Value::parse(&v.to_string()), v);
        }
        // Null displays as empty which parses back to Null.
        assert_eq!(Value::parse(&Value::Null.to_string()), Value::Null);
    }

    #[test]
    fn as_key_unifies_numeric_spellings() {
        assert_eq!(Value::Int(3).as_key(), Value::Int(3).to_string());
        assert_eq!(Value::str("ipa").as_key(), "ipa");
        assert_eq!(Value::Null.as_key(), "");
    }
}
