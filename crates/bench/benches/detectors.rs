//! Criterion runtime benchmarks for the error detectors (the runtime
//! panels of Figure 2: 2c, 2j, 2m, 2o, 2t).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rein_core::DetectorHarness;
use rein_datasets::{DatasetId, Params};
use rein_detect::DetectorKind;

fn bench_detectors(c: &mut Criterion) {
    // Small fixed scale so `cargo bench` stays fast; REIN_SCALE-style
    // scaling is available through the fig2 binary for absolute numbers.
    let ds = DatasetId::Beers.generate(&Params::scaled(0.1, 1));
    let harness = DetectorHarness::new(&ds, 60, 1);
    let mut group = c.benchmark_group("detectors_beers");
    group.sample_size(10);
    for kind in [
        DetectorKind::MvDetector,
        DetectorKind::Sd,
        DetectorKind::Iqr,
        DetectorKind::Fahes,
        DetectorKind::Nadeef,
        DetectorKind::Katara,
        DetectorKind::HoloClean,
        DetectorKind::OpenRefine,
        DetectorKind::DBoost,
        DetectorKind::IsolationForest,
        DetectorKind::MinK,
        DetectorKind::MaxEntropy,
        DetectorKind::Raha,
        DetectorKind::Ed2,
        DetectorKind::MetadataDriven,
        DetectorKind::Picket,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            let detector = kind.build();
            let ctx = harness.context(&ds);
            b.iter(|| detector.detect(&ctx));
        });
    }
    group.finish();

    // Duplicate detectors on their natural dataset.
    let citation = DatasetId::Citation.generate(&Params::scaled(0.05, 2));
    let harness = DetectorHarness::new(&citation, 60, 1);
    let mut group = c.benchmark_group("detectors_citation");
    group.sample_size(10);
    for kind in [DetectorKind::KeyCollision, DetectorKind::ZeroEr, DetectorKind::CleanLab] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            let detector = kind.build();
            let ctx = harness.context(&citation);
            b.iter(|| detector.detect(&ctx));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
