//! dBoost (Mariet & Madden): per-column statistical models — histogram,
//! Gaussian, and a two-component Gaussian mixture — with a random search
//! over model choice and tightness hyperparameters, keeping the
//! configuration whose flag rate looks most outlier-like (closest to a
//! small target rate), as the original tunes itself without labels.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::rng::derive_seed;
use rein_data::{CellMask, Table};

use crate::context::{DetectContext, Detector};

/// Per-column model family.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ModelKind {
    Gaussian,
    Mixture,
    Histogram,
}

/// dBoost detector.
#[derive(Debug, Clone)]
pub struct DBoost {
    /// Random-search trials per column.
    pub n_trials: usize,
    /// Target flag rate the search steers toward (outliers are rare).
    pub target_rate: f64,
}

impl Default for DBoost {
    fn default() -> Self {
        Self { n_trials: 12, target_rate: 0.02 }
    }
}

/// Estimated contamination: the weight of the minor component of a
/// two-component mixture fit, clamped to a plausible outlier range. Lets
/// the hyperparameter search target the column's *actual* outlier mass
/// instead of a fixed guess.
fn estimate_contamination(xs: &[f64]) -> f64 {
    const FALLBACK: f64 = 0.02;
    if xs.len() < 16 {
        return FALLBACK;
    }
    // Fraction of cells more than 3 robust standard deviations from the
    // median (median/IQR resist the contamination itself). On a clean
    // Gaussian column this is ~0.3%, well under the fallback floor.
    let median = {
        let mut s = xs.to_vec();
        s.sort_by(|a, b| a.total_cmp(b));
        s[s.len() / 2]
    };
    let mut dev: Vec<f64> = xs.iter().map(|x| (x - median).abs()).collect();
    dev.sort_by(|a, b| a.total_cmp(b));
    // MAD-based scale stays anchored in the clean bulk for contamination
    // up to ~50%.
    let scale = (dev[dev.len() / 2] / 0.6745).max(1e-12);
    let far = xs.iter().filter(|x| ((**x) - median).abs() > 3.0 * scale).count();
    (far as f64 / xs.len() as f64).clamp(FALLBACK, 0.45)
}

/// Two-component 1-D Gaussian mixture via a few EM steps.
fn fit_mixture(xs: &[f64]) -> ((f64, f64), (f64, f64)) {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let half = sorted.len() / 2;
    let mut m1 = sorted[..half.max(1)].iter().sum::<f64>() / half.max(1) as f64;
    let mut m2 = sorted[half..].iter().sum::<f64>() / (sorted.len() - half).max(1) as f64;
    let mut s1 = 1.0f64;
    let mut s2 = 1.0f64;
    for _ in 0..10 {
        let (mut sum1, mut sum2, mut w1, mut w2, mut v1, mut v2) = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
        for &x in xs {
            let p1 = (-(x - m1).powi(2) / (2.0 * s1 * s1)).exp() / s1.max(1e-9);
            let p2 = (-(x - m2).powi(2) / (2.0 * s2 * s2)).exp() / s2.max(1e-9);
            let r1 = p1 / (p1 + p2).max(1e-300);
            let r2 = 1.0 - r1;
            sum1 += r1 * x;
            sum2 += r2 * x;
            w1 += r1;
            w2 += r2;
            v1 += r1 * (x - m1).powi(2);
            v2 += r2 * (x - m2).powi(2);
        }
        m1 = sum1 / w1.max(1e-12);
        m2 = sum2 / w2.max(1e-12);
        s1 = (v1 / w1.max(1e-12)).sqrt().max(1e-6);
        s2 = (v2 / w2.max(1e-12)).sqrt().max(1e-6);
    }
    ((m1, s1), (m2, s2))
}

/// Flags for one column under one (model, tightness) configuration.
fn flags_for(t: &Table, col: usize, kind: ModelKind, tightness: f64) -> Vec<usize> {
    let xs = t.numeric_values(col);
    if xs.len() < 8 {
        return Vec::new();
    }
    match kind {
        ModelKind::Gaussian => {
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let std = (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64)
                .sqrt()
                .max(1e-12);
            (0..t.n_rows())
                .filter(|&r| {
                    t.cell(r, col).as_f64().is_some_and(|x| (x - mean).abs() > tightness * std)
                })
                .collect()
        }
        ModelKind::Mixture => {
            let ((m1, s1), (m2, s2)) = fit_mixture(&xs);
            (0..t.n_rows())
                .filter(|&r| {
                    t.cell(r, col).as_f64().is_some_and(|x| {
                        (x - m1).abs() > tightness * s1 && (x - m2).abs() > tightness * s2
                    })
                })
                .collect()
        }
        ModelKind::Histogram => {
            // Equal-width bins; values in bins rarer than `1/tightness²·n`
            // are flagged.
            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if hi <= lo {
                return Vec::new();
            }
            let bins = 20usize;
            let width = (hi - lo) / bins as f64;
            let mut counts = vec![0usize; bins];
            for &x in &xs {
                let b = (((x - lo) / width) as usize).min(bins - 1);
                counts[b] += 1;
            }
            let min_count = (xs.len() as f64 / (tightness * tightness).max(1.0) / bins as f64)
                .max(1.0) as usize;
            (0..t.n_rows())
                .filter(|&r| {
                    t.cell(r, col).as_f64().is_some_and(|x| {
                        let b = (((x - lo) / width) as usize).min(bins - 1);
                        counts[b] < min_count
                    })
                })
                .collect()
        }
    }
}

impl Detector for DBoost {
    fn name(&self) -> &'static str {
        "dboost"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:dboost");
        let t = ctx.dirty;
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());
        for col in ctx.numeric_columns() {
            let mut rng = StdRng::seed_from_u64(derive_seed(ctx.seed, col as u64));
            // Adapt the flag-rate target to the column's estimated
            // contamination (bimodal columns carry large outlier mass).
            let xs = t.numeric_values(col);
            let target = estimate_contamination(&xs).max(self.target_rate);
            let mut best: Option<(f64, Vec<usize>)> = None;
            for _ in 0..self.n_trials {
                let kind = match rng.random_range(0..3u8) {
                    0 => ModelKind::Gaussian,
                    1 => ModelKind::Mixture,
                    _ => ModelKind::Histogram,
                };
                let tightness = rng.random_range(1.2..6.0);
                let flags = flags_for(t, col, kind, tightness);
                let rate = flags.len() as f64 / t.n_rows().max(1) as f64;
                // Score: distance of the flag rate to the expected outlier
                // rate; a configuration flagging half the column is useless.
                let score = (rate - target).abs();
                if best.as_ref().is_none_or(|(s, _)| score < *s) {
                    best = Some((score, flags));
                }
            }
            if let Some((_, flags)) = best {
                for r in flags {
                    mask.set(r, col, true);
                }
            }
        }
        // Rare-category histogram for categorical columns.
        for col in ctx.categorical_columns() {
            let counts = t.value_counts(col);
            let total: usize = counts.iter().map(|(_, n)| n).sum();
            if total < 20 || counts.len() < 2 {
                continue;
            }
            let rare: std::collections::BTreeSet<String> = counts
                .iter()
                .filter(|(_, n)| (*n as f64) < total as f64 * 0.005)
                .map(|(v, _)| v.as_key().into_owned())
                .collect();
            if rare.is_empty() {
                continue;
            }
            for r in 0..t.n_rows() {
                rein_guard::checkpoint(1);
                let v = t.cell(r, col);
                if !v.is_null() && rare.contains(v.as_key().as_ref()) {
                    mask.set(r, col, true);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![ColumnMeta::new("x", ColumnType::Float)]);
        let mut rows: Vec<Vec<Value>> =
            (0..300).map(|i| vec![Value::Float(50.0 + (i % 11) as f64)]).collect();
        rows[5][0] = Value::Float(900.0);
        rows[200][0] = Value::Float(-800.0);
        Table::from_rows(schema, rows)
    }

    #[test]
    fn finds_planted_outliers() {
        let t = table();
        let ctx = DetectContext { seed: 3, ..DetectContext::bare(&t) };
        let m = DBoost::default().detect(&ctx);
        assert!(m.get(5, 0));
        assert!(m.get(200, 0));
        assert!(m.count() <= 10, "flag count {}", m.count());
    }

    #[test]
    fn mixture_fit_separates_two_modes() {
        let xs: Vec<f64> = (0..100)
            .map(|i| {
                if i % 2 == 0 {
                    0.0 + (i % 10) as f64 * 0.01
                } else {
                    10.0 + (i % 10) as f64 * 0.01
                }
            })
            .collect();
        let ((m1, _), (m2, _)) = fit_mixture(&xs);
        let (lo, hi) = if m1 < m2 { (m1, m2) } else { (m2, m1) };
        assert!(lo < 1.0, "lo {lo}");
        assert!(hi > 9.0, "hi {hi}");
    }

    #[test]
    fn rare_categories_are_flagged() {
        let schema = Schema::new(vec![ColumnMeta::new("c", ColumnType::Str)]);
        let mut rows: Vec<Vec<Value>> =
            (0..500).map(|i| vec![Value::str(if i % 2 == 0 { "a" } else { "b" })]).collect();
        rows[17][0] = Value::str("zzz-rare");
        let t = Table::from_rows(schema, rows);
        let m = DBoost::default().detect(&DetectContext::bare(&t));
        assert!(m.get(17, 0));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = table();
        let ctx = DetectContext { seed: 5, ..DetectContext::bare(&t) };
        assert_eq!(DBoost::default().detect(&ctx), DBoost::default().detect(&ctx));
    }
}
