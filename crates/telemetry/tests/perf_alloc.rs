//! Live test of the counting global allocator: this binary installs
//! [`CountingAllocator`] (no other test binary does), so allocation
//! deltas and the peak tracker can be asserted against real traffic.

use rein_telemetry::perf::{self, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn tracking_reports_active() {
    assert!(perf::alloc_tracking_active(), "global counting allocator must be detected");
}

#[test]
fn deltas_count_real_allocations() {
    let before = perf::alloc_snapshot();
    let blocks: Vec<Vec<u8>> = (0..10).map(|_| vec![0u8; 4096]).collect();
    let delta = perf::alloc_snapshot().since(&before);
    assert!(delta.allocs >= 10, "expected >= 10 allocations, saw {}", delta.allocs);
    assert!(
        delta.bytes_allocated >= 10 * 4096,
        "expected >= 40960 bytes, saw {}",
        delta.bytes_allocated
    );
    drop(blocks);
}

#[test]
fn peak_tracks_outstanding_bytes() {
    perf::reset_alloc_peak();
    let floor = perf::alloc_snapshot().peak_bytes;
    // One outstanding megabyte must raise the peak by roughly that much
    // (other test threads only add to it).
    let block = vec![0u8; 1 << 20];
    let peak = perf::alloc_snapshot().peak_bytes;
    assert!(
        peak >= floor + (1 << 20),
        "peak {peak} must exceed pre-allocation floor {floor} by the block size"
    );
    drop(block);
    // Peak is a high-water mark: freeing must not lower it.
    assert!(perf::alloc_snapshot().peak_bytes >= peak);
}
