//! The audit rule catalog and the per-file rule engine.
//!
//! Every rule is a named, individually-suppressible invariant. Line-level
//! rules are suppressed with a `// audit:allow(rule, reason)` comment on
//! the offending line or the line directly above it; file-level rules
//! (and whole files) with `// audit:allow-file(rule, reason)` anywhere in
//! the file. A reason is mandatory — an allow without one is itself a
//! violation.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::lexer::{count_token, has_token, lex, SourceLine};

/// One confirmed rule violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Violation {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number (`1` for file-level rules).
    pub line: usize,
    /// Rule identifier from [`RULES`].
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

/// Static description of one rule, for the report catalog.
#[derive(Debug, Clone, Serialize)]
pub struct RuleInfo {
    pub id: &'static str,
    pub description: &'static str,
    /// Documentation anchor for the rule (SARIF `helpUri`).
    pub help_uri: &'static str,
}

/// DESIGN.md section anchors the `help_uri` fields point into.
const DOC_TOKEN: &str = "DESIGN.md#6b-determinism-invariants-and-the-audit-rein-audit";
const DOC_SEMANTIC: &str = "DESIGN.md#6c-semantic-rules-ast--call-graph";
const DOC_GUARD: &str = "DESIGN.md#6e-fault-tolerance-and-chaos-testing-rein-guard";
const DOC_LEDGER: &str = "DESIGN.md#6f-cross-run-observability-the-ledger-rein-ledger";
const DOC_CONCURRENCY: &str =
    "DESIGN.md#6g-concurrency-determinism-rules-parallel-grid-certification";
const DOC_DATAFLOW: &str = "DESIGN.md#6h-cache-key-purity-certification-taint-dataflow";
const DOC_TRACE: &str = "DESIGN.md#6i-causal-cell-level-tracing-trace-context-propagation";
const DOC_STORE: &str =
    "DESIGN.md#6j-crash-safe-incremental-grid-the-durable-cell-store-rein-store";

/// The audit rule catalog.
pub const RULES: [RuleInfo; 26] = [
    RuleInfo {
        id: "wallclock",
        help_uri: DOC_TOKEN,
        description: "No Instant::now/SystemTime outside \
                      rein-telemetry::perf — wall-clock reads make runs \
                      irreproducible; every timer flows through the one \
                      sanctioned perf module (perf::now / perf::Stopwatch).",
    },
    RuleInfo {
        id: "hash-iter",
        help_uri: DOC_TOKEN,
        description: "No HashMap/HashSet in result-producing code — their \
                      iteration order varies across runs; use \
                      BTreeMap/BTreeSet or sort before iterating.",
    },
    RuleInfo {
        id: "unseeded-rng",
        help_uri: DOC_TOKEN,
        description: "No unseeded randomness (thread_rng, from_entropy, \
                      rand::random) anywhere — every RNG must derive from an \
                      explicit seed.",
    },
    RuleInfo {
        id: "panic",
        help_uri: DOC_TOKEN,
        description: "unwrap()/expect()/panic! in library code must carry an \
                      audit:allow(panic, reason) annotation or be replaced \
                      with Result propagation.",
    },
    RuleInfo {
        id: "telemetry-phases",
        help_uri: DOC_TOKEN,
        description: "Every benchmark binary must mark at least 3 phases and \
                      write a RunManifest.",
    },
    RuleInfo {
        id: "telemetry-span",
        help_uri: DOC_TOKEN,
        description: "Every detector/repair module must open a telemetry \
                      span.",
    },
    RuleInfo {
        id: "print",
        help_uri: DOC_TOKEN,
        description: "No bare println!/eprintln! outside the telemetry \
                      emitter and bench result emission.",
    },
    RuleInfo {
        id: "seed-provenance",
        help_uri: DOC_SEMANTIC,
        description: "Every RNG construction in library code must trace \
                      its seed to a function parameter (interprocedurally), \
                      never a literal or re-derived constant; only tests, \
                      benches and binaries may supply concrete seeds.",
    },
    RuleInfo {
        id: "split-leakage",
        help_uri: DOC_SEMANTIC,
        description: "Functions in rein-detect/rein-repair/rein-ml that \
                      receive a train/test split must not pass the test \
                      partition into fit-like callees (fit/fit_*/train_*).",
    },
    RuleInfo {
        id: "toolbox-parity",
        help_uri: DOC_SEMANTIC,
        description: "Every module declared in crates/detect and \
                      crates/repair is registered through its crate's \
                      lib.rs, wired into rein-core::toolbox, and reachable \
                      from at least one bench binary and one test — the \
                      implementation stays honest against the paper's \
                      19x19 grid.",
    },
    RuleInfo {
        id: "panic-reachability",
        help_uri: DOC_SEMANTIC,
        description: "No public library API may transitively reach an \
                      unannotated panic site through the call graph \
                      (supersedes the per-site `panic` rule for API \
                      surfaces).",
    },
    RuleInfo {
        id: "result-discard",
        help_uri: DOC_SEMANTIC,
        description: "`let _ =` must not discard a Result returned by a \
                      first-party call outside tests — handle it or match \
                      on it explicitly.",
    },
    RuleInfo {
        id: "guard-coverage",
        help_uri: DOC_GUARD,
        description: "Every toolbox dispatch (`.detect(` / `.repair(`) in \
                      rein-core and the bench binaries must run under \
                      rein-guard supervision: the file either calls \
                      rein_guard::run itself or goes through the guarded \
                      wrappers (DetectorHarness::run, run_repair*, \
                      detect_with_context) — an unguarded dispatch lets one \
                      crashing strategy abort the whole grid.",
    },
    RuleInfo {
        id: "ledger-registration",
        help_uri: DOC_LEDGER,
        description: "Every manifest collection in the bench crate must \
                      register the run in the cross-run ledger \
                      (rein_ledger::register_run) — an unregistered \
                      manifest is invisible to the observability report \
                      and to incremental evaluation.",
    },
    RuleInfo {
        id: "par-shared-mutable",
        help_uri: DOC_CONCURRENCY,
        description: "No `static mut`, `RefCell` or `Cell` in code \
                      reachable from a rayon parallel region — \
                      unsynchronized interior mutability observed from \
                      worker threads makes grid output depend on \
                      scheduling; use atomics, a Mutex, or thread_local! \
                      storage.",
    },
    RuleInfo {
        id: "par-seed-derivation",
        help_uri: DOC_CONCURRENCY,
        description: "Every RNG (or seed-consuming call) inside a \
                      parallel closure must derive its seed from the \
                      closure's own per-cell parameter (derive_seed(seed, \
                      i)) — a literal or loop-shared seed gives every \
                      worker the same stream and silently correlates \
                      cells.",
    },
    RuleInfo {
        id: "par-merge-registered",
        help_uri: DOC_CONCURRENCY,
        description: "A parallel fold/reduce/sum that combines worker \
                      results must route through a registered \
                      deterministic merge (merge_shards/merge_entries) or \
                      collect() into an order-preserving container — ad \
                      hoc reductions over floats depend on worker \
                      interleaving.",
    },
    RuleInfo {
        id: "par-atomic-ordering",
        help_uri: DOC_CONCURRENCY,
        description: "`Ordering::Relaxed` is allowed only at the \
                      allowlisted rein-telemetry counter sites — relaxed \
                      atomics elsewhere let cross-thread reads observe \
                      scheduling-dependent values.",
    },
    RuleInfo {
        id: "par-lock-discipline",
        help_uri: DOC_CONCURRENCY,
        description: "Locks must be acquired in one consistent global \
                      order across parallel call paths — an A→B order in \
                      one function and B→A in another is a potential \
                      deadlock and a scheduling-dependent execution \
                      order.",
    },
    RuleInfo {
        id: "trace-context",
        help_uri: DOC_TRACE,
        description: "Spans opened directly inside a parallel closure \
                      must carry a cell-derived TraceContext \
                      (span_traced(name, parent, trace_id) keyed on the \
                      CellKey digest) — a plain span()/span_under() on a \
                      worker thread starts with an empty ambient parent \
                      stack, so its subtree becomes an unattributable \
                      ambient root outside every causal cell trace.",
    },
    RuleInfo {
        id: "cache-key-completeness",
        help_uri: DOC_DATAFLOW,
        description: "No ambient read (environment, filesystem, \
                      wall-clock, static/thread_local state) may reach \
                      the cell-compute region without flowing through \
                      the declared cache key \
                      (rein_core::cache_key::CellKey) — an input the \
                      key cannot see makes every incremental cache hit \
                      a potential stale replay.",
    },
    RuleInfo {
        id: "env-read-confinement",
        help_uri: DOC_DATAFLOW,
        description: "std::env::var and friends are confined to \
                      rein-bench's config layer (crates/bench/src/lib.rs) \
                      and binaries — everywhere else the value must be \
                      snapshotted once and passed down as a parameter.",
    },
    RuleInfo {
        id: "float-reduce-order",
        help_uri: DOC_DATAFLOW,
        description: "`.sum()`/`.product()` downstream of a parallel \
                      iterator must collect() into an ordered container \
                      first or route through a registered deterministic \
                      merge — float accumulation order is not \
                      associative, so scheduling leaks into result bytes.",
    },
    RuleInfo {
        id: "store-atomic-write",
        help_uri: DOC_STORE,
        description: "Store artifacts (journal segments, quarantine \
                      blobs, the recovery report) must be written through \
                      rein-store's atomic commit path \
                      (atomic_write/commit_staged) — a raw fs::write or \
                      File::create to a store file outside crates/store \
                      can tear under a crash and defeats the write-ahead \
                      journal's recovery guarantees.",
    },
    RuleInfo {
        id: "hot-loop-alloc",
        help_uri: DOC_DATAFLOW,
        description: "Advisory (non-blocking): allocation calls \
                      (Vec::new, clone, to_string, format!, collect) \
                      inside detector/repair kernel loops — the ranked \
                      worklist for the columnar rewrite.",
    },
    RuleInfo {
        id: "stale-allow",
        help_uri: DOC_DATAFLOW,
        description: "Advisory (blocking under --deny-stale): an \
                      audit:allow annotation that no longer suppresses \
                      any finding — remove it so dead suppressions \
                      cannot mask a future regression.",
    },
];

/// Where wall-clock reads are legitimate: exactly the perf module of the
/// telemetry crate. Everything else — including the rest of
/// `rein-telemetry` and the ml instrumentation shim — times through
/// `perf::now`/`perf::Stopwatch`. The dogfood test in
/// `tests/workspace_clean.rs` pins this list so it cannot silently widen.
const WALLCLOCK_ALLOWED: [&str; 1] = ["crates/telemetry/src/perf.rs"];

/// The wallclock carve-out, exposed so the workspace dogfood test can
/// assert it stays exactly one file.
pub fn wallclock_allowlist() -> &'static [&'static str] {
    &WALLCLOCK_ALLOWED
}

/// Where bare prints are legitimate: the telemetry emitter and the bench
/// crate's report-emission helpers.
const PRINT_ALLOWED: [&str; 2] = ["crates/telemetry/src/log.rs", "crates/bench/src/lib.rs"];

/// How a file participates in rule scoping, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Under a `tests/`, `benches/` or `examples/` directory.
    pub is_test_support: bool,
    /// A binary root (`src/bin/*` or `src/main.rs`).
    pub is_bin: bool,
}

/// Classifies a workspace-relative path.
pub fn classify(path: &str) -> FileClass {
    let is_test_support = path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.starts_with("examples/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/");
    let is_bin = path.contains("/src/bin/") || path.ends_with("/src/main.rs");
    FileClass { is_test_support, is_bin }
}

fn starts_with_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path == *p || path.starts_with(p))
}

/// Whether a comment *is* an annotation, as opposed to prose that merely
/// mentions one (doc comments quoting the syntax, test names): the
/// content must start with the marker once doc-comment punctuation is
/// stripped. Backtick-quoted mentions never qualify.
fn is_annotation_comment(comment: &str) -> bool {
    comment.trim_start_matches(['/', '!', ' ', '\t']).starts_with("audit:allow")
}

/// Extracts `audit:allow(rule, reason)` annotations from a comment.
/// Returns the rules allowed on the annotated line; `malformed` collects
/// annotations without a reason.
fn parse_allows(comment: &str, marker: &str, malformed: &mut Vec<String>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    if !is_annotation_comment(comment) {
        return out;
    }
    let mut from = 0;
    while let Some(pos) = comment[from..].find(marker) {
        let after = from + pos + marker.len();
        let rest = &comment[after..];
        if let Some(open) = rest.strip_prefix('(') {
            if let Some(close) = open.find(')') {
                let inner = &open[..close];
                let (rule, reason) = match inner.split_once(',') {
                    Some((r, why)) => (r.trim(), why.trim()),
                    None => (inner.trim(), ""),
                };
                if rule.is_empty() || reason.is_empty() {
                    malformed.push(rule.to_string());
                } else {
                    out.insert(rule.to_string());
                }
            }
        }
        from = after;
    }
    out
}

/// One well-formed `audit:allow` / `audit:allow-file` annotation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AllowEntry {
    /// 1-based line of the annotation comment.
    pub line: usize,
    /// Rule id the annotation names (may be `all`).
    pub rule: String,
    /// `true` for `audit:allow-file`.
    pub file_level: bool,
}

impl AllowEntry {
    /// Stable identity for consumption tracking.
    pub fn key(&self) -> (usize, String, bool) {
        (self.line, self.rule.clone(), self.file_level)
    }
}

/// Per-file suppression lookup for the semantic rules: the effective
/// `audit:allow` set of every line (own comment plus the line directly
/// above) and the file-wide `audit:allow-file` set. Malformed allows are
/// ignored here — [`audit_source`] already reports them as `annotation`
/// violations.
#[derive(Debug, Default)]
pub struct AllowTable {
    line_allows: Vec<BTreeSet<String>>,
    file_allows: BTreeSet<String>,
    entries: Vec<AllowEntry>,
}

impl AllowTable {
    /// Builds the table from the file's source text.
    pub fn build(source: &str) -> AllowTable {
        let lines = lex(source);
        let mut ignored = Vec::new();
        let own: Vec<BTreeSet<String>> =
            lines.iter().map(|l| parse_allows(&l.comment, "audit:allow", &mut ignored)).collect();
        let mut t = AllowTable::default();
        for (i, rules) in own.iter().enumerate() {
            for r in rules {
                t.entries.push(AllowEntry { line: i + 1, rule: r.clone(), file_level: false });
            }
        }
        for (i, line) in lines.iter().enumerate() {
            let file = parse_allows(&line.comment, "audit:allow-file", &mut ignored);
            for r in &file {
                t.entries.push(AllowEntry { line: i + 1, rule: r.clone(), file_level: true });
            }
            t.file_allows.extend(file);
        }
        t.line_allows = (0..own.len())
            .map(|i| {
                let mut s = own[i].clone();
                if i > 0 {
                    s.extend(own[i - 1].iter().cloned());
                }
                s
            })
            .collect();
        t
    }

    /// Whether `rule` is suppressed at 1-based `line`.
    pub fn allows(&self, line: usize, rule: &str) -> bool {
        if self.file_allows.contains(rule) || self.file_allows.contains("all") {
            return true;
        }
        line.checked_sub(1)
            .and_then(|i| self.line_allows.get(i))
            .is_some_and(|s| s.contains(rule) || s.contains("all"))
    }

    /// Whether a *file-level* annotation suppresses `rule` (line-level
    /// allows do not count — used by whole-file rules).
    pub fn file_allowed(&self, rule: &str) -> bool {
        self.file_allows.contains(rule) || self.file_allows.contains("all")
    }

    /// Every well-formed annotation in the file.
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }

    /// The annotation keys that justify suppressing `rule` at `line`:
    /// line-level entries on the line or the line directly above, plus
    /// matching file-level entries. Consumption tracking marks all of
    /// them live (a redundant second annotation is not "stale").
    pub fn match_keys(&self, line: usize, rule: &str) -> Vec<(usize, String, bool)> {
        self.entries
            .iter()
            .filter(|e| {
                (e.rule == rule || e.rule == "all")
                    && (e.file_level || e.line == line || e.line + 1 == line)
            })
            .map(AllowEntry::key)
            .collect()
    }

    /// The annotation keys that justify a *file-level* suppression.
    pub fn match_keys_file(&self, rule: &str) -> Vec<(usize, String, bool)> {
        self.entries
            .iter()
            .filter(|e| e.file_level && (e.rule == rule || e.rule == "all"))
            .map(AllowEntry::key)
            .collect()
    }
}

/// Per-line test-region mask: `true` for lines inside `#[cfg(test)]` /
/// `#[test]` items, tracked by brace depth.
pub(crate) fn test_region_mask(lines: &[SourceLine]) -> Vec<bool> {
    let mut mask = Vec::with_capacity(lines.len());
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut stack: Vec<i64> = Vec::new();
    for line in lines {
        if line.code.contains("#[cfg(test)]") || line.code.contains("#[test]") {
            pending = true;
        }
        let mut in_test = !stack.is_empty();
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending {
                        stack.push(depth);
                        pending = false;
                        in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if stack.last() == Some(&depth) {
                        stack.pop();
                    }
                }
                // An attribute that decorated a braceless item
                // (e.g. `#[cfg(test)] use …;`) is spent.
                ';' if pending && stack.is_empty() => pending = false,
                _ => {}
            }
        }
        mask.push(in_test || !stack.is_empty());
    }
    mask
}

/// Result of auditing one file.
#[derive(Debug, Default)]
pub struct FileAudit {
    pub violations: Vec<Violation>,
    /// Number of would-be violations silenced by a valid `audit:allow`.
    pub suppressed: usize,
    /// Annotation keys ([`AllowEntry::key`]) that suppressed at least
    /// one token-level finding — input to the stale-allow pass.
    pub consumed: BTreeSet<(usize, String, bool)>,
}

/// Line-level checks: token → rule, with a scope predicate.
struct LineRule {
    rule: &'static str,
    tokens: &'static [&'static str],
    applies: fn(&str, FileClass) -> bool,
}

const LINE_RULES: [LineRule; 4] = [
    LineRule {
        rule: "wallclock",
        tokens: &["Instant::now", "SystemTime"],
        applies: |path, class| !class.is_test_support && !starts_with_any(path, &WALLCLOCK_ALLOWED),
    },
    LineRule {
        rule: "hash-iter",
        tokens: &["HashMap", "HashSet"],
        applies: |_, class| !class.is_test_support,
    },
    LineRule {
        rule: "unseeded-rng",
        tokens: &["thread_rng", "from_entropy", "rand::random"],
        applies: |_, _| true,
    },
    LineRule {
        rule: "print",
        tokens: &["println!", "eprintln!"],
        applies: |path, class| {
            !class.is_test_support && !class.is_bin && !starts_with_any(path, &PRINT_ALLOWED)
        },
    },
];

/// Tokens the panic-hygiene rule flags in library code.
const PANIC_TOKENS: [&str; 4] = [".unwrap()", ".expect(", "panic!", "unreachable!"];

/// Audits one source file given its workspace-relative `path` and text.
pub fn audit_source(path: &str, source: &str) -> FileAudit {
    let class = classify(path);
    let lines = lex(source);
    let tests = test_region_mask(&lines);
    let table = AllowTable::build(source);
    let mut out = FileAudit::default();
    let mut malformed: Vec<String> = Vec::new();

    // File-wide allows (re-parsed here to surface malformed ones;
    // `AllowTable::build` silently drops them).
    for line in &lines {
        parse_allows(&line.comment, "audit:allow-file", &mut malformed);
    }
    for rule in &malformed {
        out.violations.push(Violation {
            path: path.to_string(),
            line: 1,
            rule: "annotation".into(),
            message: format!(
                "audit:allow for `{rule}` is missing a reason — write \
                 audit:allow({rule}, why it is sound)",
                rule = if rule.is_empty() { "<rule>" } else { rule }
            ),
        });
    }
    let file_allowed = |rule: &str| table.file_allowed(rule);

    // Line-level rules.
    for (idx, line) in lines.iter().enumerate() {
        if line.code.is_empty() {
            continue;
        }
        let allowed = |rule: &str| table.allows(idx + 1, rule);

        for lr in &LINE_RULES {
            if !(lr.applies)(path, class) {
                continue;
            }
            for token in lr.tokens {
                if has_token(&line.code, token) {
                    if allowed(lr.rule) {
                        out.suppressed += 1;
                        out.consumed.extend(table.match_keys(idx + 1, lr.rule));
                    } else {
                        out.violations.push(Violation {
                            path: path.to_string(),
                            line: idx + 1,
                            rule: lr.rule.into(),
                            message: format!("`{token}` is forbidden here"),
                        });
                    }
                    break; // one violation per rule per line
                }
            }
        }

        // Panic hygiene: library (non-bin, non-test) code only, and never
        // inside #[cfg(test)] regions.
        if !class.is_test_support && !class.is_bin && !tests[idx] {
            for token in PANIC_TOKENS {
                if has_token(&line.code, token) {
                    if allowed("panic") {
                        out.suppressed += 1;
                        out.consumed.extend(table.match_keys(idx + 1, "panic"));
                    } else {
                        out.violations.push(Violation {
                            path: path.to_string(),
                            line: idx + 1,
                            rule: "panic".into(),
                            message: format!(
                                "`{token}` in library code needs \
                                 audit:allow(panic, reason) or Result propagation"
                            ),
                        });
                    }
                    break;
                }
            }
        }
    }

    // File-level rules.
    if path.starts_with("crates/bench/src/bin/") {
        let code: String = lines.iter().map(|l| l.code.as_str()).collect::<Vec<_>>().join("\n");
        let phases = count_token(&code, "phase");
        let manifests = has_token(&code, "write_run_manifest")
            || has_token(&code, "RunManifest")
            || has_token(&code, "conclude");
        if phases < 3 || !manifests {
            if file_allowed("telemetry-phases") {
                out.suppressed += 1;
                out.consumed.extend(table.match_keys_file("telemetry-phases"));
            } else {
                out.violations.push(Violation {
                    path: path.to_string(),
                    line: 1,
                    rule: "telemetry-phases".into(),
                    message: format!(
                        "benchmark binary marks {phases} phase(s) (need >= 3) \
                         and {} a RunManifest",
                        if manifests { "writes" } else { "does not write" }
                    ),
                });
            }
        }
    }
    // Ledger registration: wherever the bench crate collects a run
    // manifest it must also register the run in the cross-run ledger.
    // The write path is centralised in `write_run_manifest`, so in
    // practice this pins one file — but a new bin that snapshots its own
    // RunManifest without registering it would silently vanish from the
    // observability report, which is exactly what this rule catches.
    let ledger_scoped = path.starts_with("crates/bench/src/") && !class.is_test_support;
    if ledger_scoped {
        let code: String = lines.iter().map(|l| l.code.as_str()).collect::<Vec<_>>().join("\n");
        if has_token(&code, "RunManifest::collect") && !has_token(&code, "register_run") {
            let line = lines
                .iter()
                .position(|l| has_token(&l.code, "RunManifest::collect"))
                .map_or(1, |i| i + 1);
            if file_allowed("ledger-registration") {
                out.suppressed += 1;
                out.consumed.extend(table.match_keys_file("ledger-registration"));
            } else {
                out.violations.push(Violation {
                    path: path.to_string(),
                    line,
                    rule: "ledger-registration".into(),
                    message: "RunManifest::collect without rein_ledger::register_run — \
                              the run would be invisible to the ledger report"
                        .into(),
                });
            }
        }
    }

    // Guard coverage: every toolbox dispatch in rein-core and the bench
    // crate must run under rein-guard supervision. Files that call
    // rein_guard::run are the sanctioned dispatchers; everywhere else a
    // direct `.detect(`/`.repair(` call bypasses panic isolation and
    // deadline budgets, so one crashing strategy would abort the grid.
    let guard_scoped = (path.starts_with("crates/core/src/")
        || path.starts_with("crates/bench/src/"))
        && !class.is_test_support;
    if guard_scoped {
        let code: String = lines.iter().map(|l| l.code.as_str()).collect::<Vec<_>>().join("\n");
        if !has_token(&code, "rein_guard::run") {
            for (idx, line) in lines.iter().enumerate() {
                if tests[idx] {
                    continue;
                }
                for token in [".detect(", ".repair("] {
                    if has_token(&line.code, token) {
                        if file_allowed("guard-coverage") {
                            out.suppressed += 1;
                            out.consumed.extend(table.match_keys_file("guard-coverage"));
                        } else {
                            out.violations.push(Violation {
                                path: path.to_string(),
                                line: idx + 1,
                                rule: "guard-coverage".into(),
                                message: format!(
                                    "`{token}` dispatch outside rein_guard::run — route \
                                     it through DetectorHarness::run, run_repair_guarded \
                                     or detect_with_context"
                                ),
                            });
                        }
                        break;
                    }
                }
            }
        }
    }

    // Store write discipline: outside the store crate itself (which owns
    // the fsync'd temp-file + rename machinery), any raw filesystem write
    // aimed at a store artifact — a journal segment, a quarantine blob,
    // the recovery report — bypasses the write-ahead journal's atomicity
    // and can leave a torn file that recovery then quarantines as
    // corruption. String literals are stripped from lexed code, so the
    // artifact side matches the identifiers such code necessarily binds
    // (`journal`, `quarantine`, `segment`, `store_root`).
    let store_scoped = !class.is_test_support && !path.starts_with("crates/store/src/");
    if store_scoped {
        const STORE_WRITE_TOKENS: [&str; 2] = ["fs::write(", "File::create("];
        const STORE_ARTIFACT_TOKENS: [&str; 4] = ["journal", "quarantine", "segment", "store_root"];
        for (idx, line) in lines.iter().enumerate() {
            if tests[idx] {
                continue;
            }
            let raw_write = STORE_WRITE_TOKENS.iter().any(|t| has_token(&line.code, t));
            let store_artifact = STORE_ARTIFACT_TOKENS.iter().any(|t| has_token(&line.code, t));
            if raw_write && store_artifact {
                if table.allows(idx + 1, "store-atomic-write") {
                    out.suppressed += 1;
                    out.consumed.extend(table.match_keys(idx + 1, "store-atomic-write"));
                } else {
                    out.violations.push(Violation {
                        path: path.to_string(),
                        line: idx + 1,
                        rule: "store-atomic-write".into(),
                        message: "raw filesystem write to a store artifact — route it \
                                  through rein_store::atomic_write or Store::commit_staged"
                            .into(),
                    });
                }
            }
        }
    }

    let span_scoped = (path.starts_with("crates/detect/src/")
        || path.starts_with("crates/repair/src/"))
        && !path.ends_with("/lib.rs")
        && !class.is_test_support;
    if span_scoped {
        let opens_span = lines.iter().any(|l| l.code.contains("span("));
        if !opens_span {
            if file_allowed("telemetry-span") {
                out.suppressed += 1;
                out.consumed.extend(table.match_keys_file("telemetry-span"));
            } else {
                out.violations.push(Violation {
                    path: path.to_string(),
                    line: 1,
                    rule: "telemetry-span".into(),
                    message: "detector/repair module never opens a telemetry span".into(),
                });
            }
        }
    }

    out.violations.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(audit: &FileAudit) -> Vec<&str> {
        audit.violations.iter().map(|v| v.rule.as_str()).collect()
    }

    /// Doc prose *quoting* the annotation syntax must not create a
    /// suppression (it would then be reported as stale); only comments
    /// that start with the marker are annotations.
    #[test]
    fn prose_mentions_are_not_annotations() {
        let prose = AllowTable::build(
            "//! suppressed with a `// audit:allow(rule, reason)` comment\n\
             /// see `audit:allow-file(rule, reason)` for whole files\nfn f() {}\n",
        );
        assert!(prose.entries().is_empty());
        assert!(!prose.allows(1, "rule"));
        let real = AllowTable::build("// audit:allow(panic, why)\nfn f() {}\n");
        assert_eq!(real.entries().len(), 1);
        assert!(real.allows(2, "panic"));
    }

    #[test]
    fn hash_iter_fires_and_suppresses() {
        let bad = audit_source("crates/core/src/x.rs", "use std::collections::HashMap;\n");
        assert_eq!(rules_of(&bad), ["hash-iter"]);
        let ok = audit_source(
            "crates/core/src/x.rs",
            "// audit:allow(hash-iter, counting only, never iterated)\n\
             use std::collections::HashMap;\n",
        );
        assert!(ok.violations.is_empty());
        assert_eq!(ok.suppressed, 1);
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let bad = audit_source(
            "crates/detect/src/x.rs",
            "let t = SystemTime::now(); // audit:allow-file(wallclock)\n",
        );
        assert!(rules_of(&bad).contains(&"annotation"));
    }

    #[test]
    fn panic_rule_ignores_tests_and_bins() {
        let lib = audit_source("crates/data/src/x.rs", "fn f() { x.unwrap(); }\n");
        assert_eq!(rules_of(&lib), ["panic"]);
        let tests = audit_source(
            "crates/data/src/x.rs",
            "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); }\n}\n",
        );
        assert!(tests.violations.is_empty());
        let bin = audit_source("crates/bench/src/bin/b.rs", "fn f() { x.unwrap(); }\n");
        assert!(!rules_of(&bin).contains(&"panic"));
    }

    #[test]
    fn wallclock_allowed_in_perf_module_only() {
        let bad = audit_source("crates/core/src/x.rs", "let t = Instant::now();\n");
        assert_eq!(rules_of(&bad), ["wallclock"]);
        let ok = audit_source("crates/telemetry/src/perf.rs", "let t = Instant::now();\n");
        assert!(ok.violations.is_empty());
        // The carve-out covers the perf module only: the rest of the
        // telemetry crate and the ml shim must go through perf::now.
        let span = audit_source("crates/telemetry/src/span.rs", "let t = Instant::now();\n");
        assert_eq!(rules_of(&span), ["wallclock"]);
        let ml = audit_source("crates/ml/src/instrument.rs", "let t = Instant::now();\n");
        assert_eq!(rules_of(&ml), ["wallclock"]);
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let ok = audit_source(
            "crates/core/src/x.rs",
            "// a HashMap would be wrong here\nlet s = \"thread_rng\";\n",
        );
        assert!(ok.violations.is_empty());
    }

    #[test]
    fn bench_bin_phase_coverage() {
        let bad = audit_source("crates/bench/src/bin/fig.rs", "fn main() { phase(\"a\"); }\n");
        assert_eq!(rules_of(&bad), ["telemetry-phases"]);
        let ok = audit_source(
            "crates/bench/src/bin/fig.rs",
            "fn main() { phase(\"a\"); phase(\"b\"); phase(\"c\"); \
             write_run_manifest(\"fig\", 1, 0); }\n",
        );
        assert!(ok.violations.is_empty());
    }

    #[test]
    fn detector_module_needs_span() {
        let bad = audit_source("crates/detect/src/k.rs", "fn detect() {}\n");
        assert_eq!(rules_of(&bad), ["telemetry-span"]);
        let ok = audit_source(
            "crates/detect/src/k.rs",
            "fn detect() { let _s = rein_telemetry::span(\"detect:k\"); }\n",
        );
        assert!(ok.violations.is_empty());
    }

    #[test]
    fn print_scope() {
        let bad = audit_source("crates/core/src/x.rs", "println!(\"hi\");\n");
        assert_eq!(rules_of(&bad), ["print"]);
        for ok_path in ["crates/telemetry/src/log.rs", "crates/bench/src/lib.rs"] {
            assert!(audit_source(ok_path, "println!(\"hi\");\n").violations.is_empty());
        }
        // Binaries may print: they are the report surface.
        let bin = audit_source("crates/audit/src/main.rs", "println!(\"hi\");\n");
        assert!(bin.violations.is_empty());
    }

    #[test]
    fn ledger_registration_scope() {
        let bad = audit_source(
            "crates/bench/src/lib.rs",
            "fn w() { let m = RunManifest::collect(\"fig\", config); m.write(); }\n",
        );
        assert_eq!(rules_of(&bad), ["ledger-registration"]);
        let ok = audit_source(
            "crates/bench/src/lib.rs",
            "fn w() { let m = RunManifest::collect(\"fig\", config); m.write(); \
             rein_ledger::register_run(root, &m, &path); }\n",
        );
        assert!(ok.violations.is_empty());
        // Outside the bench crate the rule does not apply (tools may
        // collect manifests for inspection), and test support is exempt.
        let tool = audit_source(
            "crates/telemetry/src/manifest.rs",
            "fn c() { let _m = RunManifest::collect(\"x\", config); }\n",
        );
        assert!(!rules_of(&tool).contains(&"ledger-registration"), "{:?}", tool.violations);
        let test = audit_source(
            "crates/bench/tests/t.rs",
            "fn c() { let _m = RunManifest::collect(\"x\", config); }\n",
        );
        assert!(!rules_of(&test).contains(&"ledger-registration"), "{:?}", test.violations);
    }

    #[test]
    fn unseeded_rng_fires_even_in_tests() {
        let bad = audit_source("crates/core/tests/t.rs", "let mut r = thread_rng();\n");
        assert_eq!(rules_of(&bad), ["unseeded-rng"]);
    }
}
