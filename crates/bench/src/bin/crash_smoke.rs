//! Crash smoke test: proves the durable cell store's kill-resume
//! contract end to end (DESIGN.md §6j).
//!
//! The parent process re-invokes itself (`--child`) to run one
//! store-backed S1 grid per scenario, because a faithful crash test
//! must actually die: `REIN_CRASH` aborts the child with no unwinding,
//! exactly like `kill -9` at a journal commit point. Scenarios:
//!
//! 1. **reference** — store-less run; its cell dump is the byte-level
//!    ground truth every later dump must equal.
//! 2. **cold** — empty store; every cell misses, computes and commits.
//! 3. **kill-resume** — for each injection point (detect/repair/eval ×
//!    before/after), a fresh store, a child killed mid-commit, then a
//!    resume child that must exit clean with a dump byte-identical to
//!    the reference and nothing quarantined.
//! 4. **corruption** — the last journal byte is flipped; the resume
//!    must quarantine exactly one `checksum-mismatch` stretch (the
//!    report names it), recompute the lost cell, and still match the
//!    reference byte-for-byte.
//! 5. **warm** — a fully-warm store must serve every cell (100% hits,
//!    ≥90% required), with zero recomputed-cell divergence.
//!
//! Exit codes: `0` success; `2` bad environment/setup; `4` a resumed or
//! warm dump diverged from the reference; `6` a crash did not fire, a
//! resume failed, or corruption went unrecovered; `7` the quarantine
//! set differs from the injected corruption.

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use std::path::Path;
use std::process::Command;

use rein_bench::{controller, dataset, dump_cells, header, phase};
use rein_core::Scenario;
use rein_datasets::DatasetId;

const SEED: u64 = 37;
const BUDGET: usize = 50;

/// Injection points covering every commit phase on both sides of the
/// durable append. Coordinates name cells the BreastCancer S1 plan is
/// guaranteed to contain (the same ones `chaos_smoke` injects into).
const CRASH_POINTS: [&str; 4] = [
    "detect:raha=after",
    "repair:impute_mean_mode#max_entropy=before",
    "repair:impute_mean_mode#max_entropy=after",
    "eval:S1:impute_mean_mode#max_entropy=before",
];

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("--child") => {
            let store = args.next().unwrap_or_default();
            let dump = args.next().unwrap_or_default();
            let stats = args.next().unwrap_or_default();
            if store.is_empty() || dump.is_empty() || stats.is_empty() {
                eprintln!("error: --child needs STORE DUMP STATS arguments");
                std::process::exit(2);
            }
            child(&store, Path::new(&dump), Path::new(&stats));
        }
        Some(other) => {
            eprintln!("error: unknown argument {other:?}");
            std::process::exit(2);
        }
        None => parent(),
    }
}

/// One store-backed grid run inside its own process: the unit the
/// parent kills, resumes and compares. Writes the grid's cell dump and
/// a JSON snapshot of the telemetry counters (store hits/misses/
/// replays/divergence/quarantine), then exits 0.
fn child(store: &str, dump: &Path, stats: &Path) -> ! {
    // The store selector arrives as an argument, not ambient state: the
    // parent owns which scenario uses which store root.
    std::env::set_var("REIN_STORE", store);
    let setup = phase("setup");
    let ds = dataset(DatasetId::BreastCancer, SEED);
    let ctrl = controller(BUDGET, SEED);
    drop(setup);
    let grid = phase("grid");
    let cells = ctrl.run_grid(&ds, &[Scenario::S1], 1);
    drop(grid);
    let emit = phase("emit");
    if let Err(e) = dump_cells(dump, &cells) {
        eprintln!("error: cannot write {}: {e}", dump.display());
        std::process::exit(2);
    }
    let counters = rein_telemetry::counters_snapshot();
    let json = serde_json::to_string_pretty(&counters).expect("counters serialize");
    if let Err(e) = std::fs::write(stats, json) {
        eprintln!("error: cannot write {}: {e}", stats.display());
        std::process::exit(2);
    }
    drop(emit);
    rein_bench::write_run_manifest("crash_smoke", SEED, BUDGET as u64);
    std::process::exit(0);
}

/// Orchestrates the scenarios and verdicts.
fn parent() -> ! {
    header("Crash smoke — kill-resume recovery of the durable cell store");
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot locate own binary: {e}");
            std::process::exit(2);
        }
    };
    let work = std::env::temp_dir().join(format!("rein-crash-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    if let Err(e) = std::fs::create_dir_all(&work) {
        eprintln!("error: cannot create {}: {e}", work.display());
        std::process::exit(2);
    }

    // 1. Reference: store-less ground truth.
    let reference = work.join("reference.dump");
    run_child(&exe, &work, "off", "reference", &reference);
    let want = read_dump(&reference);

    // 2. Cold store: everything misses, computes, commits.
    let cold_store = work.join("store-cold");
    let cold = work.join("cold.dump");
    let cold_stats = run_child(&exe, &work, &cold_store.display().to_string(), "cold", &cold);
    expect_identical(&want, &cold, "cold store-backed run");
    if counter(&cold_stats, "store_hits") != 0 {
        eprintln!("error: cold store reported hits");
        std::process::exit(6);
    }

    // 3. Kill-resume at every injection point, each from a fresh store.
    for (i, spec) in CRASH_POINTS.iter().enumerate() {
        let store = work.join(format!("store-crash-{i}"));
        let store_arg = store.display().to_string();
        println!("\n-- crash point {spec}");
        let status = child_command(&exe, &work, &store_arg, &format!("crash-{i}"))
            .env("REIN_CRASH", spec)
            .status();
        match status {
            Ok(s) if died_by_crash(&s) => println!("   child killed as injected"),
            Ok(s) => {
                eprintln!("error: REIN_CRASH={spec} child did not crash (status {s})");
                std::process::exit(6);
            }
            Err(e) => {
                eprintln!("error: cannot spawn child: {e}");
                std::process::exit(2);
            }
        }
        let resumed = work.join(format!("resume-{i}.dump"));
        let stats = run_child(&exe, &work, &store_arg, &format!("resume-{i}"), &resumed);
        expect_identical(&want, &resumed, &format!("resume after {spec}"));
        if counter(&stats, "store_quarantined") != 0 {
            eprintln!("error: clean kill at {spec} must not quarantine anything");
            std::process::exit(7);
        }
        println!("   resume byte-identical to reference");
    }

    // 4. Corruption: flip the last journal byte of the cold store — the
    // final record's checksum breaks; recovery must quarantine exactly
    // that stretch and the next run recomputes the lost cell.
    let journal = cold_store.join("journal.wal");
    match std::fs::read(&journal) {
        Ok(mut bytes) if bytes.len() > 8 => {
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
            // audit:allow(store-atomic-write, deliberate corruption injection — the whole point is a torn journal)
            if let Err(e) = std::fs::write(&journal, &bytes) {
                eprintln!("error: cannot corrupt {}: {e}", journal.display());
                std::process::exit(2);
            }
        }
        Ok(_) | Err(_) => {
            eprintln!("error: cold store journal missing or empty at {}", journal.display());
            std::process::exit(6);
        }
    }
    println!("\n-- corruption: last journal byte flipped");
    let healed = work.join("healed.dump");
    let healed_stats = run_child(&exe, &work, &cold_store.display().to_string(), "healed", &healed);
    expect_identical(&want, &healed, "resume after corruption");
    if counter(&healed_stats, "store_quarantined") != 1 {
        eprintln!(
            "error: corruption must quarantine exactly 1 stretch, got {}",
            counter(&healed_stats, "store_quarantined")
        );
        std::process::exit(7);
    }
    check_quarantine_report(&cold_store);
    println!("   corrupt record quarantined, lost cell recomputed, dump identical");

    // 5. Warm store: every cell must now hit, with zero divergence.
    println!("\n-- warm store");
    let warm = work.join("warm.dump");
    let warm_stats = run_child(&exe, &work, &cold_store.display().to_string(), "warm", &warm);
    expect_identical(&want, &warm, "fully-warm run");
    let hits = counter(&warm_stats, "store_hits");
    let misses = counter(&warm_stats, "store_misses");
    let divergence = counter(&warm_stats, "store_divergence");
    let rate = hits as f64 / (hits + misses).max(1) as f64;
    println!("   hits={hits} misses={misses} divergence={divergence} rate={rate:.3}");
    if rate < 0.9 {
        eprintln!("error: warm hit rate {rate:.3} below 0.9");
        std::process::exit(6);
    }
    if divergence != 0 {
        eprintln!("error: {divergence} recomputed cell(s) diverged from stored payloads");
        std::process::exit(4);
    }

    let _ = std::fs::remove_dir_all(&work);
    println!(
        "\ncrash smoke passed: {} kill-resume point(s), 1 corruption, warm rate {rate:.3}",
        CRASH_POINTS.len()
    );
    std::process::exit(0);
}

/// Builds the child invocation with a scenario-scoped store and no
/// inherited injection state.
fn child_command(exe: &Path, work: &Path, store: &str, name: &str) -> Command {
    let mut cmd = Command::new(exe);
    cmd.arg("--child")
        .arg(store)
        .arg(work.join(format!("{name}.dump")))
        .arg(work.join(format!("{name}.stats.json")))
        .env_remove("REIN_CRASH")
        .env_remove("REIN_CHAOS")
        .env_remove("REIN_STORE");
    cmd
}

/// Runs a child to completion, requiring a clean exit; returns its
/// parsed counter stats.
fn run_child(
    exe: &Path,
    work: &Path,
    store: &str,
    name: &str,
    dump: &Path,
) -> std::collections::BTreeMap<String, u64> {
    match child_command(exe, work, store, name).status() {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("error: {name} child failed with {s}");
            std::process::exit(6);
        }
        Err(e) => {
            eprintln!("error: cannot spawn {name} child: {e}");
            std::process::exit(2);
        }
    }
    if !dump.exists() {
        eprintln!("error: {name} child wrote no dump at {}", dump.display());
        std::process::exit(6);
    }
    let stats = work.join(format!("{name}.stats.json"));
    match std::fs::read_to_string(&stats) {
        Ok(text) => serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("error: unreadable stats {}: {e}", stats.display());
            std::process::exit(6);
        }),
        Err(e) => {
            eprintln!("error: missing stats {}: {e}", stats.display());
            std::process::exit(6);
        }
    }
}

/// Reads one counter from a child's stats snapshot (absent = 0).
fn counter(stats: &std::collections::BTreeMap<String, u64>, name: &str) -> u64 {
    stats.get(name).copied().unwrap_or(0)
}

/// Whether the child died at the injected commit point (by signal on
/// Unix — `process::abort` raises SIGABRT — or any abnormal exit
/// elsewhere), as opposed to finishing or rejecting its environment.
fn died_by_crash(status: &std::process::ExitStatus) -> bool {
    #[cfg(unix)]
    {
        status.code().is_none()
    }
    #[cfg(not(unix))]
    {
        !status.success()
    }
}

fn read_dump(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {}: {e}", path.display());
        std::process::exit(2);
    })
}

/// Byte-compares a run's dump against the reference; divergence is the
/// one failure a durable store must never produce.
fn expect_identical(want: &str, dump: &Path, what: &str) {
    let got = read_dump(dump);
    if got != *want {
        eprintln!("error: {what} dump diverged from the store-less reference");
        std::process::exit(4);
    }
    println!("   {} cells byte-identical ({what})", want.matches("== ").count());
}

/// Asserts the structured quarantine report names exactly the injected
/// corruption: one `checksum-mismatch` stretch in the journal tail,
/// with its quarantined blob actually on disk.
fn check_quarantine_report(store: &Path) {
    let path = store.join("quarantine").join("report.json");
    let entries: Vec<rein_store::QuarantineEntry> = match std::fs::read_to_string(&path) {
        Ok(text) => serde_json::from_str(&text).unwrap_or_default(),
        Err(e) => {
            eprintln!("error: missing quarantine report {}: {e}", path.display());
            std::process::exit(7);
        }
    };
    if entries.len() != 1 {
        eprintln!("error: expected exactly 1 quarantine entry, report has {}", entries.len());
        std::process::exit(7);
    }
    let entry = &entries[0];
    if entry.reason != "checksum-mismatch" || entry.file != "journal.wal" {
        eprintln!(
            "error: quarantine entry is {}:{}, want journal.wal:checksum-mismatch",
            entry.file, entry.reason
        );
        std::process::exit(7);
    }
    if entry.quarantined_as.is_empty() || !store.join(&entry.quarantined_as).exists() {
        eprintln!("error: quarantined blob {:?} is not on disk", entry.quarantined_as);
        std::process::exit(7);
    }
}
