//! The audit's own acceptance test: the workspace it ships in must pass
//! it, the semantic rules must actually run over it, and the outputs
//! must be byte-deterministic.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_audit_is_clean() {
    let report = rein_audit::audit_workspace(&workspace_root()).expect("walk workspace sources");
    assert!(
        report.violations.is_empty(),
        "workspace must be audit-clean; run `cargo run -p rein-audit` for the report:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 100, "walker found only {} files", report.files_scanned);
}

#[test]
fn semantic_rules_are_in_the_catalog() {
    let report = rein_audit::audit_workspace(&workspace_root()).expect("walk workspace sources");
    for rule in [
        "seed-provenance",
        "split-leakage",
        "toolbox-parity",
        "panic-reachability",
        "result-discard",
        "guard-coverage",
        "par-shared-mutable",
        "par-seed-derivation",
        "par-merge-registered",
        "par-atomic-ordering",
        "par-lock-discipline",
        "trace-context",
        "cache-key-completeness",
        "env-read-confinement",
        "float-reduce-order",
        "hot-loop-alloc",
        "stale-allow",
        "store-atomic-write",
    ] {
        assert!(
            report.rules.iter().any(|r| r.id == rule),
            "semantic rule `{rule}` missing from the report catalog"
        );
    }
}

/// Every cell-compute entry point in the real workspace is certified
/// key-pure: no unsuppressed ambient read reaches any of them. This is
/// the precondition for content-addressed incremental evaluation keyed
/// on `rein_core::cache_key::CellKey`.
#[test]
fn every_entry_point_is_certified_key_pure() {
    let root = workspace_root();
    let paths = rein_audit::collect_sources(&root).expect("walk workspace sources");
    let sources: Vec<(String, String)> = paths
        .iter()
        .map(|p| {
            let rel = p.strip_prefix(&root).unwrap_or(p).to_string_lossy().replace('\\', "/");
            (rel, std::fs::read_to_string(p).expect("read source"))
        })
        .collect();
    let model = rein_audit::WorkspaceModel::build(&sources);
    let certs = rein_audit::certify(&model);
    assert!(
        certs.len() >= rein_audit::dataflow::entry_points().len(),
        "expected every declared entry point to resolve, got {certs:#?}"
    );
    for c in &certs {
        assert!(
            c.key_pure,
            "{} ({}:{}) is not key-pure:\n  {}",
            c.entry,
            c.file,
            c.line,
            c.taints.join("\n  ")
        );
    }
    let names: Vec<&str> = certs.iter().map(|c| c.entry.as_str()).collect();
    for expect in [
        "Controller::run_grid",
        "DetectorHarness::run",
        "detect_with_context",
        "run_repair_guarded",
    ] {
        assert!(names.contains(&expect), "entry `{expect}` missing from certificates: {names:?}");
    }
}

/// No suppression in the workspace is dead: every `audit:allow`
/// still silences a live finding (CI enforces this via `--deny-stale`).
#[test]
fn workspace_has_no_stale_suppressions() {
    let mut report =
        rein_audit::audit_workspace(&workspace_root()).expect("walk workspace sources");
    report.deny_stale();
    let stale: Vec<_> = report.violations.iter().filter(|v| v.rule == "stale-allow").collect();
    assert!(stale.is_empty(), "stale suppressions:\n{stale:#?}");
}

#[test]
fn report_and_sarif_are_byte_identical_across_runs() {
    let root = workspace_root();
    let first = rein_audit::audit_workspace(&root).expect("first run");
    let second = rein_audit::audit_workspace(&root).expect("second run");
    assert_eq!(first.to_json(), second.to_json(), "report JSON must be byte-stable");
    assert_eq!(
        rein_audit::to_sarif(&first),
        rein_audit::to_sarif(&second),
        "SARIF must be byte-stable"
    );
}

#[test]
fn wallclock_carveout_is_exactly_the_perf_module() {
    // The allowlist itself must stay a single file: widening it is an
    // explicit, reviewed change to this assertion, never a side effect.
    assert_eq!(
        rein_audit::wallclock_allowlist(),
        ["crates/telemetry/src/perf.rs"],
        "the wallclock carve-out must cover rein-telemetry::perf and nothing else"
    );

    // And the workspace must actually honour it: sweep every auditable
    // source for raw wall-clock tokens. Test-support files are exempt
    // from the rule (they may time assertions), everything else must
    // route through perf::now / perf::Stopwatch.
    let root = workspace_root();
    let sources = rein_audit::collect_sources(&root).expect("walk workspace sources");
    let mut offenders = Vec::new();
    for path in sources {
        let rel = path.strip_prefix(&root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        if rel == "crates/telemetry/src/perf.rs" || rein_audit::classify(&rel).is_test_support {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read source");
        for line in rein_audit::lexer::lex(&text) {
            for token in ["Instant::now", "SystemTime"] {
                if rein_audit::lexer::has_token(&line.code, token) {
                    offenders.push(format!("{rel}: `{token}`"));
                }
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "raw wall-clock reads outside rein-telemetry::perf:\n{}",
        offenders.join("\n")
    );
}

#[test]
fn report_paths_are_repo_relative_and_sorted() {
    let report = rein_audit::audit_workspace(&workspace_root()).expect("walk workspace sources");
    let json = report.to_json();
    assert!(
        !json.contains("/root/") && !json.contains("\\\\"),
        "report must not embed absolute or platform-specific paths"
    );
    let mut sorted = report.violations.clone();
    sorted.sort();
    assert_eq!(report.violations, sorted, "violations must be sorted");
}
