//! Denial constraints.
//!
//! A denial constraint (DC) forbids a conjunction of predicates: no single
//! tuple (unary DC) or pair of tuples (binary DC) may satisfy all predicates
//! simultaneously. This is the constraint language HoloClean and BART speak;
//! FDs compile into binary DCs.

use rein_data::{CellMask, Table, Value};
use serde::{Deserialize, Serialize};

/// Comparison operator of a DC predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Neq,
    /// Less than (numeric).
    Lt,
    /// Less or equal (numeric).
    Leq,
    /// Greater than (numeric).
    Gt,
    /// Greater or equal (numeric).
    Geq,
}

impl CmpOp {
    fn eval(self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Neq => a != b,
            _ => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => match self {
                    CmpOp::Lt => x < y,
                    CmpOp::Leq => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Geq => x >= y,
                    // audit:allow(panic, Eq/Neq are handled in the outer match; only order ops reach here)
                    _ => unreachable!(),
                },
                // Non-numeric operands never satisfy an order predicate.
                _ => false,
            },
        }
    }

    /// Textual operator, for `describe`.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "!=",
            CmpOp::Lt => "<",
            CmpOp::Leq => "<=",
            CmpOp::Gt => ">",
            CmpOp::Geq => ">=",
        }
    }
}

/// One side of a predicate: a column of tuple `t1`/`t2`, or a constant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// Column `col` of the first tuple.
    First(usize),
    /// Column `col` of the second tuple (binary DCs only).
    Second(usize),
    /// A literal constant.
    Const(Value),
}

impl Operand {
    fn resolve<'a>(&'a self, t1: &'a [Value], t2: &'a [Value]) -> &'a Value {
        match self {
            Operand::First(c) => &t1[*c],
            Operand::Second(c) => &t2[*c],
            Operand::Const(v) => v,
        }
    }

    fn touched_col(&self, first: bool) -> Option<usize> {
        match self {
            Operand::First(c) if first => Some(*c),
            Operand::Second(c) if !first => Some(*c),
            _ => None,
        }
    }
}

/// A single predicate `lhs op rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Left operand.
    pub lhs: Operand,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Operand,
}

impl Predicate {
    /// Builds a predicate.
    pub fn new(lhs: Operand, op: CmpOp, rhs: Operand) -> Self {
        Self { lhs, op, rhs }
    }

    fn eval(&self, t1: &[Value], t2: &[Value]) -> bool {
        let a = self.lhs.resolve(t1, t2);
        let b = self.rhs.resolve(t1, t2);
        // NULLs never satisfy a predicate (SQL three-valued logic collapsed
        // to false), so DCs do not fire on missing data.
        if a.is_null() || b.is_null() {
            return false;
        }
        self.op.eval(a, b)
    }
}

/// A denial constraint: `¬(p1 ∧ p2 ∧ …)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenialConstraint {
    /// The forbidden conjunction.
    pub predicates: Vec<Predicate>,
    /// Whether the DC ranges over tuple pairs (`true`) or single tuples.
    pub binary: bool,
    /// Optional human-readable name.
    pub name: String,
}

impl DenialConstraint {
    /// A unary DC over single tuples.
    pub fn unary(name: impl Into<String>, predicates: Vec<Predicate>) -> Self {
        Self { predicates, binary: false, name: name.into() }
    }

    /// A binary DC over tuple pairs.
    pub fn binary(name: impl Into<String>, predicates: Vec<Predicate>) -> Self {
        Self { predicates, binary: true, name: name.into() }
    }

    /// Compiles an FD `lhs → rhs` into the equivalent binary DC:
    /// `¬(t1.lhs = t2.lhs ∧ t1.rhs ≠ t2.rhs)`.
    pub fn from_fd(fd: &crate::fd::FunctionalDependency) -> Self {
        let mut predicates: Vec<Predicate> = fd
            .lhs
            .iter()
            .map(|&c| Predicate::new(Operand::First(c), CmpOp::Eq, Operand::Second(c)))
            .collect();
        predicates.push(Predicate::new(
            Operand::First(fd.rhs),
            CmpOp::Neq,
            Operand::Second(fd.rhs),
        ));
        Self { predicates, binary: true, name: format!("fd_{:?}_to_{}", fd.lhs, fd.rhs) }
    }

    /// Columns this DC constrains (used to attribute violations to cells).
    pub fn touched_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self
            .predicates
            .iter()
            .flat_map(|p| {
                [
                    p.lhs.touched_col(true),
                    p.lhs.touched_col(false),
                    p.rhs.touched_col(true),
                    p.rhs.touched_col(false),
                ]
            })
            .flatten()
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn violates_pair(&self, t1: &[Value], t2: &[Value]) -> bool {
        self.predicates.iter().all(|p| p.eval(t1, t2))
    }

    /// Marks cells participating in violations of this DC.
    ///
    /// Unary DCs flag the touched columns of each violating row. Binary DCs
    /// use hash blocking on the first equality predicate when one exists
    /// (quadratic scan within blocks) and flag the touched columns of both
    /// rows in a violating pair.
    pub fn violations(&self, table: &Table) -> CellMask {
        let mut mask = CellMask::new(table.n_rows(), table.n_cols());
        let cols = self.touched_columns();
        let rows: Vec<Vec<Value>> = (0..table.n_rows()).map(|r| table.row(r)).collect();
        if !self.binary {
            for (r, row) in rows.iter().enumerate() {
                if self.violates_pair(row, row) {
                    for &c in &cols {
                        mask.set(r, c, true);
                    }
                }
            }
            return mask;
        }

        // Blocking: find an equality predicate t1.c = t2.c to partition on.
        let block_col = self.predicates.iter().find_map(|p| match (&p.lhs, p.op, &p.rhs) {
            (Operand::First(a), CmpOp::Eq, Operand::Second(b)) if a == b => Some(*a),
            (Operand::Second(a), CmpOp::Eq, Operand::First(b)) if a == b => Some(*a),
            _ => None,
        });

        let mark_pair = |mask: &mut CellMask, i: usize, j: usize| {
            for &c in &cols {
                mask.set(i, c, true);
                mask.set(j, c, true);
            }
        };

        match block_col {
            Some(bc) => {
                let mut blocks: std::collections::BTreeMap<String, Vec<usize>> = Default::default();
                for (r, row) in rows.iter().enumerate() {
                    if !row[bc].is_null() {
                        blocks.entry(row[bc].as_key().into_owned()).or_default().push(r);
                    }
                }
                for members in blocks.values() {
                    for (ii, &i) in members.iter().enumerate() {
                        for &j in &members[ii + 1..] {
                            if self.violates_pair(&rows[i], &rows[j])
                                || self.violates_pair(&rows[j], &rows[i])
                            {
                                mark_pair(&mut mask, i, j);
                            }
                        }
                    }
                }
            }
            None => {
                for i in 0..rows.len() {
                    for j in i + 1..rows.len() {
                        if self.violates_pair(&rows[i], &rows[j])
                            || self.violates_pair(&rows[j], &rows[i])
                        {
                            mark_pair(&mut mask, i, j);
                        }
                    }
                }
            }
        }
        mask
    }
}

/// Violations of a set of DCs, unioned.
pub fn all_dc_violations(table: &Table, dcs: &[DenialConstraint]) -> CellMask {
    let mut mask = CellMask::new(table.n_rows(), table.n_cols());
    for dc in dcs {
        mask.union_with(&dc.violations(table));
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("age", ColumnType::Int),
            ColumnMeta::new("zip", ColumnType::Str),
            ColumnMeta::new("city", ColumnType::Str),
        ]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::Int(30), Value::str("10115"), Value::str("Berlin")],
                vec![Value::Int(-5), Value::str("10115"), Value::str("Berlin")],
                vec![Value::Int(40), Value::str("10115"), Value::str("Potsdam")],
                vec![Value::Int(25), Value::str("80331"), Value::str("Munich")],
            ],
        )
    }

    #[test]
    fn unary_dc_flags_negative_age() {
        // ¬(t.age < 0)
        let dc = DenialConstraint::unary(
            "age_nonneg",
            vec![Predicate::new(Operand::First(0), CmpOp::Lt, Operand::Const(Value::Int(0)))],
        );
        let m = dc.violations(&table());
        assert_eq!(m.count(), 1);
        assert!(m.get(1, 0));
    }

    #[test]
    fn binary_dc_from_fd_flags_conflicting_pair() {
        let fd = crate::fd::FunctionalDependency::new([1], 2);
        let dc = DenialConstraint::from_fd(&fd);
        assert!(dc.binary);
        let m = dc.violations(&table());
        // Rows 0,1,2 share zip; city of row 2 conflicts with 0 and 1.
        // Violating pairs: (0,2), (1,2) -> cells in cols {1,2} of rows 0,1,2.
        assert!(m.get(2, 2));
        assert!(m.get(0, 2));
        assert!(m.get(1, 2));
        assert!(!m.get(3, 2));
    }

    #[test]
    fn nulls_do_not_trigger_predicates() {
        let mut t = table();
        t.set_cell(1, 0, Value::Null);
        let dc = DenialConstraint::unary(
            "age_nonneg",
            vec![Predicate::new(Operand::First(0), CmpOp::Lt, Operand::Const(Value::Int(0)))],
        );
        assert!(dc.violations(&t).is_empty());
    }

    #[test]
    fn order_predicates_on_strings_never_fire() {
        let dc = DenialConstraint::unary(
            "weird",
            vec![Predicate::new(Operand::First(2), CmpOp::Gt, Operand::Const(Value::Int(0)))],
        );
        assert!(dc.violations(&table()).is_empty());
    }

    #[test]
    fn touched_columns_deduplicated_sorted() {
        let fd = crate::fd::FunctionalDependency::new([1], 2);
        let dc = DenialConstraint::from_fd(&fd);
        assert_eq!(dc.touched_columns(), vec![1, 2]);
    }

    #[test]
    fn binary_dc_without_blocking_still_works() {
        // ¬(t1.age > t2.age ∧ t1.age < t2.age) is unsatisfiable — no flags.
        let dc = DenialConstraint::binary(
            "impossible",
            vec![
                Predicate::new(Operand::First(0), CmpOp::Gt, Operand::Second(0)),
                Predicate::new(Operand::First(0), CmpOp::Lt, Operand::Second(0)),
            ],
        );
        assert!(dc.violations(&table()).is_empty());
    }

    #[test]
    fn multiple_dcs_union() {
        let dc1 = DenialConstraint::unary(
            "age_nonneg",
            vec![Predicate::new(Operand::First(0), CmpOp::Lt, Operand::Const(Value::Int(0)))],
        );
        let dc2 = DenialConstraint::from_fd(&crate::fd::FunctionalDependency::new([1], 2));
        let m = all_dc_violations(&table(), &[dc1, dc2]);
        assert!(m.get(1, 0));
        assert!(m.get(2, 2));
    }

    #[test]
    fn cmp_op_symbols() {
        assert_eq!(CmpOp::Eq.symbol(), "=");
        assert_eq!(CmpOp::Geq.symbol(), ">=");
    }
}
