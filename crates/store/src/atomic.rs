//! The hardened atomic-write primitive shared by the store's segment
//! writer and the repository's CSV persistence.
//!
//! The classic temp-file + rename pattern guarantees the *name* flips
//! atomically, but not that the *bytes* behind it are durable: after a
//! power loss the filesystem may replay the rename without the data
//! blocks, leaving a correctly-named empty or torn file. The full
//! sequence is therefore
//!
//! 1. write the bytes to a temp file in the same directory,
//! 2. `fsync` the temp file (data + metadata reach the disk),
//! 3. `rename` it over the target (atomic name flip),
//! 4. `fsync` the parent directory (the directory entry itself is
//!    durable).
//!
//! Steps 2 and 4 are the hardening this module adds over the repo's
//! original pattern (DESIGN.md §6j).

use std::fs::File;
use std::io::Write;
use std::path::Path;

/// Atomically and durably replaces `path` with `bytes`. A crash at any
/// point leaves either the old content or the new content — never a
/// torn or empty file surviving the next mount.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    std::fs::create_dir_all(&dir)?;
    let stem = path.file_name().map_or_else(String::new, |n| n.to_string_lossy().into_owned());
    let tmp = dir.join(format!("{stem}.tmp-{}", std::process::id()));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        fsync_dir(&dir)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Fsyncs a directory so renames and creations inside it are durable.
/// Directories open read-only on Unix; on platforms where opening a
/// directory fails the rename is still atomic, just not power-loss
/// durable, so the error is surfaced rather than swallowed only when
/// the open itself succeeded.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    match File::open(dir) {
        Ok(d) => d.sync_all(),
        // Opening a directory handle is not supported everywhere; the
        // rename above was still atomic, so degrade gracefully.
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rein-store-atomic-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp_files() {
        let root = tmp_root("replace");
        let target = root.join("data.bin");
        atomic_write(&target, b"first").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"first");
        atomic_write(&target, b"second").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"second");
        let leftovers: Vec<_> = std::fs::read_dir(&root)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn atomic_write_creates_missing_parent_directories() {
        let root = tmp_root("mkdirs");
        let target = root.join("a/b/c.bin");
        atomic_write(&target, b"deep").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"deep");
        let _ = std::fs::remove_dir_all(&root);
    }
}
