//! # rein-datasets
//!
//! Synthetic generators for the 14 benchmark datasets of the paper's
//! Table 4. The originals are Kaggle/UCI downloads that cannot be fetched
//! offline; each generator reproduces the dataset's *shape* — row/column
//! counts, numeric/categorical split, application domain, ML task, error
//! types and error rate — and plants a learnable feature–target structure
//! so that model accuracy reacts to data corruption the way the paper
//! reports. Every generator is deterministic per seed and scalable via
//! [`gen::Params::size_factor`].

pub mod classification;
pub mod clustering;
pub mod common;
pub mod gen;
pub mod regression;

pub use common::GeneratedDataset;
pub use gen::Params;

use serde::{Deserialize, Serialize};

/// Identifiers for the 14 benchmark datasets (Table 4 order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetId {
    /// Craft beers (C).
    Beers,
    /// Citation records (C, duplicates + mislabels).
    Citation,
    /// Census income (C).
    Adult,
    /// Breast cancer cytology (C).
    BreastCancer,
    /// High-storage-system sensors (C).
    SmartFactory,
    /// Airfoil self-noise (R).
    Nasa,
    /// Bike sharing (R).
    Bikes,
    /// Hyperspectral soil moisture (R).
    SoilMoisture,
    /// 3D-printer settings (R).
    Printer3d,
    /// Mercedes test bench (R).
    Mercedes,
    /// Water treatment plant (UC).
    Water,
    /// Human activity recognition (UC).
    Har,
    /// Household power consumption (UC).
    Power,
    /// European soccer (scalability, no task).
    Soccer,
}

impl DatasetId {
    /// All 14 datasets, in Table 4 order.
    pub const ALL: [DatasetId; 14] = [
        DatasetId::Beers,
        DatasetId::Citation,
        DatasetId::Adult,
        DatasetId::BreastCancer,
        DatasetId::SmartFactory,
        DatasetId::Nasa,
        DatasetId::Bikes,
        DatasetId::SoilMoisture,
        DatasetId::Printer3d,
        DatasetId::Mercedes,
        DatasetId::Water,
        DatasetId::Har,
        DatasetId::Power,
        DatasetId::Soccer,
    ];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Beers => "beers",
            DatasetId::Citation => "citation",
            DatasetId::Adult => "adult",
            DatasetId::BreastCancer => "breast_cancer",
            DatasetId::SmartFactory => "smart_factory",
            DatasetId::Nasa => "nasa",
            DatasetId::Bikes => "bikes",
            DatasetId::SoilMoisture => "soil_moisture",
            DatasetId::Printer3d => "printer3d",
            DatasetId::Mercedes => "mercedes",
            DatasetId::Water => "water",
            DatasetId::Har => "har",
            DatasetId::Power => "power",
            DatasetId::Soccer => "soccer",
        }
    }

    /// Parses a dataset name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|d| d.name() == name)
    }

    /// Paper-size row count (Table 4).
    pub fn paper_rows(self) -> usize {
        match self {
            DatasetId::Beers => 2410,
            DatasetId::Citation => 5005,
            DatasetId::Adult => 45223,
            DatasetId::BreastCancer => 700,
            DatasetId::SmartFactory => 23645,
            DatasetId::Nasa => 1504,
            DatasetId::Bikes => 17378,
            DatasetId::SoilMoisture => 679,
            DatasetId::Printer3d => 50,
            DatasetId::Mercedes => 4210,
            DatasetId::Water => 527,
            DatasetId::Har => 70000,
            DatasetId::Power => 1456,
            DatasetId::Soccer => 180228,
        }
    }

    /// Generates the dataset.
    pub fn generate(self, params: &Params) -> GeneratedDataset {
        match self {
            DatasetId::Beers => classification::beers(params),
            DatasetId::Citation => classification::citation(params),
            DatasetId::Adult => classification::adult(params),
            DatasetId::BreastCancer => classification::breast_cancer(params),
            DatasetId::SmartFactory => classification::smart_factory(params),
            DatasetId::Nasa => regression::nasa(params),
            DatasetId::Bikes => regression::bikes(params),
            DatasetId::SoilMoisture => regression::soil_moisture(params),
            DatasetId::Printer3d => regression::printer3d(params),
            DatasetId::Mercedes => regression::mercedes(params),
            DatasetId::Water => clustering::water(params),
            DatasetId::Har => clustering::har(params),
            DatasetId::Power => clustering::power(params),
            DatasetId::Soccer => clustering::soccer(params),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::diff::diff_mask;

    #[test]
    fn all_fourteen_datasets_generate() {
        for id in DatasetId::ALL {
            // Tiny scale so the full sweep stays fast.
            let p = Params::scaled(500.0 / id.paper_rows() as f64, 1);
            let d = id.generate(&p);
            assert!(d.clean.n_rows() >= 20, "{}", id.name());
            assert!(d.dirty.n_rows() >= d.clean.n_rows(), "{}", id.name());
            assert!(!d.mask.is_empty(), "{} must contain errors", id.name());
            assert_eq!(d.info.name, id.name());
            // The mask is always the exact ground-truth diff.
            assert_eq!(diff_mask(&d.clean, &d.dirty), d.mask, "{}", id.name());
        }
    }

    #[test]
    fn name_roundtrip() {
        for id in DatasetId::ALL {
            assert_eq!(DatasetId::from_name(id.name()), Some(id));
        }
        assert_eq!(DatasetId::from_name("nope"), None);
    }

    #[test]
    fn paper_rows_reached_at_full_scale() {
        // Spot-check a small one at full scale.
        let d = DatasetId::Printer3d.generate(&Params::full(3));
        assert_eq!(d.clean.n_rows(), 50);
    }

    #[test]
    fn fds_hold_on_clean_everywhere() {
        for id in DatasetId::ALL {
            let p = Params::scaled(400.0 / id.paper_rows() as f64, 2);
            let d = id.generate(&p);
            for f in &d.fds {
                assert!(rein_constraints::fd::holds(&d.clean, f), "{}", id.name());
            }
        }
    }

    #[test]
    fn error_rates_roughly_match_table4() {
        // Rates within a factor-2 band of the paper's numbers (composition
        // and feasibility ceilings make exact matches impossible).
        let expect = [
            (DatasetId::Beers, 0.16),
            (DatasetId::BreastCancer, 0.08),
            (DatasetId::Water, 0.14),
            (DatasetId::Power, 0.037),
        ];
        for (id, rate) in expect {
            let p = Params::scaled(800.0 / id.paper_rows() as f64, 3);
            let d = id.generate(&p);
            let realised = d.error_rate();
            assert!(
                realised > rate * 0.4 && realised < rate * 2.5,
                "{}: realised {realised} vs target {rate}",
                id.name()
            );
        }
    }
}
