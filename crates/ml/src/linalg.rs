//! Minimal dense linear algebra for the model zoo.
//!
//! A flat row-major [`Matrix`] plus the handful of kernels the models need:
//! matrix–vector and matrix–matrix products, transpose, and a
//! Cholesky-based SPD solver (with a ridge fallback) for the closed-form
//! linear models. Flat storage keeps hot loops allocation-free, per the
//! perf-book guidance.

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { data, rows, cols }
    }

    /// Builds from row slices.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { data, rows: r, cols: c }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying flat buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj order: stream through `other` rows for cache locality.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        (0..self.rows).map(|r| dot(self.row(r), v)).collect()
    }

    /// `Xᵀ X` (Gram matrix), exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let row = self.row(i);
            for a in 0..self.cols {
                let ra = row[a];
                if ra == 0.0 {
                    continue;
                }
                for b in a..self.cols {
                    out[(a, b)] += ra * row[b];
                }
            }
        }
        for a in 0..self.cols {
            for b in 0..a {
                out[(a, b)] = out[(b, a)];
            }
        }
        out
    }

    /// `Xᵀ y`.
    pub fn t_vec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, y.len(), "t_vec dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let yi = y[i];
            if yi == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(self.row(i)) {
                *o += x * yi;
            }
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Index of the first maximum (ties resolve to the lowest index, matching
/// scikit-learn's argmax semantics); 0 on an empty slice.
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, &v) in xs.iter().enumerate().skip(1) {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance.
pub fn euclid(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// Solves the SPD system `A x = b` by Cholesky decomposition, adding
/// progressively larger ridge terms on the diagonal until the
/// factorisation succeeds (handles rank-deficient design matrices).
///
/// Returns `None` only if the system stays unsolvable after the largest
/// ridge (pathological NaN/Inf input).
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows(), a.cols(), "solve_spd needs a square matrix");
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    let n = a.rows();
    let mut ridge = 0.0;
    for attempt in 0..8 {
        if attempt > 0 {
            let scale = (0..n).map(|i| a[(i, i)].abs()).fold(1e-12, f64::max);
            ridge = scale * 10f64.powi(attempt - 9); // 1e-8 … 1e-1 of scale
        }
        if let Some(l) = cholesky(a, ridge) {
            return Some(cholesky_solve(&l, b));
        }
    }
    None
}

/// Lower-triangular Cholesky factor of `a + ridge·I`, or `None` when the
/// matrix (with ridge) is not positive definite.
fn cholesky(a: &Matrix, ridge: f64) -> Option<Matrix> {
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)] + if i == j { ridge } else { 0.0 };
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Solves `L Lᵀ x = b` given the Cholesky factor `L`.
fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    // Forward: L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
    // Backward: Lᵀ x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().row(0), &[1.0, 4.0]);
    }

    #[test]
    fn gram_equals_xtx() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = x.gram();
        let xtx = x.transpose().matmul(&x);
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - xtx[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matvec_and_tvec() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(x.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(x.t_vec(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn solve_spd_recovers_solution() {
        // A = [[4,1],[1,3]], x = [1, 2] -> b = [6, 7]
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let x = solve_spd(&a, &[6.0, 7.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn solve_spd_handles_singular_with_ridge() {
        // Rank-1 matrix: exact solve impossible, ridge fallback returns
        // a finite least-norm-ish solution.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let x = solve_spd(&a, &[2.0, 2.0]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
        // Residual small relative to b.
        let r0 = a.matvec(&x)[0] - 2.0;
        assert!(r0.abs() < 0.1, "residual {r0}");
    }

    #[test]
    fn distances() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclid(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
