//! Trace exports: the ledger-side packaging of the causal cell traces
//! reconstructed by `rein-telemetry`.
//!
//! For one run manifest the `rein_trace` binary writes three files to
//! `artifacts/trace/`, all pure functions of the manifest bytes (same
//! manifest, same bytes — CI double-runs and compares hashes):
//!
//! * `<stem>.trace.json` — Chrome trace-event JSON, openable in
//!   Perfetto / `chrome://tracing`. Virtual lanes and tick time, so the
//!   file is identical across thread counts and shard counts.
//! * `<stem>.flame.svg` — a dependency-free flamegraph of the merged
//!   cell trees.
//! * `<stem>.cells.json` — the typed [`TraceExport`]: per-cell tick,
//!   span, failure and retry costs, ranked hottest-failing first. This
//!   is the file the ledger ingests (see [`trace_entry`]).

use std::path::{Path, PathBuf};

use rein_telemetry::{build_traces, cell_costs, chrome_trace_json, flamegraph_svg, CellCost};
use rein_telemetry::{RunManifest, TraceForest};
use serde::{Deserialize, Serialize};

use crate::hash::{content_key, run_identity};
use crate::index::{EntrySummary, LedgerEntry};

/// Schema version stamped into `.cells.json` exports.
pub const TRACE_SCHEMA: u32 = 1;

/// Directory trace exports live in, relative to the repo root.
pub fn trace_dir(root: &Path) -> PathBuf {
    root.join("artifacts").join("trace")
}

/// The typed `.cells.json` export: run identity plus the deterministic
/// per-cell cost/failure table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceExport {
    /// [`TRACE_SCHEMA`].
    pub schema: u32,
    /// Binary that produced the source manifest.
    pub binary: String,
    /// Run seed.
    pub seed: u64,
    /// Dataset scale factor.
    pub scale: f64,
    /// Worker threads the run echoed.
    pub threads: u32,
    /// Cell traces reconstructed from the span stream.
    pub traces: u64,
    /// Spans carrying a trace id whose parent never appeared — always 0
    /// for a complete stream; nonzero means the export is partial.
    pub orphans: u64,
    /// Spans outside any cell trace (controller/phase scaffolding).
    pub ambient_spans: u64,
    /// Per-cell costs, ranked failures desc → ticks desc → cell asc.
    pub cells: Vec<CellCost>,
}

/// Reconstructs the trace forest of a manifest's span stream and the
/// typed export derived from it.
pub fn export_manifest(manifest: &RunManifest) -> (TraceForest, TraceExport) {
    let forest = build_traces(&manifest.spans);
    let cells = cell_costs(&forest);
    let export = TraceExport {
        schema: TRACE_SCHEMA,
        binary: manifest.binary.clone(),
        seed: manifest.config.seed,
        scale: manifest.config.scale,
        threads: manifest.config.threads,
        traces: forest.traces.len() as u64,
        orphans: forest.orphans.len() as u64,
        ambient_spans: forest.ambient,
        cells,
    };
    (forest, export)
}

/// Serializes a [`TraceExport`] to its on-disk form: pretty JSON with a
/// trailing newline, like every other ledger artifact.
pub fn export_json(export: &TraceExport) -> String {
    let mut text = serde_json::to_string_pretty(export).unwrap_or_else(|e|
        // audit:allow(panic, serializing plain owned data cannot fail)
        panic!("trace export serializes: {e}"));
    text.push('\n');
    text
}

/// Writes the three trace exports for `manifest` under
/// `artifacts/trace/<stem>.*` and returns the paths written, in
/// (trace.json, flame.svg, cells.json) order.
pub fn write_exports(
    root: &Path,
    stem: &str,
    manifest: &RunManifest,
) -> Result<[PathBuf; 3], String> {
    let dir = trace_dir(root);
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let (forest, export) = export_manifest(manifest);
    let chrome = dir.join(format!("{stem}.trace.json"));
    let flame = dir.join(format!("{stem}.flame.svg"));
    let cells = dir.join(format!("{stem}.cells.json"));
    std::fs::write(&chrome, chrome_trace_json(&forest))
        .map_err(|e| format!("write {}: {e}", chrome.display()))?;
    std::fs::write(&flame, flamegraph_svg(&forest))
        .map_err(|e| format!("write {}: {e}", flame.display()))?;
    std::fs::write(&cells, export_json(&export))
        .map_err(|e| format!("write {}: {e}", cells.display()))?;
    Ok([chrome, flame, cells])
}

/// Builds the ledger entry for one `.cells.json` export. The identity
/// is (bin, seed, scale, sorted cell names) — tick costs are volatile
/// only in the sense that code growth changes them, and a changed cell
/// set is a different grid, so the set (not the costs) keys the entry.
pub fn trace_entry(export: &TraceExport, source: &str) -> LedgerEntry {
    let mut cell_names: Vec<String> = export.cells.iter().map(|c| c.cell.clone()).collect();
    cell_names.sort();
    cell_names.dedup();
    let key = content_key(&run_identity(
        "trace_export",
        &export.binary,
        export.seed,
        export.scale,
        &cell_names,
    ));
    let spans: u64 = export.cells.iter().map(|c| c.spans + c.instants).sum();
    LedgerEntry {
        key,
        kind: "trace_export".to_string(),
        source: source.to_string(),
        bin: export.binary.clone(),
        seed: export.seed,
        scale: export.scale,
        threads: export.threads,
        mode: String::new(),
        strategies: cell_names,
        generation: 0,
        summary: EntrySummary { spans, span_names: export.traces, ..EntrySummary::default() },
        bench_medians: std::collections::BTreeMap::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_telemetry::{RunConfig, SpanRecord};
    use std::collections::BTreeMap;

    fn rec(name: &str, id: u64, parent: u64, trace: u64, instant: bool) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            id,
            parent_id: parent,
            depth: 0,
            start_ms: 0.0,
            duration_ms: 1.0,
            trace_id: trace,
            instant,
        }
    }

    fn manifest() -> RunManifest {
        RunManifest {
            binary: "parallel_smoke".into(),
            config: RunConfig { scale: 0.05, repeats: 1, seed: 31, label_budget: 50, threads: 4 },
            mode: "full".into(),
            spans: vec![
                rec("controller:grid", 1, 0, 0, false),
                rec("cell:detect:raha", 2, 1, 0xA1, false),
                rec("detect:raha", 3, 2, 0xA1, false),
                rec("guard:fail:panic", 4, 3, 0xA1, true),
                rec("cell:detect:katara", 5, 1, 0xB2, false),
            ],
            span_rollup: Vec::new(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            failures: Vec::new(),
        }
    }

    #[test]
    fn export_counts_traces_cells_and_failures() {
        let (forest, export) = export_manifest(&manifest());
        assert_eq!(forest.traces.len(), 2);
        assert_eq!(export.traces, 2);
        assert_eq!(export.orphans, 0);
        assert_eq!(export.ambient_spans, 1, "controller:grid is ambient");
        assert_eq!(export.cells.len(), 2);
        // Ranked failing-first: the raha cell carries the injected panic.
        assert_eq!(export.cells[0].cell, "cell:detect:raha");
        assert_eq!(export.cells[0].failures, 1);
        assert_eq!(export.cells[1].failures, 0);
    }

    #[test]
    fn export_json_roundtrips_and_is_stable() {
        let (_, export) = export_manifest(&manifest());
        let text = export_json(&export);
        assert!(text.ends_with('\n'));
        let back: TraceExport = serde_json::from_str(&text).expect("export parses back");
        assert_eq!(back, export);
        assert_eq!(export_json(&back), text, "re-serialization is byte-identical");
    }

    #[test]
    fn trace_entries_key_on_cell_set_not_costs() {
        let m = manifest();
        let (_, a) = export_manifest(&m);
        let mut costlier = a.clone();
        costlier.cells[0].ticks += 100;
        let ea = trace_entry(&a, "artifacts/trace/x.cells.json");
        let eb = trace_entry(&costlier, "artifacts/trace/x.cells.json");
        assert_eq!(ea.key, eb.key, "tick costs are not identity");
        assert_eq!(ea.kind, "trace_export");
        assert_eq!(ea.summary.span_names, 2, "trace count lands in span_names");
        let mut fewer = a.clone();
        fewer.cells.pop();
        let ec = trace_entry(&fewer, "artifacts/trace/x.cells.json");
        assert_ne!(ea.key, ec.key, "the cell set is identity");
    }
}
