//! The benchmark controller (§2): connects the repository, toolbox and
//! evaluation module, and exploits design-time knowledge (error types, ML
//! task, available signals) to sidestep unnecessary experiments.

use std::collections::BTreeMap;

use rayon::prelude::*;
use rein_data::rng::derive_seed;
use rein_data::MlTask;
use rein_datasets::GeneratedDataset;
use rein_detect::DetectorKind;
use rein_guard::{GuardPolicy, StrategyFailure};
use rein_ml::model::{ClassifierKind, ClustererKind, RegressorKind};
use rein_repair::{RepairCategory, RepairKind};

use crate::evaluate::{
    eval_classifier_guarded, eval_clusterer, eval_regressor_guarded, repair_quality_categorical,
    repair_quality_numerical, run_repair_guarded, table_identity, DetectorHarness, DetectorRun,
    RepairRun, VersionTable,
};
use crate::experiment::{DetectionRecord, RepairRecord};
use crate::scenario::Scenario;
use crate::toolbox::{applicable_detectors, applicable_repairers, AvailableSignals};

/// A cleaning strategy: one detector feeding one repairer (the paper's
/// figure labels, e.g. "R3" = RAHA + mean-mode imputation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleaningStrategy {
    /// Detector.
    pub detector: DetectorKind,
    /// Repairer.
    pub repairer: RepairKind,
}

impl CleaningStrategy {
    /// Paper-style label: detector index letter + repairer index, e.g.
    /// `"X3"` for Max-Entropy + mean-mode.
    pub fn label(&self) -> String {
        format!("{}{}", self.detector.index_letter(), self.repairer.index())
    }
}

/// The benchmark controller.
#[derive(Debug, Clone)]
pub struct Controller {
    /// Labelling budget for ML-supported detectors.
    pub label_budget: usize,
    /// Master seed.
    pub seed: u64,
    /// Supervision policy for every toolbox dispatch (chaos injection,
    /// retries, budget override).
    pub policy: GuardPolicy,
    /// Dataset scale factor the grid runs at — a [`CellKey`]
    /// component, so it participates in every cell's trace id.
    ///
    /// [`CellKey`]: crate::cache_key::CellKey
    pub scale: f64,
    /// Opt-in live progress heartbeat (`REIN_PROGRESS`, plumbed by
    /// rein-bench): when true, the grid's sequential merge points print
    /// deterministic-content progress lines (cell counts, never timing
    /// or worker identity) to stderr.
    pub progress: bool,
}

impl Default for Controller {
    fn default() -> Self {
        Self {
            label_budget: crate::evaluate::DEFAULT_LABEL_BUDGET,
            seed: 0,
            policy: GuardPolicy::default(),
            scale: 1.0,
            progress: false,
        }
    }
}

/// The pruned experiment plan for one dataset.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Detectors worth running.
    pub detectors: Vec<DetectorKind>,
    /// Generic repairers worth running (per detector).
    pub generic_repairers: Vec<RepairKind>,
    /// ML-oriented repairers worth running.
    pub ml_repairers: Vec<RepairKind>,
}

impl Controller {
    /// Signals the benchmark can supply for a generated dataset (the
    /// ground truth exists, so KB and oracle are always available; the
    /// rest depends on the dataset).
    pub fn signals_for(ds: &GeneratedDataset) -> AvailableSignals {
        AvailableSignals {
            fds: !ds.fds.is_empty(),
            knowledge_base: true,
            key_columns: !ds.key_columns.is_empty(),
            oracle: true,
            label_column: ds.clean.schema().label_index().is_some(),
        }
    }

    /// Builds the pruned plan for a dataset.
    pub fn plan(&self, ds: &GeneratedDataset) -> Plan {
        let _span = rein_telemetry::span("controller:plan");
        let signals = Self::signals_for(ds);
        let detectors = applicable_detectors(&ds.info.errors, &signals);
        let repairers = applicable_repairers(&ds.info.errors, ds.info.task, &signals);
        let (ml, generic): (Vec<RepairKind>, Vec<RepairKind>) =
            repairers.into_iter().partition(|r| r.category() == RepairCategory::MlOriented);
        Plan { detectors, generic_repairers: generic, ml_repairers: ml }
    }

    /// Runs the detection phase: every planned detector, in parallel.
    /// Each worker opens a **cell trace root** named for its grid
    /// coordinate and keyed by the cell's [`CellKey`] digest, so every
    /// span and instant the detector produces reconstructs into that
    /// cell's tree after the sharded sink merges (DESIGN.md §6i).
    ///
    /// [`CellKey`]: crate::cache_key::CellKey
    pub fn run_detection(&self, ds: &GeneratedDataset) -> Vec<DetectorRun> {
        let plan = self.plan(ds);
        let span = rein_telemetry::span("controller:detect");
        // Detector spans open on rayon worker threads; hand them the
        // phase span explicitly so nesting survives the fan-out.
        let parent = Some(span.ctx());
        let dirty_id = table_identity(&ds.dirty);
        let runs: Vec<DetectorRun> = plan
            .detectors
            .par_iter()
            .map(|&kind| {
                let strategy = format!("detect:{}", kind.name());
                let cell_seed = derive_seed(self.seed, kind.index_letter() as u64);
                let trace = self.cell_key(ds, &dirty_id, &strategy, self.scale, cell_seed).hash();
                let _worker =
                    rein_telemetry::span_traced(format!("cell:{strategy}"), parent, trace);
                let harness = DetectorHarness::new(ds, self.label_budget, cell_seed)
                    .with_policy(self.policy.clone());
                harness.run(ds, kind)
            })
            .collect();
        let failed = runs.iter().filter(|r| r.failure.is_some()).count();
        self.emit_progress(&format!(
            "dataset={} phase=detect done={} failed={failed} total={}",
            ds.info.name,
            runs.len(),
            runs.len()
        ));
        runs
    }

    /// Runs the repair phase for one detector's detections: every planned
    /// generic repairer plus the ML-oriented ones.
    pub fn run_repairs(&self, ds: &GeneratedDataset, detection: &DetectorRun) -> Vec<RepairRun> {
        let plan = self.plan(ds);
        let kinds: Vec<RepairKind> =
            plan.generic_repairers.iter().chain(plan.ml_repairers.iter()).copied().collect();
        let span = rein_telemetry::span("controller:repair");
        let parent = Some(span.ctx());
        // Repair cells consume the dirty table (plus the detector's
        // mask, named in the strategy coordinate): its identity is the
        // `dataset_version` component of the cell trace id.
        let dirty_id = table_identity(&ds.dirty);
        let runs: Vec<RepairRun> = kinds
            .par_iter()
            .map(|&kind| {
                let strategy = format!("repair:{}#{}", kind.name(), detection.kind.name());
                let cell_seed = derive_seed(self.seed, kind.index() as u64);
                let trace = self.cell_key(ds, &dirty_id, &strategy, self.scale, cell_seed).hash();
                let _worker =
                    rein_telemetry::span_traced(format!("cell:{strategy}"), parent, trace);
                run_repair_guarded(
                    ds,
                    &detection.mask,
                    kind,
                    cell_seed,
                    detection.kind.name(),
                    &self.policy,
                )
            })
            .collect();
        let failed = runs.iter().filter(|r| r.failure.is_some()).count();
        self.emit_progress(&format!(
            "dataset={} phase=repair detector={} done={} failed={failed} total={}",
            ds.info.name,
            detection.kind.name(),
            runs.len(),
            runs.len()
        ));
        runs
    }

    /// Runs the full benchmark grid — detection, repair, and (when
    /// `scenarios` is non-empty) model evaluation — and serializes every
    /// cell's output, keyed by cell coordinates:
    ///
    /// - `detect:<detector>` — the detected cell mask,
    /// - `repair:<repairer>#<detector>` — the repaired table, modified
    ///   cells and row map (or a pipeline marker for ML-oriented
    ///   repairers),
    /// - `eval:<scenario>:<repairer>#<detector>` — the scenario scores
    ///   for each table-producing repair.
    ///
    /// The map is the grid's deterministic fingerprint: every seed is
    /// derived per cell from the controller seed and the cell's
    /// coordinates, never from worker identity or arrival order, so the
    /// serialized bytes are identical at any rayon pool width. The
    /// `parallel_smoke` binary asserts exactly that (1 ≡ 4 ≡ N threads),
    /// and `chaos_smoke` compares fault-free and fault-injected runs of
    /// the same map.
    pub fn run_grid(
        &self,
        ds: &GeneratedDataset,
        scenarios: &[Scenario],
        repeats: usize,
    ) -> BTreeMap<String, String> {
        let _span = rein_telemetry::span("controller:grid");
        let mut cells = BTreeMap::new();
        let detections = self.run_detection(ds);
        for (det_ix, det) in detections.iter().enumerate() {
            let key = format!("detect:{}", det.kind.name());
            // audit:allow(panic, CellMask serialization to JSON strings is infallible)
            let bytes = serde_json::to_string(&det.mask).expect("mask serializes");
            cells.insert(key, bytes);
            // audit:allow(seed-provenance, det only names the guard scope; every repair seed is derived inside run_repairs from self.seed and the repair kind)
            let repairs = self.run_repairs(ds, det);
            for rep in &repairs {
                let key = format!("repair:{}#{}", rep.kind.name(), det.kind.name());
                let bytes = match (&rep.version, &rep.repaired_cells) {
                    (Some(v), Some(m)) => format!(
                        "{}\n{}\n{:?}",
                        rein_data::csv::write_str(&v.table),
                        // audit:allow(panic, CellMask serialization to JSON strings is infallible)
                        serde_json::to_string(m).expect("mask serializes"),
                        v.row_map
                    ),
                    _ => format!("pipeline:{}", rep.pipeline.is_some()),
                };
                cells.insert(key, bytes);
            }
            cells.extend(self.eval_cells(ds, det, det_ix, &repairs, scenarios, repeats));
        }
        self.emit_progress(&format!(
            "dataset={} grid complete cells={}",
            ds.info.name,
            cells.len()
        ));
        cells
    }

    /// The evaluation layer of [`Controller::run_grid`]: every
    /// (scenario × table-producing repair) cell for one detector, in
    /// parallel, each under its own coordinate-derived seed.
    fn eval_cells(
        &self,
        ds: &GeneratedDataset,
        det: &DetectorRun,
        det_ix: usize,
        repairs: &[RepairRun],
        scenarios: &[Scenario],
        repeats: usize,
    ) -> Vec<(String, String)> {
        if scenarios.is_empty() || repeats == 0 {
            return Vec::new();
        }
        let span = rein_telemetry::span("controller:evaluate");
        let parent = Some(span.ctx());
        // Per-repair version identities, computed once at the sequential
        // merge point: each eval cell's trace id keys on the exact table
        // version it consumes.
        let version_ids: Vec<Option<String>> =
            repairs.iter().map(|r| r.version.as_ref().map(|v| v.content_identity())).collect();
        let work: Vec<(usize, usize)> = (0..scenarios.len())
            .flat_map(|si| {
                repairs
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.version.is_some())
                    .map(move |(ri, _)| (si, ri))
            })
            .collect();
        let cells: Vec<(String, String)> = work
            .par_iter()
            .map(|&(si, ri)| {
                let scenario = scenarios[si];
                let rep = &repairs[ri];
                // audit:allow(panic, the work list above is filtered to table-producing repairs)
                let version = rep.version.as_ref().expect("versioned repair");
                // audit:allow(panic, the work list above is filtered to table-producing repairs)
                let version_id = version_ids[ri].as_deref().expect("versioned repair identity");
                let cell_seed = derive_seed(
                    self.seed,
                    40_000 + (det_ix as u64) * 1_000 + (si as u64) * 100 + ri as u64,
                );
                let key =
                    format!("eval:{}:{}#{}", scenario.name(), rep.kind.name(), det.kind.name());
                let trace = self.cell_key(ds, version_id, &key, self.scale, cell_seed).hash();
                let _worker = rein_telemetry::span_traced(format!("cell:{key}"), parent, trace);
                (key, self.eval_cell(ds, scenario, version, repeats, cell_seed))
            })
            .collect();
        let failed = cells.iter().filter(|(_, v)| v.contains(" failure:")).count();
        self.emit_progress(&format!(
            "dataset={} phase=eval detector={} done={} failed={failed} total={}",
            ds.info.name,
            det.kind.name(),
            cells.len(),
            cells.len()
        ));
        cells
    }

    /// Prints one deterministic-content progress line when the opt-in
    /// `REIN_PROGRESS` heartbeat is on. Only called from the grid's
    /// sequential merge points, so line order is scheduling-invariant;
    /// content is counts and coordinates, never timing or worker ids.
    fn emit_progress(&self, line: &str) {
        if self.progress {
            // audit:allow(print, opt-in REIN_PROGRESS heartbeat; deterministic content, emitted only at sequential merge points)
            eprintln!("[progress] {line}");
        }
    }

    /// The canonical cache key of one grid cell, exactly as the
    /// ROADMAP's content-addressed incremental store will compute it.
    /// `strategy` is the cell's `run_grid` coordinate string
    /// (`detect:…`, `repair:…#…` or `eval:…:…#…`), `dataset_version`
    /// the consumed version's [`VersionTable::content_identity`] (the
    /// dirty table's identity for detection cells), `cell_seed` the
    /// fully-derived per-cell seed, and `scale` the dataset generation
    /// factor. rein-audit's `cache-key-completeness` rule certifies the
    /// cell-compute entry points pure against exactly these components
    /// (DESIGN.md §6h), so a key hit is provably a byte-identical
    /// recompute.
    pub fn cell_key(
        &self,
        ds: &GeneratedDataset,
        dataset_version: &str,
        strategy: &str,
        scale: f64,
        cell_seed: u64,
    ) -> crate::cache_key::CellKey {
        crate::cache_key::CellKey {
            dataset: ds.info.name.clone(),
            dataset_version: dataset_version.to_string(),
            strategy: strategy.to_string(),
            seed: cell_seed,
            scale,
            guard_policy: format!("{:?}", self.policy),
        }
    }

    /// Serializes one evaluation cell: the task-appropriate model's
    /// scores (plus the failure cause when the guarded fit degraded).
    fn eval_cell(
        &self,
        ds: &GeneratedDataset,
        scenario: Scenario,
        version: &VersionTable,
        repeats: usize,
        seed: u64,
    ) -> String {
        match ds.info.task {
            MlTask::Classification => {
                let (scores, failure) = eval_classifier_guarded(
                    scenario,
                    ds,
                    version,
                    ClassifierKind::DecisionTree,
                    repeats,
                    seed,
                    &self.policy,
                );
                render_scores(&scores, failure.as_ref())
            }
            MlTask::Regression => {
                let (scores, failure) = eval_regressor_guarded(
                    scenario,
                    ds,
                    version,
                    RegressorKind::LinearRegression,
                    repeats,
                    seed,
                    &self.policy,
                );
                render_scores(&scores, failure.as_ref())
            }
            MlTask::Clustering => {
                let score = eval_clusterer(&version.table, ClustererKind::KMeans, 6, seed);
                format!("silhouette:{score:?}")
            }
            MlTask::None => "task:none".to_string(),
        }
    }

    /// Detection records for result tables.
    pub fn detection_records(
        &self,
        ds: &GeneratedDataset,
        runs: &[DetectorRun],
    ) -> Vec<DetectionRecord> {
        runs.iter()
            .map(|run| DetectionRecord {
                dataset: ds.info.name.clone(),
                detector: run.kind.name().to_string(),
                detected: run.quality.detected(),
                true_positives: run.quality.true_positives,
                actual_errors: run.quality.actual_errors(),
                precision: run.quality.precision,
                recall: run.quality.recall,
                f1: run.quality.f1,
                runtime_ms: run.runtime.as_secs_f64() * 1e3,
                failure: run.failure.as_ref().map(|f| f.cause.to_string()),
            })
            .collect()
    }

    /// Repair records for result tables.
    pub fn repair_records(
        &self,
        ds: &GeneratedDataset,
        detector: DetectorKind,
        runs: &[RepairRun],
    ) -> Vec<RepairRecord> {
        runs.iter()
            .map(|run| {
                let cat = repair_quality_categorical(ds, run);
                let num = repair_quality_numerical(ds, run);
                RepairRecord {
                    dataset: ds.info.name.clone(),
                    detector: detector.name().to_string(),
                    repairer: run.kind.name().to_string(),
                    cat_precision: cat.map(|q| q.precision),
                    cat_recall: cat.map(|q| q.recall),
                    cat_f1: cat.map(|q| q.f1),
                    rmse: num.map(|(r, _)| r.rmse).filter(|v| v.is_finite()),
                    dirty_rmse: num.map(|(_, d)| d.rmse).filter(|v| v.is_finite()),
                    runtime_ms: run.runtime.as_secs_f64() * 1e3,
                    failure: run.failure.as_ref().map(|f| f.cause.to_string()),
                }
            })
            .collect()
    }
}

/// The `scores:…` cell text shared by the supervised tasks.
fn render_scores(scores: &[f64], failure: Option<&StrategyFailure>) -> String {
    match failure {
        Some(f) => format!("scores:{scores:?} failure:{}", f.cause),
        None => format!("scores:{scores:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_datasets::{DatasetId, Params};

    #[test]
    fn citation_plan_prunes_outlier_detectors() {
        let ds = DatasetId::Citation.generate(&Params::scaled(0.05, 1));
        let plan = Controller::default().plan(&ds);
        assert!(plan.detectors.contains(&DetectorKind::KeyCollision));
        assert!(plan.detectors.contains(&DetectorKind::CleanLab));
        assert!(!plan.detectors.contains(&DetectorKind::Sd));
        assert!(!plan.detectors.contains(&DetectorKind::Nadeef));
        // Classification dataset with oracle: ML-oriented repairs planned.
        assert!(plan.ml_repairers.contains(&RepairKind::ActiveClean));
    }

    #[test]
    fn nasa_plan_keeps_outlier_and_mv_detectors_only() {
        let ds = DatasetId::Nasa.generate(&Params::scaled(0.1, 2));
        let plan = Controller::default().plan(&ds);
        assert!(plan.detectors.contains(&DetectorKind::Sd));
        assert!(plan.detectors.contains(&DetectorKind::MvDetector));
        assert!(!plan.detectors.contains(&DetectorKind::KeyCollision));
        // Regression: no ML-oriented repairers.
        assert!(plan.ml_repairers.is_empty());
    }

    #[test]
    fn detection_phase_produces_records() {
        let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.4, 3));
        let ctrl = Controller { label_budget: 40, seed: 1, ..Controller::default() };
        let runs = ctrl.run_detection(&ds);
        assert!(!runs.is_empty());
        let records = ctrl.detection_records(&ds, &runs);
        assert_eq!(records.len(), runs.len());
        // At least one detector achieves decent recall on this dataset.
        assert!(records.iter().any(|r| r.recall > 0.5), "no detector found errors");
    }

    #[test]
    fn repair_phase_covers_generic_and_ml_methods() {
        let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.3, 4));
        let ctrl = Controller { label_budget: 30, seed: 2, ..Controller::default() };
        let harness = DetectorHarness::new(&ds, 30, 1);
        let det = harness.run(&ds, DetectorKind::MaxEntropy);
        let runs = ctrl.run_repairs(&ds, &det);
        assert!(runs.iter().any(|r| r.version.is_some()), "generic repairs ran");
        assert!(runs.iter().any(|r| r.pipeline.is_some()), "ML-oriented repairs ran");
        let records = ctrl.repair_records(&ds, det.kind, &runs);
        // Numeric dataset: RMSE defined for same-shape repairs.
        assert!(records.iter().any(|r| r.rmse.is_some()));
    }

    #[test]
    fn grid_covers_detect_repair_and_eval_cells() {
        let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.2, 6));
        let ctrl = Controller { label_budget: 30, seed: 7, ..Controller::default() };
        let cells = ctrl.run_grid(&ds, &[Scenario::S1], 1);
        assert!(cells.keys().any(|k| k.starts_with("detect:")), "got {:?}", cells.keys());
        assert!(cells.keys().any(|k| k.starts_with("repair:")), "got {:?}", cells.keys());
        let evals: Vec<&String> = cells.keys().filter(|k| k.starts_with("eval:S1:")).collect();
        assert!(!evals.is_empty(), "got {:?}", cells.keys());
        // Eval cells carry rendered scores, not placeholders.
        for key in evals {
            assert!(cells[key].starts_with("scores:"), "{key} -> {}", cells[key]);
        }
        // Byte-identity across pool widths is parallel_smoke's job; here
        // we only pin the cell taxonomy.
    }

    #[test]
    fn cell_keys_are_content_addressed_per_coordinate() {
        let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.2, 6));
        let ctrl = Controller { label_budget: 30, seed: 7, ..Controller::default() };
        let version = VersionTable::identity(ds.dirty.clone());
        let seed_a = derive_seed(ctrl.seed, 40_000);
        let seed_b = derive_seed(ctrl.seed, 40_001);
        let vid = version.content_identity();
        let a = ctrl.cell_key(&ds, &vid, "eval:S1:ImputeMeanMode#Raha", 0.2, seed_a);
        let b = ctrl.cell_key(&ds, &vid, "eval:S1:ImputeMeanMode#MaxEntropy", 0.2, seed_b);
        assert_ne!(a.content_key(), b.content_key());
        // Rebuilding the key from the same coordinates is byte-stable.
        let again = ctrl.cell_key(&ds, &vid, "eval:S1:ImputeMeanMode#Raha", 0.2, seed_a);
        assert_eq!(a, again);
        assert_eq!(a.content_key(), again.content_key());
        // The version component really is content-addressed: the same
        // table rebuilt from scratch hashes to the same identity.
        assert_eq!(vid, VersionTable::identity(ds.dirty.clone()).content_identity());
        assert!(vid.starts_with("v:") && vid.len() == 18, "got {vid}");
    }

    #[test]
    fn grid_cells_open_trace_roots_keyed_by_cell_key_digest() {
        let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.2, 6));
        // A seed no other test's grid uses: the span sink is process-
        // global, so this run's roots are isolated by their trace ids.
        let ctrl =
            Controller { label_budget: 30, seed: 0xC311, scale: 0.2, ..Controller::default() };
        let _ = ctrl.run_grid(&ds, &[Scenario::S1], 1);
        let spans = rein_telemetry::snapshot_spans();
        let roots: Vec<_> =
            spans.iter().filter(|s| s.name.starts_with("cell:") && !s.instant).collect();
        assert!(!roots.is_empty(), "grid must open cell trace roots");
        assert!(roots.iter().all(|s| s.trace_id != 0), "cell roots are never ambient");
        // Every planned detection cell's trace id is recomputable from
        // its CellKey — and the recorded roots carry exactly those ids.
        // (The snapshot is process-global, so selection is by trace id,
        // which this test's unique seed scopes to this run.)
        let dirty_id = table_identity(&ds.dirty);
        let this_run: Vec<(String, u64)> = ctrl
            .plan(&ds)
            .detectors
            .iter()
            .map(|k| {
                let strat = format!("detect:{}", k.name());
                let seed = derive_seed(ctrl.seed, k.index_letter() as u64);
                let id = ctrl.cell_key(&ds, &dirty_id, &strat, ctrl.scale, seed).hash();
                (strat, id)
            })
            .collect();
        let mut unique: Vec<u64> = this_run.iter().map(|(_, id)| *id).collect();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), this_run.len(), "detection cell trace ids are distinct");
        for (strategy, id) in &this_run {
            let root = roots
                .iter()
                .find(|s| s.trace_id == *id)
                .unwrap_or_else(|| panic!("no trace root recorded for {strategy}"));
            assert_eq!(root.name, format!("cell:{strategy}"), "root named for its coordinate");
            // Guard spans opened inside the cell inherit the root's trace.
            let inherited = spans
                .iter()
                .any(|s| s.trace_id == *id && s.id != root.id && s.name.starts_with("detect:"));
            assert!(inherited, "guard span under {strategy} must inherit its trace id");
        }
    }

    #[test]
    fn strategy_labels_follow_paper_convention() {
        let s = CleaningStrategy {
            detector: DetectorKind::MaxEntropy,
            repairer: RepairKind::ImputeMeanMode,
        };
        assert_eq!(s.label(), "X3");
        let s =
            CleaningStrategy { detector: DetectorKind::Raha, repairer: RepairKind::GroundTruth };
        assert_eq!(s.label(), "R1");
    }
}
