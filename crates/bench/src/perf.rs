//! The performance-observability harness behind the repo-root
//! `BENCH_<n>.json` trajectory.
//!
//! Three pieces:
//!
//! * **Macro-benchmark suite** — [`run_perf_suite`] executes a fixed,
//!   seeded set of representative workloads (detectors, repairs, an ML
//!   fit, one end-to-end S1 scenario) `repeats` times each and folds the
//!   measurements into a [`BenchReport`]: per-repeat wall times,
//!   throughput in cells/second, allocation deltas from
//!   [`rein_telemetry::perf`]'s counting allocator, and a span-path
//!   profile of everything that ran inside the benchmark.
//! * **Deterministic report shape** — benchmarks are sorted by id, span
//!   profiles by path, and [`BenchReport::normalized`] blanks the
//!   explicitly-volatile measurement fields so two same-seed runs can be
//!   compared byte-for-byte on structure.
//! * **Regression comparator** — [`compare_reports`] pairs two reports
//!   by benchmark id and runs the paired Wilcoxon signed-rank test from
//!   `rein-stats` over the repeat timings: a benchmark regresses when
//!   the test rejects at `alpha` *and* the median slowdown exceeds the
//!   configured ratio. [`comparator_self_test`] proves the gate works by
//!   injecting an artificial 2× slowdown.

use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use rein_core::{eval_classifier, run_repair, DetectorHarness, Scenario, VersionTable};
use rein_datasets::{DatasetId, GeneratedDataset, Params};
use rein_detect::DetectorKind;
use rein_ml::model::ClassifierKind;
use rein_repair::RepairKind;
use rein_stats::wilcoxon::{wilcoxon_signed_rank, WilcoxonError};
use rein_telemetry::perf::{self, SpanPathStat};

/// Schema version stamped into every report.
pub const REPORT_SCHEMA: u32 = 1;

/// Environment echo: enough to tell whether two reports are comparable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEnv {
    /// Dataset scale factor the suite ran at.
    pub scale: f64,
    /// Repeats per benchmark.
    pub repeats: u32,
    /// Master seed of the suite.
    pub seed: u64,
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Worker threads rayon fan-outs may use.
    pub threads: u32,
    /// `true` when the host reported a single hardware thread
    /// (`available_parallelism() == 1`): parallel speedup numbers from
    /// such a run are meaningless and the comparator warns loudly when
    /// one side of a comparison was single-core. Defaults to `false`
    /// for reports written before the field existed.
    #[serde(default)]
    pub single_core: bool,
    /// Whether the counting global allocator was installed (allocation
    /// numbers are all-zero when it was not).
    pub alloc_tracking: bool,
}

/// Allocation measurements of one benchmark.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocReport {
    /// Allocation calls per repeat.
    pub allocs_per_repeat: Vec<u64>,
    /// Bytes requested per repeat.
    pub bytes_per_repeat: Vec<u64>,
    /// Peak outstanding bytes observed across the whole benchmark
    /// (after a warm-up reset).
    pub peak_bytes: u64,
}

/// Derived timing statistics over the repeats, in milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingStats {
    /// Median repeat time.
    pub median_ms: f64,
    /// Mean repeat time.
    pub mean_ms: f64,
    /// Fastest repeat.
    pub min_ms: f64,
    /// Slowest repeat.
    pub max_ms: f64,
}

/// One macro-benchmark's measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkResult {
    /// Stable benchmark id, `area/workload/dataset`.
    pub id: String,
    /// Cells (rows × columns) the workload processes per repeat.
    pub cells: u64,
    /// Wall-clock time of every repeat, in order.
    pub repeat_ms: Vec<f64>,
    /// Derived timing statistics.
    pub timing: TimingStats,
    /// Throughput at the median repeat: `cells / median seconds`.
    pub cells_per_sec: f64,
    /// Allocation activity.
    pub alloc: AllocReport,
    /// Span-path profile of everything that ran inside the repeats.
    pub span_profile: Vec<SpanPathStat>,
}

/// One point of the parallel-grid speedup curve: the detect+repair grid
/// timed under a scoped rayon pool of exactly `threads` workers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadAxisPoint {
    /// Scoped pool width the grid ran under.
    pub threads: u32,
    /// Wall-clock time of every repeat, in order, milliseconds.
    pub repeat_ms: Vec<f64>,
    /// Derived timing statistics.
    pub timing: TimingStats,
    /// `median(1 thread) / median(this width)`; >1 means the wider pool
    /// beat the serial grid.
    pub speedup: f64,
}

/// A full perf baseline: the durable JSON artefact at the repo root.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// [`REPORT_SCHEMA`].
    pub schema: u32,
    /// Binary that produced the report.
    pub created_by: String,
    /// Environment echo.
    pub env: BenchEnv,
    /// Measurements, sorted by benchmark id.
    pub benchmarks: Vec<BenchmarkResult>,
    /// Parallel-grid speedup curve over pool widths (empty in reports
    /// predating the threads axis, hence the serde default).
    #[serde(default)]
    pub thread_axis: Vec<ThreadAxisPoint>,
}

fn timing_stats(xs: &[f64]) -> TimingStats {
    if xs.is_empty() {
        return TimingStats { median_ms: 0.0, mean_ms: 0.0, min_ms: 0.0, max_ms: 0.0 };
    }
    TimingStats {
        median_ms: rein_stats::median(xs),
        mean_ms: xs.iter().sum::<f64>() / xs.len() as f64,
        min_ms: xs.iter().fold(f64::INFINITY, |a, &b| a.min(b)),
        max_ms: xs.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
    }
}

impl BenchmarkResult {
    /// Recomputes the derived fields from `repeat_ms` and `cells`.
    pub fn refinalize(&mut self) {
        self.timing = timing_stats(&self.repeat_ms);
        self.cells_per_sec = if self.timing.median_ms > 0.0 {
            self.cells as f64 / (self.timing.median_ms / 1e3)
        } else {
            0.0
        };
    }
}

impl BenchReport {
    /// Serializes to pretty JSON (the on-disk format).
    pub fn to_json(&self) -> String {
        // audit:allow(panic, serializing plain owned data cannot fail)
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parses a report back from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Writes the report to `path`, creating parent directories.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json() + "\n")
    }

    /// Loads a report from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("parse {}: {e}", path.display()))
    }

    /// A copy with every volatile measurement blanked: repeat times,
    /// derived timing statistics, throughput, allocation numbers, and
    /// span-profile durations. What survives — benchmark ids, cell
    /// counts, repeat-vector lengths, span paths and counts, the
    /// environment echo — must be byte-identical across same-seed runs.
    pub fn normalized(&self) -> BenchReport {
        let mut out = self.clone();
        for b in &mut out.benchmarks {
            b.repeat_ms = vec![0.0; b.repeat_ms.len()];
            b.timing = TimingStats { median_ms: 0.0, mean_ms: 0.0, min_ms: 0.0, max_ms: 0.0 };
            b.cells_per_sec = 0.0;
            b.alloc.allocs_per_repeat = vec![0; b.alloc.allocs_per_repeat.len()];
            b.alloc.bytes_per_repeat = vec![0; b.alloc.bytes_per_repeat.len()];
            b.alloc.peak_bytes = 0;
            for s in &mut b.span_profile {
                s.total_ms = 0.0;
                s.self_ms = 0.0;
                s.max_ms = 0.0;
            }
        }
        for p in &mut out.thread_axis {
            p.repeat_ms = vec![0.0; p.repeat_ms.len()];
            p.timing = TimingStats { median_ms: 0.0, mean_ms: 0.0, min_ms: 0.0, max_ms: 0.0 };
            p.speedup = 0.0;
        }
        out
    }
}

/// The first free `BENCH_<n>.json` slot under `dir` — the next point of
/// the repo-root perf trajectory.
pub fn next_bench_path(dir: &Path) -> PathBuf {
    for n in 0..10_000u32 {
        let candidate = dir.join(format!("BENCH_{n}.json"));
        if !candidate.exists() {
            return candidate;
        }
    }
    dir.join("BENCH_overflow.json")
}

/// One macro-benchmark: a seeded workload over a pre-generated dataset.
/// Dataset generation happens once, outside the timed region; the
/// closure re-runs the workload itself on every repeat.
struct MacroBench {
    id: &'static str,
    ds: GeneratedDataset,
    seed: u64,
    run: fn(&GeneratedDataset, u64),
}

fn bench_detector(kind: DetectorKind) -> fn(&GeneratedDataset, u64) {
    // Monomorphised per detector through a small dispatch table so the
    // suite stays a list of plain fn pointers.
    match kind {
        DetectorKind::MvDetector => |ds, seed| {
            DetectorHarness::new(ds, 100, seed).run(ds, DetectorKind::MvDetector);
        },
        DetectorKind::Sd => |ds, seed| {
            DetectorHarness::new(ds, 100, seed).run(ds, DetectorKind::Sd);
        },
        DetectorKind::Katara => |ds, seed| {
            DetectorHarness::new(ds, 100, seed).run(ds, DetectorKind::Katara);
        },
        _ => |ds, seed| {
            DetectorHarness::new(ds, 100, seed).run(ds, DetectorKind::Raha);
        },
    }
}

fn bench_repair_mean_mode(ds: &GeneratedDataset, seed: u64) {
    run_repair(ds, &ds.mask, RepairKind::ImputeMeanMode, seed);
}

fn bench_repair_miss_forest(ds: &GeneratedDataset, seed: u64) {
    run_repair(ds, &ds.mask, RepairKind::MissMix, seed);
}

fn bench_ml_fit(ds: &GeneratedDataset, seed: u64) {
    let version = VersionTable::identity(ds.dirty.clone());
    eval_classifier(Scenario::S1, ds, &version, ClassifierKind::DecisionTree, 1, seed);
}

fn bench_e2e_s1(ds: &GeneratedDataset, seed: u64) {
    // The full pipeline of the paper's S1 evaluation: detect with an
    // ensemble detector, repair the flagged cells, fit and score a model
    // on the repaired version.
    let harness = DetectorHarness::new(ds, 100, seed);
    let detection = harness.run(ds, DetectorKind::MaxEntropy);
    let repair = run_repair(ds, &detection.mask, RepairKind::ImputeMeanMode, seed);
    if let Some(version) = repair.version {
        eval_classifier(Scenario::S1, ds, &version, ClassifierKind::DecisionTree, 1, seed);
    }
}

/// The fixed suite: representative detectors, repairs, one ML fit and
/// one end-to-end S1 scenario. Ids are stable across PRs — the
/// comparator matches on them.
fn suite(scale: f64, seed: u64) -> Vec<MacroBench> {
    let ds_of = |id: DatasetId, stream: u64| {
        id.generate(&Params::scaled(scale, rein_data::rng::derive_seed(seed, stream)))
    };
    vec![
        MacroBench {
            id: "detect/mv_detector/beers",
            ds: ds_of(DatasetId::Beers, 1),
            seed,
            run: bench_detector(DetectorKind::MvDetector),
        },
        MacroBench {
            id: "detect/sd/nasa",
            ds: ds_of(DatasetId::Nasa, 2),
            seed,
            run: bench_detector(DetectorKind::Sd),
        },
        MacroBench {
            id: "detect/katara/beers",
            ds: ds_of(DatasetId::Beers, 3),
            seed,
            run: bench_detector(DetectorKind::Katara),
        },
        MacroBench {
            id: "detect/raha/beers",
            ds: ds_of(DatasetId::Beers, 4),
            seed,
            run: bench_detector(DetectorKind::Raha),
        },
        MacroBench {
            id: "repair/mean_mode/beers",
            ds: ds_of(DatasetId::Beers, 5),
            seed,
            run: bench_repair_mean_mode,
        },
        MacroBench {
            id: "repair/miss_forest/beers",
            ds: ds_of(DatasetId::Beers, 6),
            seed,
            run: bench_repair_miss_forest,
        },
        MacroBench {
            id: "ml/decision_tree_s1/breast_cancer",
            ds: ds_of(DatasetId::BreastCancer, 7),
            seed,
            run: bench_ml_fit,
        },
        MacroBench { id: "e2e/s1/beers", ds: ds_of(DatasetId::Beers, 8), seed, run: bench_e2e_s1 },
    ]
}

fn measure(bench: &MacroBench, repeats: usize) -> BenchmarkResult {
    // Warm-up pass: populates lazy statics and caches, and its spans are
    // discarded so the profile covers exactly the timed repeats.
    (bench.run)(&bench.ds, bench.seed);
    drop(rein_telemetry::drain_spans());
    perf::reset_alloc_peak();

    let mut repeat_ms = Vec::with_capacity(repeats);
    let mut allocs_per_repeat = Vec::with_capacity(repeats);
    let mut bytes_per_repeat = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        // A root span per repeat keeps the profile paths identical no
        // matter what spans the caller has open.
        let root = rein_telemetry::span_under(format!("bench:{}", bench.id), None);
        let before = perf::alloc_snapshot();
        let sw = perf::Stopwatch::start();
        (bench.run)(&bench.ds, bench.seed);
        repeat_ms.push(sw.elapsed_ms());
        let delta = perf::alloc_snapshot().since(&before);
        drop(root);
        allocs_per_repeat.push(delta.allocs);
        bytes_per_repeat.push(delta.bytes_allocated);
    }
    let span_profile = perf::span_profile(&rein_telemetry::drain_spans());
    let peak_bytes = perf::alloc_snapshot().peak_bytes;

    let cells = (bench.ds.dirty.n_rows() * bench.ds.dirty.n_cols()) as u64;
    let mut result = BenchmarkResult {
        id: bench.id.to_string(),
        cells,
        repeat_ms,
        timing: timing_stats(&[]),
        cells_per_sec: 0.0,
        alloc: AllocReport { allocs_per_repeat, bytes_per_repeat, peak_bytes },
        span_profile,
    };
    result.refinalize();
    result
}

/// Measures the parallel-grid speedup curve: the controller's
/// detect+repair grid on a classification dataset, timed `repeats`
/// times under a scoped pool of each requested width. A `1` anchor is
/// always measured (speedups are relative to the serial grid); widths
/// are deduplicated and sorted so the curve reads monotonically.
pub fn run_thread_axis(
    scale: f64,
    repeats: usize,
    seed: u64,
    widths: &[u32],
) -> Vec<ThreadAxisPoint> {
    let ds = DatasetId::BreastCancer
        .generate(&Params::scaled(scale, rein_data::rng::derive_seed(seed, 9)));
    let ctrl = rein_core::Controller { label_budget: 50, seed, ..Default::default() };
    let mut widths: Vec<u32> = widths.iter().copied().filter(|&w| w > 0).collect();
    widths.push(1);
    widths.sort_unstable();
    widths.dedup();
    let mut points: Vec<ThreadAxisPoint> = Vec::new();
    for &w in &widths {
        // audit:allow(panic, the vendored pool builder is infallible for positive widths)
        let pool = rayon::ThreadPoolBuilder::new().num_threads(w as usize).build().expect("pool");
        // Warm-up pass outside the timed region, like `measure`.
        pool.install(|| ctrl.run_grid(&ds, &[], 0));
        let mut repeat_ms = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let sw = perf::Stopwatch::start();
            pool.install(|| ctrl.run_grid(&ds, &[], 0));
            repeat_ms.push(sw.elapsed_ms());
        }
        let timing = timing_stats(&repeat_ms);
        points.push(ThreadAxisPoint { threads: w, repeat_ms, timing, speedup: 0.0 });
    }
    let serial = points.iter().find(|p| p.threads == 1).map(|p| p.timing.median_ms).unwrap_or(0.0);
    for p in &mut points {
        p.speedup = if p.timing.median_ms > 0.0 { serial / p.timing.median_ms } else { 0.0 };
    }
    points
}

/// Runs the whole macro suite (plus, when `thread_widths` is non-empty,
/// the parallel-grid threads axis) and assembles the report.
/// Whether the host reports exactly one hardware thread. Stamped into
/// the report's env echo so `bench_compare` can warn when a comparison
/// mixes a single-core run (no real parallelism, thread-axis points all
/// equal) with a multi-core one.
pub fn single_core_host() -> bool {
    std::thread::available_parallelism().map(|n| n.get() == 1).unwrap_or(false)
}

/// Deterministic given `(scale, repeats, seed)` up to the volatile
/// measurement fields — see [`BenchReport::normalized`].
pub fn run_perf_suite(
    created_by: &str,
    scale: f64,
    repeats: usize,
    seed: u64,
    thread_widths: &[u32],
) -> BenchReport {
    let mut benchmarks: Vec<BenchmarkResult> =
        suite(scale, seed).iter().map(|b| measure(b, repeats)).collect();
    benchmarks.sort_by(|a, b| a.id.cmp(&b.id));
    let thread_axis = if thread_widths.is_empty() {
        Vec::new()
    } else {
        run_thread_axis(scale, repeats, seed, thread_widths)
    };
    BenchReport {
        schema: REPORT_SCHEMA,
        created_by: created_by.to_string(),
        env: BenchEnv {
            scale,
            repeats: repeats as u32,
            seed,
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            threads: crate::worker_threads(),
            single_core: single_core_host(),
            alloc_tracking: perf::alloc_tracking_active(),
        },
        benchmarks,
        thread_axis,
    }
}

// ---------------------------------------------------------------------
// Regression comparator
// ---------------------------------------------------------------------

/// Gate configuration: both conditions must hold for a regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareConfig {
    /// Wilcoxon significance level.
    pub alpha: f64,
    /// Median slowdown ratio above which a significant shift counts as
    /// a regression (1.10 = 10% slower); the reciprocal bounds
    /// improvements.
    pub min_ratio: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig { alpha: 0.05, min_ratio: 1.10 }
    }
}

/// Outcome of one benchmark's baseline-vs-current comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Significantly slower by more than the threshold ratio.
    Regression,
    /// Significantly faster by more than the reciprocal threshold.
    Improvement,
    /// All paired differences were zero.
    Unchanged,
    /// No significant shift, or a significant one inside the ratio band.
    Similar,
    /// Benchmark exists only in the baseline report.
    OnlyInBaseline,
    /// Benchmark exists only in the current report.
    OnlyInCurrent,
}

/// One row of the comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchComparison {
    /// Benchmark id.
    pub id: String,
    /// Baseline median, milliseconds (0 when missing).
    pub baseline_median_ms: f64,
    /// Current median, milliseconds (0 when missing).
    pub current_median_ms: f64,
    /// `current / baseline` medians; >1 is slower.
    pub ratio: f64,
    /// Two-tailed Wilcoxon p-value over the paired repeat timings
    /// (`None` when the test is undefined: missing side, no pairs, or
    /// all-zero differences).
    pub p_value: Option<f64>,
    /// Paired repeats that entered the test.
    pub n_pairs: usize,
    /// The gate's verdict.
    pub verdict: Verdict,
}

/// The full comparison of two reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompareReport {
    /// Significance level used.
    pub alpha: f64,
    /// Slowdown ratio used.
    pub threshold_ratio: f64,
    /// Per-benchmark rows, sorted by id.
    pub comparisons: Vec<BenchComparison>,
    /// Number of [`Verdict::Regression`] rows.
    pub regressions: usize,
}

fn compare_one(
    id: &str,
    baseline: Option<&BenchmarkResult>,
    current: Option<&BenchmarkResult>,
    cfg: &CompareConfig,
) -> BenchComparison {
    let (base, cur) = match (baseline, current) {
        (Some(b), None) => {
            return BenchComparison {
                id: id.to_string(),
                baseline_median_ms: b.timing.median_ms,
                current_median_ms: 0.0,
                ratio: 0.0,
                p_value: None,
                n_pairs: 0,
                verdict: Verdict::OnlyInBaseline,
            }
        }
        (None, Some(c)) => {
            return BenchComparison {
                id: id.to_string(),
                baseline_median_ms: 0.0,
                current_median_ms: c.timing.median_ms,
                ratio: 0.0,
                p_value: None,
                n_pairs: 0,
                verdict: Verdict::OnlyInCurrent,
            }
        }
        (Some(b), Some(c)) => (b, c),
        // audit:allow(panic, every compared id comes from the union of the two reports)
        (None, None) => unreachable!("comparison id from neither report"),
    };
    let n = base.repeat_ms.len().min(cur.repeat_ms.len());
    let ratio = if base.timing.median_ms > 0.0 {
        cur.timing.median_ms / base.timing.median_ms
    } else {
        f64::INFINITY
    };
    let (p_value, verdict) = match wilcoxon_signed_rank(&base.repeat_ms[..n], &cur.repeat_ms[..n]) {
        Err(WilcoxonError::AllZeroDifferences) => (None, Verdict::Unchanged),
        Err(WilcoxonError::LengthMismatch) => (None, Verdict::Similar),
        Ok(r) => {
            let verdict = if r.p_value < cfg.alpha && ratio > cfg.min_ratio {
                Verdict::Regression
            } else if r.p_value < cfg.alpha && ratio < 1.0 / cfg.min_ratio {
                Verdict::Improvement
            } else {
                Verdict::Similar
            };
            (Some(r.p_value), verdict)
        }
    };
    BenchComparison {
        id: id.to_string(),
        baseline_median_ms: base.timing.median_ms,
        current_median_ms: cur.timing.median_ms,
        ratio,
        p_value,
        n_pairs: n,
        verdict,
    }
}

/// Whether two reports' thread-axis rows are comparable at all: the
/// grids must have run under the same worker-pool ceiling on the same
/// core class. Across differing core counts a `threads=4` point means
/// different hardware parallelism on each side, so a ratio between them
/// measures the machines, not the code.
pub fn thread_axes_comparable(a: &BenchEnv, b: &BenchEnv) -> bool {
    a.threads == b.threads && a.single_core == b.single_core
}

/// A thread-axis point rendered as a pseudo-benchmark so the Wilcoxon
/// gate can pair it (`parallel-grid/threads/<w>`).
fn thread_axis_benchmark(p: &ThreadAxisPoint) -> BenchmarkResult {
    BenchmarkResult {
        id: format!("parallel-grid/threads/{}", p.threads),
        cells: 0,
        repeat_ms: p.repeat_ms.clone(),
        timing: p.timing.clone(),
        cells_per_sec: 0.0,
        alloc: AllocReport {
            allocs_per_repeat: Vec::new(),
            bytes_per_repeat: Vec::new(),
            peak_bytes: 0,
        },
        span_profile: Vec::new(),
    }
}

/// Pairs two reports by benchmark id and applies the Wilcoxon gate.
/// Thread-axis points join the comparison as `parallel-grid/threads/<w>`
/// rows — but only when [`thread_axes_comparable`] holds; across
/// differing core counts they are omitted entirely rather than reported
/// as hardware-flavoured regressions.
pub fn compare_reports(
    baseline: &BenchReport,
    current: &BenchReport,
    cfg: &CompareConfig,
) -> CompareReport {
    let (base_axis, cur_axis): (Vec<BenchmarkResult>, Vec<BenchmarkResult>) =
        if thread_axes_comparable(&baseline.env, &current.env) {
            (
                baseline.thread_axis.iter().map(thread_axis_benchmark).collect(),
                current.thread_axis.iter().map(thread_axis_benchmark).collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
    let base_all: Vec<&BenchmarkResult> = baseline.benchmarks.iter().chain(&base_axis).collect();
    let cur_all: Vec<&BenchmarkResult> = current.benchmarks.iter().chain(&cur_axis).collect();
    let mut ids: Vec<&str> = base_all.iter().chain(cur_all.iter()).map(|b| b.id.as_str()).collect();
    ids.sort_unstable();
    ids.dedup();
    let find =
        |rs: &[&BenchmarkResult], id: &str| -> Option<usize> { rs.iter().position(|b| b.id == id) };
    let comparisons: Vec<BenchComparison> = ids
        .iter()
        .map(|id| {
            compare_one(
                id,
                find(&base_all, id).map(|i| base_all[i]),
                find(&cur_all, id).map(|i| cur_all[i]),
                cfg,
            )
        })
        .collect();
    let regressions = comparisons.iter().filter(|c| c.verdict == Verdict::Regression).count();
    CompareReport { alpha: cfg.alpha, threshold_ratio: cfg.min_ratio, comparisons, regressions }
}

/// Renders the comparison as the fixed-width table the `bench-compare`
/// binary prints.
pub fn render_comparison(report: &CompareReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<36} {:>12} {:>12} {:>8} {:>10} {:>14}\n",
        "benchmark", "base ms", "curr ms", "ratio", "p", "verdict"
    ));
    for c in &report.comparisons {
        let p = c.p_value.map_or("-".to_string(), |p| format!("{p:.4}"));
        out.push_str(&format!(
            "{:<36} {:>12.3} {:>12.3} {:>8.3} {:>10} {:>14}\n",
            c.id,
            c.baseline_median_ms,
            c.current_median_ms,
            c.ratio,
            p,
            format!("{:?}", c.verdict)
        ));
    }
    out.push_str(&format!(
        "\n{} regression(s) at alpha={}, slowdown threshold {:.0}%\n",
        report.regressions,
        report.alpha,
        (report.threshold_ratio - 1.0) * 100.0
    ));
    out
}

/// A small synthetic report for the comparator self-test: three
/// benchmarks, `repeats` untied repeat timings each (distinct jitters so
/// the exact Wilcoxon path applies).
fn synthetic_report(repeats: usize) -> BenchReport {
    const JITTER: [f64; 8] = [0.0, 1.0, 3.0, 2.0, 5.0, 4.0, 7.0, 6.0];
    let bench = |id: &str, base_ms: f64| {
        let repeat_ms: Vec<f64> =
            (0..repeats).map(|i| base_ms * (1.0 + 0.002 * JITTER[i % JITTER.len()])).collect();
        let mut b = BenchmarkResult {
            id: id.to_string(),
            cells: 10_000,
            repeat_ms,
            timing: timing_stats(&[]),
            cells_per_sec: 0.0,
            alloc: AllocReport {
                allocs_per_repeat: vec![0; repeats],
                bytes_per_repeat: vec![0; repeats],
                peak_bytes: 0,
            },
            span_profile: Vec::new(),
        };
        b.refinalize();
        b
    };
    BenchReport {
        schema: REPORT_SCHEMA,
        created_by: "self-test".to_string(),
        env: BenchEnv {
            scale: 0.0,
            repeats: repeats as u32,
            seed: 0,
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            threads: crate::worker_threads(),
            single_core: false,
            alloc_tracking: false,
        },
        benchmarks: vec![
            bench("selftest/alpha", 40.0),
            bench("selftest/bravo", 100.0),
            bench("selftest/charlie", 250.0),
        ],
        thread_axis: Vec::new(),
    }
}

/// Proves the regression gate works end to end:
///
/// 1. a report compared against itself yields zero regressions
///    (all-zero differences → `Unchanged`), and
/// 2. injecting an artificial 2× slowdown into exactly one benchmark is
///    flagged as a significant regression (Wilcoxon p < 0.05) while the
///    untouched benchmarks stay clean.
///
/// Returns a human-readable summary on success.
pub fn comparator_self_test() -> Result<String, String> {
    let cfg = CompareConfig::default();
    let base = synthetic_report(8);

    let identical = compare_reports(&base, &base, &cfg);
    if identical.regressions != 0 {
        return Err("self-compare reported regressions on identical reports".to_string());
    }
    if !identical.comparisons.iter().all(|c| c.verdict == Verdict::Unchanged) {
        return Err(format!(
            "self-compare verdicts must all be Unchanged, got {:?}",
            identical.comparisons.iter().map(|c| c.verdict).collect::<Vec<_>>()
        ));
    }

    let target = "selftest/bravo";
    let mut slowed = base.clone();
    for b in &mut slowed.benchmarks {
        if b.id == target {
            for v in &mut b.repeat_ms {
                *v *= 2.0;
            }
            b.refinalize();
        }
    }
    let cmp = compare_reports(&base, &slowed, &cfg);
    let flagged: Vec<&BenchComparison> =
        cmp.comparisons.iter().filter(|c| c.verdict == Verdict::Regression).collect();
    if flagged.len() != 1 || flagged[0].id != target {
        return Err(format!(
            "expected exactly one regression on {target}, got {:?}",
            flagged.iter().map(|c| c.id.as_str()).collect::<Vec<_>>()
        ));
    }
    let p = flagged[0].p_value.unwrap_or(1.0);
    if p >= 0.05 {
        return Err(format!("injected 2x slowdown not significant: p = {p}"));
    }
    if (flagged[0].ratio - 2.0).abs() > 0.01 {
        return Err(format!("injected 2x slowdown measured ratio {}", flagged[0].ratio));
    }
    Ok(format!(
        "self-test passed: identical reports -> 0 regressions; \
         injected 2x slowdown on {target} flagged with p = {p:.4}, ratio = {:.2}",
        flagged[0].ratio
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_stats_basic() {
        let t = timing_stats(&[3.0, 1.0, 2.0]);
        assert_eq!(t.median_ms, 2.0);
        assert_eq!(t.min_ms, 1.0);
        assert_eq!(t.max_ms, 3.0);
        assert!((t.mean_ms - 2.0).abs() < 1e-12);
    }

    #[test]
    fn comparator_gate_requires_both_conditions() {
        let cfg = CompareConfig::default();
        let base = synthetic_report(8);
        // A 5% shift is significant (consistent sign) but inside the
        // ratio band: Similar, not Regression.
        let mut slightly = base.clone();
        for b in &mut slightly.benchmarks {
            for v in &mut b.repeat_ms {
                *v *= 1.05;
            }
            b.refinalize();
        }
        let cmp = compare_reports(&base, &slightly, &cfg);
        assert_eq!(cmp.regressions, 0);
        assert!(cmp.comparisons.iter().all(|c| c.verdict == Verdict::Similar));
        // A 2x speedup is an Improvement, never a regression.
        let mut faster = base.clone();
        for b in &mut faster.benchmarks {
            for v in &mut b.repeat_ms {
                *v *= 0.5;
            }
            b.refinalize();
        }
        let cmp = compare_reports(&base, &faster, &cfg);
        assert_eq!(cmp.regressions, 0);
        assert!(cmp.comparisons.iter().all(|c| c.verdict == Verdict::Improvement));
    }

    #[test]
    fn comparator_handles_disjoint_benchmark_sets() {
        let cfg = CompareConfig::default();
        let base = synthetic_report(8);
        let mut renamed = base.clone();
        renamed.benchmarks[0].id = "selftest/delta".to_string();
        let cmp = compare_reports(&base, &renamed, &cfg);
        let verdict_of = |id: &str| cmp.comparisons.iter().find(|c| c.id == id).unwrap().verdict;
        assert_eq!(verdict_of("selftest/alpha"), Verdict::OnlyInBaseline);
        assert_eq!(verdict_of("selftest/delta"), Verdict::OnlyInCurrent);
        assert_eq!(cmp.regressions, 0);
    }

    #[test]
    fn thread_axis_rows_compare_only_on_matching_core_counts() {
        let cfg = CompareConfig::default();
        let point = |ms: f64| {
            const JITTER: [f64; 8] = [0.0, 1.0, 3.0, 2.0, 5.0, 4.0, 7.0, 6.0];
            let repeat_ms: Vec<f64> = JITTER.iter().map(|j| ms * (1.0 + 0.002 * j)).collect();
            let timing = timing_stats(&repeat_ms);
            ThreadAxisPoint { threads: 4, repeat_ms, timing, speedup: 1.0 }
        };
        let mut base = synthetic_report(8);
        base.thread_axis = vec![point(10.0)];
        let mut cur = base.clone();
        cur.thread_axis = vec![point(25.0)];

        // Same env: the axis row joins the comparison and the 2.5x
        // slowdown is flagged.
        let cmp = compare_reports(&base, &cur, &cfg);
        let axis = cmp
            .comparisons
            .iter()
            .find(|c| c.id == "parallel-grid/threads/4")
            .expect("axis row compared");
        assert_eq!(axis.verdict, Verdict::Regression);

        // Differing core counts: the axis rows vanish from the
        // comparison instead of reporting a hardware-flavoured verdict.
        let mut other_host = cur.clone();
        other_host.env.threads = 16;
        let cmp = compare_reports(&base, &other_host, &cfg);
        assert!(
            cmp.comparisons.iter().all(|c| !c.id.starts_with("parallel-grid/threads/")),
            "thread-axis rows must be omitted across core counts: {:?}",
            cmp.comparisons.iter().map(|c| c.id.as_str()).collect::<Vec<_>>()
        );
        // A single-core host on one side is the same incomparability.
        let mut single = cur.clone();
        single.env.single_core = true;
        assert!(!thread_axes_comparable(&base.env, &single.env));
    }

    #[test]
    fn report_roundtrips_and_normalizes() {
        let base = synthetic_report(4);
        let back = BenchReport::from_json(&base.to_json()).unwrap();
        assert_eq!(back, base);
        let norm = base.normalized();
        assert_eq!(norm.benchmarks.len(), base.benchmarks.len());
        for b in &norm.benchmarks {
            assert!(b.repeat_ms.iter().all(|&v| v == 0.0));
            assert_eq!(b.timing.median_ms, 0.0);
        }
        // Normalization is idempotent and id-preserving.
        assert_eq!(norm.normalized(), norm);
    }

    #[test]
    fn self_test_passes() {
        let summary = comparator_self_test().expect("comparator self-test");
        assert!(summary.contains("2x slowdown"));
    }

    #[test]
    fn next_bench_path_skips_existing() {
        let dir = std::env::temp_dir().join("rein_bench_path_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p0 = next_bench_path(&dir);
        assert!(p0.ends_with("BENCH_0.json"));
        std::fs::write(&p0, "{}").unwrap();
        assert!(next_bench_path(&dir).ends_with("BENCH_1.json"));
        std::fs::remove_file(&p0).unwrap();
    }
}
