//! Artifact ingestion: turning the repo's observability files into
//! [`LedgerEntry`] candidates.
//!
//! Three artifact classes are understood:
//!
//! * **Run manifests** — `artifacts/telemetry/*.json`, parsed through
//!   the typed [`RunManifest`] (both `full` and `summary` modes, and
//!   pre-mode files via the serde defaults).
//! * **Bench reports** — `BENCH_*.json` at the repo root, parsed
//!   generically so schema growth never breaks ingestion.
//! * **Audit reports** — `artifacts/audit/report.json`.
//! * **Trace exports** — `artifacts/trace/*.cells.json`, the typed
//!   per-cell cost tables written by `rein_trace` (the Chrome JSON and
//!   flamegraph SVG siblings are render artifacts, not index input).
//!
//! Ingestion is pure with respect to the index: it reads the repo and
//! returns candidates; [`LedgerIndex::apply`](crate::LedgerIndex::apply)
//! decides what is new. Scans are sorted so candidate order is
//! deterministic regardless of directory iteration order.

use std::collections::BTreeMap;
use std::path::Path;

use rein_telemetry::RunManifest;
use serde_json::Value;

use crate::hash::{content_key, fnv1a64, run_identity};
use crate::index::{EntrySummary, FailureTaxonomy, LedgerEntry};

/// Span-name prefixes that name a grid strategy (`phase:strategy`).
const STRATEGY_PHASES: [&str; 4] = ["detect", "repair", "model", "ml"];

/// Whether a span name is a strategy invocation (`detect:raha`) rather
/// than an internal span (`phase:setup`, `detect:features:fit`).
fn is_strategy_span(name: &str) -> bool {
    match name.split_once(':') {
        Some((phase, rest)) => {
            STRATEGY_PHASES.contains(&phase) && !rest.is_empty() && !rest.contains(':')
        }
        None => false,
    }
}

/// The sorted, deduplicated strategy set a manifest exercised: strategy
/// spans (from the rollup in summary mode — it covers every name — and
/// the span stream otherwise) plus every failed cell's `phase:strategy`.
fn manifest_strategies(manifest: &RunManifest) -> Vec<String> {
    let mut set: Vec<String> = Vec::new();
    let mut push = |name: String| {
        if !set.contains(&name) {
            set.push(name);
        }
    };
    for rollup in &manifest.span_rollup {
        if is_strategy_span(&rollup.name) {
            push(rollup.name.clone());
        }
    }
    for span in &manifest.spans {
        if is_strategy_span(&span.name) {
            push(span.name.clone());
        }
    }
    for failure in &manifest.failures {
        push(format!("{}:{}", failure.phase, failure.strategy));
    }
    set.sort();
    set
}

/// Builds the ledger entry for one run manifest.
pub fn manifest_entry(manifest: &RunManifest, source: &str) -> LedgerEntry {
    let strategies = manifest_strategies(manifest);
    let key = content_key(&run_identity(
        "run_manifest",
        &manifest.binary,
        manifest.config.seed,
        manifest.config.scale,
        &strategies,
    ));
    let (spans, span_names) = if manifest.span_rollup.is_empty() {
        let mut names: Vec<&str> = manifest.spans.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        (manifest.spans.len() as u64, names.len() as u64)
    } else {
        // The rollup covers the complete stream, sampled or not.
        let total: u64 = manifest.span_rollup.iter().map(|r| r.count).sum();
        (total, manifest.span_rollup.len() as u64)
    };
    let mut failures = FailureTaxonomy::default();
    for f in &manifest.failures {
        failures.count(&f.cause);
    }
    LedgerEntry {
        key,
        kind: "run_manifest".to_string(),
        source: source.to_string(),
        bin: manifest.binary.clone(),
        seed: manifest.config.seed,
        scale: manifest.config.scale,
        threads: manifest.config.threads,
        mode: manifest.mode.clone(),
        strategies,
        generation: 0,
        summary: EntrySummary {
            spans,
            span_names,
            failures,
            cells_scanned: manifest.counters.get("cells_scanned").copied().unwrap_or(0),
            benchmarks: 0,
            violations: 0,
        },
        bench_medians: BTreeMap::new(),
    }
}

/// Map-field lookup on a generic JSON value.
fn get<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    value.as_map()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn num_f64(value: &Value) -> Option<f64> {
    match value {
        Value::I64(n) => Some(*n as f64),
        Value::U64(n) => Some(*n as f64),
        Value::F64(n) => Some(*n),
        _ => None,
    }
}

fn num_u64(value: &Value) -> Option<u64> {
    match value {
        Value::I64(n) => u64::try_from(*n).ok(),
        Value::U64(n) => Some(*n),
        _ => None,
    }
}

/// Builds the ledger entry for one `BENCH_*.json` perf report. Parsed
/// generically: the identity is (creating bin, seed, scale, sorted
/// benchmark ids, thread-axis widths) — timings are deliberately not
/// part of the key, so a re-run of the same suite maps to the same
/// entry, while adding or widening the threads axis measures something
/// new and registers as a new entry.
pub fn bench_entry(report: &Value, source: &str) -> Result<LedgerEntry, String> {
    let bin = get(report, "created_by")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{source}: missing created_by"))?
        .to_string();
    let env = get(report, "env").ok_or_else(|| format!("{source}: missing env"))?;
    let seed = get(env, "seed").and_then(num_u64).unwrap_or(0);
    let scale = get(env, "scale").and_then(num_f64).unwrap_or(0.0);
    let threads =
        get(env, "threads").and_then(num_u64).and_then(|t| u32::try_from(t).ok()).unwrap_or(0);
    let benchmarks = get(report, "benchmarks")
        .and_then(Value::as_seq)
        .ok_or_else(|| format!("{source}: missing benchmarks"))?;
    let mut ids: Vec<String> = Vec::new();
    let mut bench_medians: BTreeMap<String, f64> = BTreeMap::new();
    for b in benchmarks {
        let id = get(b, "id")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{source}: benchmark without id"))?
            .to_string();
        if let Some(median) = get(b, "timing").and_then(|t| get(t, "median_ms")).and_then(num_f64) {
            bench_medians.insert(id.clone(), median);
        }
        ids.push(id);
    }
    if let Some(axis) = get(report, "thread_axis").and_then(Value::as_seq) {
        for point in axis {
            let Some(width) = get(point, "threads").and_then(num_u64) else { continue };
            ids.push(format!("thread_axis/{width}"));
            if let Some(median) =
                get(point, "timing").and_then(|t| get(t, "median_ms")).and_then(num_f64)
            {
                bench_medians.insert(format!("thread_axis/{width}"), median);
            }
        }
    }
    ids.sort();
    let key = content_key(&run_identity("bench_report", &bin, seed, scale, &ids));
    Ok(LedgerEntry {
        key,
        kind: "bench_report".to_string(),
        source: source.to_string(),
        bin,
        seed,
        scale,
        threads,
        mode: String::new(),
        strategies: Vec::new(),
        generation: 0,
        summary: EntrySummary { benchmarks: benchmarks.len() as u64, ..EntrySummary::default() },
        bench_medians,
    })
}

/// Builds the ledger entry for the audit report. The identity covers
/// the rule catalog and the violation count, so a rule addition or a
/// new violation registers as a new generation.
pub fn audit_entry(report: &Value, source: &str) -> Result<LedgerEntry, String> {
    let tool = get(report, "tool")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{source}: missing tool"))?
        .to_string();
    let mut rule_ids: Vec<String> = Vec::new();
    if let Some(rules) = get(report, "rules").and_then(Value::as_seq) {
        for r in rules {
            if let Some(id) = get(r, "id").and_then(Value::as_str) {
                rule_ids.push(id.to_string());
            }
        }
    }
    rule_ids.sort();
    let violations =
        get(report, "violations").and_then(Value::as_seq).map(|v| v.len() as u64).unwrap_or(0);
    let identity = format!("audit_report|{tool}|{violations}|{}", rule_ids.join(","));
    Ok(LedgerEntry {
        key: format!("{:016x}", fnv1a64(identity.as_bytes())),
        kind: "audit_report".to_string(),
        source: source.to_string(),
        bin: tool,
        seed: 0,
        scale: 0.0,
        threads: 0,
        mode: String::new(),
        strategies: Vec::new(),
        generation: 0,
        summary: EntrySummary { violations, ..EntrySummary::default() },
        bench_medians: BTreeMap::new(),
    })
}

/// Repo-relative forward-slash rendering of `path` under `root`.
fn rel(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Sorted `.json` files under `dir` (missing directory = empty scan).
fn json_files(dir: &Path) -> Result<Vec<std::path::PathBuf>, String> {
    let entries = match std::fs::read_dir(dir) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("read dir {}: {e}", dir.display())),
        Ok(entries) => entries,
    };
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.extension().is_some_and(|ext| ext == "json") {
            files.push(path);
        }
    }
    files.sort();
    Ok(files)
}

/// Scans every known artifact location under `root` and returns the
/// candidate entries, in deterministic order.
pub fn ingest_repo(root: &Path) -> Result<Vec<LedgerEntry>, String> {
    let mut candidates = Vec::new();

    for path in json_files(&root.join("artifacts").join("telemetry"))? {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let manifest =
            RunManifest::from_json(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        candidates.push(manifest_entry(&manifest, &rel(root, &path)));
    }

    for path in json_files(root)? {
        let is_bench = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"));
        if !is_bench {
            continue;
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let report: Value =
            serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        candidates.push(bench_entry(&report, &rel(root, &path))?);
    }

    for path in json_files(&crate::trace::trace_dir(root))? {
        let is_cells =
            path.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.ends_with(".cells.json"));
        if !is_cells {
            // `.trace.json` / `.flame.svg` siblings are render output.
            continue;
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let export: crate::trace::TraceExport =
            serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        candidates.push(crate::trace::trace_entry(&export, &rel(root, &path)));
    }

    let audit_path = root.join("artifacts").join("audit").join("report.json");
    match std::fs::read_to_string(&audit_path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(format!("read {}: {e}", audit_path.display())),
        Ok(text) => {
            let report: Value = serde_json::from_str(&text)
                .map_err(|e| format!("parse {}: {e}", audit_path.display()))?;
            candidates.push(audit_entry(&report, &rel(root, &audit_path))?);
        }
    }

    Ok(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_telemetry::{FailureRecord, RunConfig, SpanRecord, SpanRollup};
    use std::collections::BTreeMap as Map;

    fn manifest() -> RunManifest {
        let span = |name: &str, id: u64| SpanRecord {
            name: name.into(),
            id,
            parent_id: 0,
            depth: 0,
            start_ms: 0.0,
            duration_ms: 1.0,
            trace_id: 0,
            instant: false,
        };
        let mut counters = Map::new();
        counters.insert("cells_scanned".to_string(), 1331);
        RunManifest {
            binary: "fig2_detection".into(),
            config: RunConfig { scale: 0.05, repeats: 3, seed: 11, label_budget: 100, threads: 2 },
            mode: "full".into(),
            spans: vec![
                span("phase:setup", 1),
                span("detect:raha", 2),
                span("detect:raha", 3),
                span("detect:features:fit", 4),
                span("repair:impute_mean_mode", 5),
            ],
            span_rollup: Vec::new(),
            counters,
            histograms: Map::new(),
            failures: vec![FailureRecord {
                phase: "detect".into(),
                strategy: "zeroed".into(),
                dataset: "beers".into(),
                scope: String::new(),
                cause: "budget exhausted: 12 of 10 ticks".into(),
                attempts: 1,
                elapsed_ms: 3.0,
                trace_id: String::new(),
            }],
        }
    }

    #[test]
    fn strategies_come_from_spans_and_failures_only() {
        let entry = manifest_entry(&manifest(), "artifacts/telemetry/fig2_detection-11.json");
        assert_eq!(
            entry.strategies,
            ["detect:raha", "detect:zeroed", "repair:impute_mean_mode"],
            "phase/controller/nested spans are excluded, failed strategies included"
        );
        assert_eq!(entry.summary.spans, 5);
        assert_eq!(entry.summary.span_names, 4);
        assert_eq!(entry.summary.cells_scanned, 1331);
        assert_eq!(entry.summary.failures.deadlines, 1);
        assert_eq!(entry.threads, 2);
    }

    #[test]
    fn summary_mode_counts_through_the_rollup() {
        let mut m = manifest();
        m.mode = "summary".into();
        m.spans.truncate(2);
        m.span_rollup = vec![
            SpanRollup {
                name: "detect:raha".into(),
                count: 40,
                total_ms: 40.0,
                max_ms: 2.0,
                dropped: 36,
            },
            SpanRollup {
                name: "phase:setup".into(),
                count: 1,
                total_ms: 1.0,
                max_ms: 1.0,
                dropped: 0,
            },
        ];
        let entry = manifest_entry(&m, "artifacts/telemetry/fig2_detection-11.json");
        assert_eq!(entry.summary.spans, 41, "rollup counts cover the dropped spans");
        assert_eq!(entry.summary.span_names, 2);
        assert!(entry.strategies.contains(&"detect:raha".to_string()));
    }

    #[test]
    fn full_and_summary_forms_share_a_key() {
        // The rollup covers every span name, so summarizing a manifest
        // must not change its content key — the ledger treats both
        // forms as the same run.
        let full = manifest();
        let mut summary = full.clone();
        summary.mode = "summary".into();
        let (kept, rollup) = rein_telemetry::summarize_spans(&full.spans);
        summary.spans = kept;
        summary.span_rollup = rollup;
        let a = manifest_entry(&full, "artifacts/telemetry/fig2_detection-11.json");
        let b = manifest_entry(&summary, "artifacts/telemetry/fig2_detection-11.json");
        assert_eq!(a.key, b.key);
        assert_eq!(a.strategies, b.strategies);
        assert_eq!(a.summary.spans, b.summary.spans);
    }

    #[test]
    fn bench_reports_key_on_suite_not_timings() {
        let report = |median: f64| {
            serde_json::from_str::<Value>(&format!(
                r#"{{
                    "schema": 1,
                    "created_by": "perf_baseline",
                    "env": {{ "scale": 0.05, "seed": 90, "threads": 4 }},
                    "benchmarks": [
                        {{ "id": "detect/katara/beers", "timing": {{ "median_ms": {median} }} }},
                        {{ "id": "repair/mean/beers", "timing": {{ "median_ms": 1.5 }} }}
                    ]
                }}"#
            ))
            .expect("report parses")
        };
        let a = bench_entry(&report(0.2), "BENCH_0.json").expect("entry");
        let b = bench_entry(&report(0.9), "BENCH_0.json").expect("entry");
        assert_eq!(a.key, b.key, "timings are not identity");
        assert_eq!(a.summary.benchmarks, 2);
        assert_eq!(a.threads, 4);
        assert_eq!(a.bench_medians.get("detect/katara/beers"), Some(&0.2));
        assert_eq!(b.bench_medians.get("detect/katara/beers"), Some(&0.9));
    }

    #[test]
    fn bench_thread_axis_widths_are_identity() {
        // The measured pool widths are part of what the suite ran, so
        // a report that adds a threads axis (BENCH_1 vs BENCH_0) gets
        // its own key — while the axis timings stay out of the key.
        let report = |axis: &str| {
            serde_json::from_str::<Value>(&format!(
                r#"{{
                    "schema": 1,
                    "created_by": "perf_baseline",
                    "env": {{ "scale": 0.05, "seed": 90, "threads": 4 }},
                    "benchmarks": [
                        {{ "id": "detect/katara/beers", "timing": {{ "median_ms": 0.2 }} }}
                    ],
                    "thread_axis": [{axis}]
                }}"#
            ))
            .expect("report parses")
        };
        let point = |threads: u64, median: f64| {
            format!(r#"{{ "threads": {threads}, "timing": {{ "median_ms": {median} }} }}"#)
        };
        let no_axis = bench_entry(&report(""), "BENCH_0.json").expect("entry");
        let axis_a = bench_entry(
            &report(&format!("{}, {}", point(1, 400.0), point(4, 500.0))),
            "BENCH_1.json",
        )
        .expect("entry");
        let axis_b = bench_entry(
            &report(&format!("{}, {}", point(1, 410.0), point(4, 520.0))),
            "BENCH_1.json",
        )
        .expect("entry");
        let wider = bench_entry(&report(&point(8, 300.0)), "BENCH_1.json").expect("entry");
        assert_ne!(no_axis.key, axis_a.key, "axis widths are identity");
        assert_eq!(axis_a.key, axis_b.key, "axis timings are not identity");
        assert_ne!(axis_a.key, wider.key, "a different width set is a different run");
        assert_eq!(axis_a.bench_medians.get("thread_axis/1"), Some(&400.0));
        assert_eq!(axis_a.bench_medians.get("thread_axis/4"), Some(&500.0));
    }

    #[test]
    fn audit_key_tracks_catalog_and_violations() {
        let report = |rules: &str, violations: &str| {
            serde_json::from_str::<Value>(&format!(
                r#"{{ "tool": "rein-audit", "rules": [{rules}], "violations": [{violations}] }}"#
            ))
            .expect("report parses")
        };
        let base = audit_entry(&report(r#"{"id": "panic"}"#, ""), "artifacts/audit/report.json")
            .expect("entry");
        let more_rules = audit_entry(
            &report(r#"{"id": "panic"}, {"id": "wallclock"}"#, ""),
            "artifacts/audit/report.json",
        )
        .expect("entry");
        let with_violation =
            audit_entry(&report(r#"{"id": "panic"}"#, r#"{"rule": "panic"}"#), "x").expect("entry");
        assert_ne!(base.key, more_rules.key, "rule catalog is identity");
        assert_ne!(base.key, with_violation.key, "violation count is identity");
        assert_eq!(with_violation.summary.violations, 1);
    }

    #[test]
    fn ingest_walks_the_committed_repo() {
        // The committed artifacts are themselves the fixture: every
        // manifest, the bench report and the audit report must ingest.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let candidates = ingest_repo(&root).expect("committed artifacts ingest");
        let kinds = |k: &str| candidates.iter().filter(|c| c.kind == k).count();
        assert!(kinds("run_manifest") >= 10, "telemetry manifests: {}", kinds("run_manifest"));
        assert!(kinds("bench_report") >= 1);
        assert_eq!(kinds("audit_report"), 1);
        // Every key unique across the committed set.
        let mut keys: Vec<&str> = candidates.iter().map(|c| c.key.as_str()).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "committed artifacts collide on a content key");
    }
}
