//! Ablation: which detection failure hurts repair more — false positives
//! or false negatives?
//!
//! §6.5 of the paper argues detection *precision* usually dominates repair
//! quality, **except** under a highly effective repairer (GT), where false
//! negatives dominate because unflagged errors can never be repaired. This
//! harness synthesises detections at controlled precision/recall operating
//! points and measures the resulting repair RMSE under two repairers.

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_bench::{conclude, dataset, f, header, phase};
use rein_core::run_repair;
use rein_data::CellMask;
use rein_datasets::{DatasetId, GeneratedDataset};
use rein_repair::RepairKind;

/// Detection mask with the requested recall (fraction of true errors
/// flagged) and precision (TP / detected), padding with false positives.
fn synth_detection(ds: &GeneratedDataset, recall: f64, precision: f64, seed: u64) -> CellMask {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mask = CellMask::new(ds.dirty.n_rows(), ds.dirty.n_cols());
    let mut errors: Vec<_> = ds.mask.iter().collect();
    errors.shuffle(&mut rng);
    let tp = ((errors.len() as f64) * recall).round() as usize;
    for cell in errors.iter().take(tp) {
        mask.set(cell.row, cell.col, true);
    }
    // Add FPs until precision target reached: detected = tp / precision.
    let target_detected = (tp as f64 / precision.max(1e-9)).round() as usize;
    let mut fp_needed = target_detected.saturating_sub(tp);
    'outer: for r in 0..ds.dirty.n_rows() {
        for c in 0..ds.dirty.n_cols() {
            if fp_needed == 0 {
                break 'outer;
            }
            if !ds.mask.get(r, c) && !mask.get(r, c) {
                mask.set(r, c, true);
                fp_needed -= 1;
            }
        }
    }
    mask
}

fn main() {
    let setup = phase("setup");
    let ds = dataset(DatasetId::SmartFactory, 17);
    let numeric = ds.clean.schema().numeric_indices();
    let dirty_rmse = rein_stats::numerical_rmse(&ds.dirty, &ds.clean, &ds.mask, &numeric).rmse;
    header("Ablation — repair RMSE vs detection precision/recall (smart_factory)");
    println!("dirty-version RMSE baseline: {}\n", f(dirty_rmse));
    drop(setup);
    let sweep = phase("sweep");
    println!("{:<10} {:<10} {:>14} {:>14}", "precision", "recall", "GT repair", "mean impute");
    for &(precision, recall) in
        &[(1.0, 1.0), (1.0, 0.5), (1.0, 0.25), (0.5, 1.0), (0.25, 1.0), (0.5, 0.5)]
    {
        let det = synth_detection(&ds, recall, precision, 3);
        let rmse_of = |kind: RepairKind| {
            let run = run_repair(&ds, &det, kind, 1);
            let table = &run.version.expect("generic").table;
            rein_stats::numerical_rmse(table, &ds.clean, &ds.mask, &numeric).rmse
        };
        println!(
            "{:<10} {:<10} {:>14} {:>14}",
            precision,
            recall,
            f(rmse_of(RepairKind::GroundTruth)),
            f(rmse_of(RepairKind::ImputeMeanMode)),
        );
    }
    drop(sweep);
    let report = phase("report");
    println!("\nUnder GT repair only recall matters (false positives are repaired");
    println!("to their true values anyway); under imperfect repairers low");
    println!("precision adds new damage to clean cells.");
    drop(report);
    conclude("ablation_precision_recall", 17, 0);
}
