//! Negative fixture: RNG seeds that do not trace to a parameter.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Direct violation: the seed is a literal inside library code.
pub fn shuffle_order(n: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(42);
    let mut order: Vec<usize> = (0..n).collect();
    order.rotate_left(rng.gen_range(0..n.max(1)));
    order
}

/// This helper is fine on its own: the seed flows from its parameter,
/// which makes `seed` a seed-sink position for callers.
fn make_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Interprocedural violation: a literal flows into `make_rng`'s
/// seed-sink parameter.
pub fn resample(n: usize) -> Vec<usize> {
    let mut rng = make_rng(7);
    (0..n).map(|_| rng.gen_range(0..n.max(1))).collect()
}
