//! # rein-audit
//!
//! A workspace-wide determinism & benchmark-integrity lint pass.
//!
//! REIN's results are only meaningful when two runs with the same seed
//! are byte-identical: the paper's Wilcoxon A/B comparisons and the
//! detector/repair rankings all assume exact reproducibility. This crate
//! machine-checks the invariants that guarantee it, instead of trusting
//! conventions:
//!
//! * **determinism** — no wall-clock reads outside the telemetry layer,
//!   no `HashMap`/`HashSet` (iteration order varies across processes) in
//!   result-producing code, no unseeded RNG;
//! * **panic-hygiene** — every `unwrap()`/`expect()`/`panic!` in library
//!   code either becomes `Result` propagation or carries a justified
//!   `audit:allow(panic, reason)` annotation;
//! * **telemetry coverage** — benchmark binaries mark their phases and
//!   write run manifests; detector/repair modules open spans;
//! * **output discipline** — reports and logs flow through the dedicated
//!   emitters, never bare `println!` in library code.
//!
//! Run it with `cargo run -p rein-audit`; it prints a human report,
//! writes machine-readable JSON to `artifacts/audit/report.json` and
//! exits nonzero on violations (CI treats that as a failing step).

pub mod callgraph;
pub mod concurrency;
pub mod dataflow;
pub mod lexer;
pub mod parser;
pub mod purity;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod semantic;

pub use purity::{cache_key_fields, certify, env_read_allowlist, EntryCertificate};
pub use report::{audit_workspace, collect_sources, Report, RuleSummary};
pub use rules::{
    audit_source, classify, wallclock_allowlist, AllowEntry, AllowTable, FileAudit, FileClass,
    Violation, RULES,
};
pub use sarif::to_sarif;
pub use semantic::{analyze, SemanticOutcome, WorkspaceModel};
