//! Negative fixture: the held-out split flows into a fit-like callee.

use crate::linalg::Matrix;
use crate::model::Classifier;

/// Leak: the model is (re)fit on the test partition before scoring.
pub fn evaluate(
    model: &mut dyn Classifier,
    x_train: &Matrix,
    y_train: &[usize],
    x_test: &Matrix,
    y_test: &[usize],
) -> f64 {
    model.fit(x_train, y_train, 2);
    model.fit(x_test, y_test, 2);
    let preds = model.predict(x_test);
    preds.iter().zip(y_test).filter(|(p, t)| p == t).count() as f64 / y_test.len() as f64
}

/// Leak through a rebinding: `holdout` derives from `xte`.
pub fn tune(model: &mut dyn Classifier, xte: &Matrix, yte: &[usize]) {
    let holdout = xte;
    model.fit(holdout, yte, 2);
}
