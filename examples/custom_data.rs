//! Bringing your own data: parse a CSV, discover functional dependencies,
//! inject controlled errors (to get a ground truth for evaluation), then
//! detect and repair with rule-based tools — the workflow for extending
//! REIN with a new dataset.
//!
//! Run with: `cargo run --example custom_data`

// Examples narrate their results on stdout by design.
#![allow(clippy::print_stdout)]

use rein::constraints::{discover_fds, DiscoveryConfig};
use rein::data::{csv, diff::diff_mask};
use rein::detect::{DetectContext, DetectorKind};
use rein::errors::compose::{compose, ErrorSpec};
use rein::repair::{RepairContext, RepairKind, RepairOutcome};
use rein::stats::evaluate_detection;

const RAW: &str = "\
order_id,zip,city,amount
1001,10115,Berlin,23.5
1002,80331,Munich,11.0
1003,10115,Berlin,42.0
1004,20095,Hamburg,7.25
1005,80331,Munich,18.75
1006,10115,Berlin,31.0
1007,20095,Hamburg,12.5
1008,80331,Munich,27.0
1009,10115,Berlin,16.25
1010,20095,Hamburg,44.0
1011,80331,Munich,9.5
1012,10115,Berlin,21.0
1013,20095,Hamburg,33.25
1014,80331,Munich,15.0
1015,10115,Berlin,28.5
";

fn main() {
    // 1. Parse the CSV (types are inferred per column).
    let clean = csv::read_str(RAW).expect("valid csv");
    println!("parsed {} rows × {} columns", clean.n_rows(), clean.n_cols());

    // 2. Discover functional dependencies to use as cleaning signals.
    let fds = discover_fds(&clean, &DiscoveryConfig::default());
    println!("discovered FDs:");
    for fd in &fds {
        println!("  {}", fd.describe(&clean));
    }

    // 3. Inject errors with a known ground truth: FD violations on the
    //    city column plus missing amounts.
    let zip_to_city = fds
        .iter()
        .find(|f| f.lhs == vec![1] && f.rhs == 2)
        .cloned()
        .expect("zip -> city should be discovered");
    let dirty = compose(
        &clean,
        &[
            ErrorSpec::FdViolations { fd: zip_to_city.clone(), rate: 0.3 },
            ErrorSpec::ExplicitMissing { cols: vec![3], rate: 0.2 },
        ],
        7,
    );
    println!(
        "\ninjected {} erroneous cells ({:.1}% of cells)",
        dirty.mask.count(),
        100.0 * dirty.error_rate()
    );

    // 4. Detect with NADEEF (rule + pattern violations) and the MV scan.
    let ctx = DetectContext { fds: &fds, ..DetectContext::bare(&dirty.dirty) };
    let nadeef = DetectorKind::Nadeef.build().detect(&ctx);
    let mvd = DetectorKind::MvDetector.build().detect(&ctx);
    let combined = nadeef.union(&mvd);
    let quality = evaluate_detection(&combined, &dirty.mask);
    println!(
        "nadeef+mvd: {} detections, precision {:.2}, recall {:.2}",
        combined.count(),
        quality.precision,
        quality.recall
    );

    // 5. Repair with HoloClean-style inference and verify against truth.
    let rctx = RepairContext { fds: &fds, ..RepairContext::new(&dirty.dirty, &combined) };
    let out = RepairKind::HoloClean.build().repair(&rctx);
    if let RepairOutcome::Repaired { table, .. } = out {
        let remaining = diff_mask(&clean, &table).count();
        println!(
            "after repair: {} cells still differ from the truth (was {})",
            remaining,
            dirty.mask.count()
        );
        println!("\nResidual errors come from detection false positives (the");
        println!("city->zip rule also flags clean zips) and rows where the two");
        println!("inverse FDs give symmetric evidence — the paper's finding that");
        println!("detection *precision* drives repair quality.");
    }
}
