//! AdaBoost: SAMME over depth-1 decision stumps for classification and
//! AdaBoost.R2 over shallow trees for regression.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::rng::{derive_seed, weighted_index};

use crate::encode::select_matrix_rows;
use crate::linalg::Matrix;
use crate::model::{Classifier, Regressor};
use crate::tree::{DecisionTreeClassifier, DecisionTreeRegressor, TreeParams};

fn stump_params() -> TreeParams {
    TreeParams { max_depth: 1, min_samples_split: 2, min_samples_leaf: 1, ..Default::default() }
}

/// SAMME AdaBoost classifier over decision stumps.
pub struct AdaBoostClassifier {
    /// Boosting rounds.
    pub n_rounds: usize,
    seed: u64,
    learners: Vec<(DecisionTreeClassifier, f64)>,
    n_classes: usize,
}

impl AdaBoostClassifier {
    /// Builds an AdaBoost classifier; `seed` drives the per-round
    /// weighted resampling.
    pub fn new(n_rounds: usize, seed: u64) -> Self {
        Self { n_rounds, seed, learners: Vec::new(), n_classes: 0 }
    }
}

impl Classifier for AdaBoostClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        self.n_classes = n_classes.max(2);
        self.learners.clear();
        let n = x.rows();
        if n == 0 {
            return;
        }
        let k = self.n_classes as f64;
        let mut weights = vec![1.0 / n as f64; n];
        for round in 0..self.n_rounds {
            rein_guard::checkpoint(n as u64);
            let mut params = stump_params();
            params.seed = round as u64;
            let mut stump = DecisionTreeClassifier::new(params);
            // Weighted fit by weighted resampling (keeps the tree code
            // weight-free); deterministic per round.
            let mut rng = StdRng::seed_from_u64(derive_seed(self.seed, round as u64));
            let sample: Vec<usize> = (0..n).map(|_| weighted_index(&mut rng, &weights)).collect();
            let xs = select_matrix_rows(x, &sample);
            let ys: Vec<usize> = sample.iter().map(|&i| y[i]).collect();
            stump.fit(&xs, &ys, self.n_classes);

            let preds = stump.predict(x);
            let err: f64 = weights
                .iter()
                .zip(preds.iter().zip(y))
                .filter(|(_, (p, t))| p != t)
                .map(|(w, _)| w)
                .sum();
            let err = err.clamp(1e-10, 1.0);
            if err >= 1.0 - 1.0 / k {
                // Worse than chance: discard and stop.
                break;
            }
            let alpha = ((1.0 - err) / err).ln() + (k - 1.0).ln();
            for (w, (p, t)) in weights.iter_mut().zip(preds.iter().zip(y)) {
                if p != t {
                    *w *= alpha.exp().min(1e12);
                }
            }
            let total: f64 = weights.iter().sum();
            weights.iter_mut().for_each(|w| *w /= total);
            self.learners.push((stump, alpha));
            if err < 1e-8 {
                break; // perfect learner
            }
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        if self.learners.is_empty() {
            return vec![0; x.rows()];
        }
        (0..x.rows())
            .map(|r| {
                let mut scores = vec![0.0; self.n_classes];
                for (stump, alpha) in &self.learners {
                    let p = stump.proba_row(x.row(r));
                    scores[crate::linalg::argmax(&p)] += alpha;
                }
                crate::linalg::argmax(&scores)
            })
            .collect()
    }
}

/// AdaBoost.R2 regressor over shallow trees.
pub struct AdaBoostRegressor {
    /// Boosting rounds.
    pub n_rounds: usize,
    seed: u64,
    learners: Vec<(DecisionTreeRegressor, f64)>,
}

impl AdaBoostRegressor {
    /// Builds an AdaBoost.R2 regressor.
    pub fn new(n_rounds: usize, seed: u64) -> Self {
        Self { n_rounds, seed, learners: Vec::new() }
    }
}

impl Regressor for AdaBoostRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        self.learners.clear();
        let n = x.rows();
        if n == 0 {
            return;
        }
        let mut weights = vec![1.0 / n as f64; n];
        let mut rng = StdRng::seed_from_u64(self.seed);
        for round in 0..self.n_rounds {
            let sample: Vec<usize> = (0..n).map(|_| weighted_index(&mut rng, &weights)).collect();
            let xs = select_matrix_rows(x, &sample);
            let ys: Vec<f64> = sample.iter().map(|&i| y[i]).collect();
            let mut tree = DecisionTreeRegressor::new(TreeParams {
                max_depth: 4,
                seed: round as u64,
                ..Default::default()
            });
            tree.fit(&xs, &ys);
            let preds = tree.predict(x);
            let abs_err: Vec<f64> = preds.iter().zip(y).map(|(p, t)| (p - t).abs()).collect();
            let max_err = abs_err.iter().copied().fold(0.0, f64::max).max(1e-12);
            let rel: Vec<f64> = abs_err.iter().map(|e| e / max_err).collect();
            let loss: f64 = weights.iter().zip(&rel).map(|(w, l)| w * l).sum();
            if loss >= 0.5 {
                break;
            }
            let beta = loss / (1.0 - loss);
            let alpha = (1.0 / beta.max(1e-12)).ln();
            for (w, l) in weights.iter_mut().zip(&rel) {
                *w *= beta.powf(1.0 - l);
            }
            let total: f64 = weights.iter().sum();
            weights.iter_mut().for_each(|w| *w /= total.max(1e-300));
            self.learners.push((tree, alpha));
            if loss < 1e-8 {
                break;
            }
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        if self.learners.is_empty() {
            return vec![0.0; x.rows()];
        }
        // Weighted median of learner predictions (AdaBoost.R2).
        let all: Vec<Vec<f64>> = self.learners.iter().map(|(t, _)| t.predict(x)).collect();
        (0..x.rows())
            .map(|r| {
                let mut pairs: Vec<(f64, f64)> =
                    self.learners.iter().enumerate().map(|(i, (_, a))| (all[i][r], *a)).collect();
                pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
                let total: f64 = pairs.iter().map(|(_, a)| a).sum();
                let mut acc = 0.0;
                for (p, a) in &pairs {
                    acc += a;
                    if acc >= total / 2.0 {
                        return *p;
                    }
                }
                pairs.last().map_or(0.0, |(p, _)| *p)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{
        blob_classification, linear_regression_data, train_test_accuracy, train_test_rmse,
    };

    #[test]
    fn boosting_learns_blobs() {
        let (x, y) = blob_classification(150, 3, 91);
        let mut m = AdaBoostClassifier::new(40, 7);
        let acc = train_test_accuracy(&mut m, &x, &y, 3);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn boosting_beats_single_stump_on_interval_target() {
        // y = 1 on a middle interval: needs two thresholds, so a single
        // stump caps out while boosted stumps compose the interval. (XOR is
        // deliberately not used here — it is not additive-separable, so no
        // stump ensemble can represent it.)
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..240 {
            let v = i as f64 / 240.0;
            rows.push(vec![v]);
            ys.push(usize::from(v > 0.33 && v < 0.66));
        }
        let x = Matrix::from_rows(&rows);
        let mut boost = AdaBoostClassifier::new(60, 7);
        boost.fit(&x, &ys, 2);
        let boost_acc = crate::metrics::accuracy(&ys, &boost.predict(&x));
        let mut stump = DecisionTreeClassifier::new(stump_params());
        stump.fit(&x, &ys, 2);
        let stump_acc = crate::metrics::accuracy(&ys, &stump.predict(&x));
        assert!(boost_acc > stump_acc, "boost {boost_acc} vs stump {stump_acc}");
        assert!(boost_acc > 0.95, "boost accuracy {boost_acc}");
    }

    #[test]
    fn regressor_fits_smooth_target() {
        let (x, y) = linear_regression_data(250, 0.1, 97);
        let mut m = AdaBoostRegressor::new(40, 3);
        let err = train_test_rmse(&mut m, &x, &y);
        assert!(err < 2.0, "rmse {err}");
    }

    #[test]
    fn empty_fit_safe() {
        let mut m = AdaBoostClassifier::new(10, 7);
        m.fit(&Matrix::zeros(0, 2), &[], 2);
        assert_eq!(m.predict(&Matrix::zeros(2, 2)), vec![0, 0]);
    }
}
