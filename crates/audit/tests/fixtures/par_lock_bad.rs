//! Concurrency fixture (negative): two functions acquire the same pair
//! of locks in opposite orders while holding the first — a potential
//! deadlock and a scheduling-dependent execution order.
//! `par-lock-discipline` must fire.

use std::sync::Mutex;

static LEFT: Mutex<Vec<u64>> = Mutex::new(Vec::new());
static RIGHT: Mutex<Vec<u64>> = Mutex::new(Vec::new());

pub fn forward() -> usize {
    let a = LEFT.lock().unwrap();
    let b = RIGHT.lock().unwrap();
    a.len() + b.len()
}

pub fn backward() -> usize {
    let b = RIGHT.lock().unwrap();
    let a = LEFT.lock().unwrap();
    a.len() + b.len()
}
