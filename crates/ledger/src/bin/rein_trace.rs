//! `rein_trace`: render the causal cell traces of run manifests into
//! Perfetto-openable Chrome trace JSON, a self-contained flamegraph
//! SVG, and the typed per-cell cost table the ledger ingests.
//!
//! ```text
//! rein_trace [--root DIR] [--manifest PATH]...
//! ```
//!
//! * `--root` — repository root (default `.`); exports land under
//!   `<root>/artifacts/trace/`.
//! * `--manifest` — repo-relative manifest path to export (repeatable).
//!   Without it, every manifest under `artifacts/telemetry/` carrying a
//!   full span stream is exported. Summary-mode manifests are skipped
//!   with a note: their sampled streams cannot reconstruct complete
//!   trees.
//!
//! Every export is a pure function of the manifest bytes — virtual
//! lanes, tick time, renumbered span ids — so a double run is
//! byte-identical and CI compares the hashes. After exporting, the
//! ledger index is re-ingested so the new `.cells.json` files register.
//!
//! Exit codes: 0 on success, 1 on IO/parse failure, 2 on usage errors,
//! 4 when any export contains orphan spans (a trace-carrying span whose
//! parent never appeared — the causal tree is incomplete).

// Binaries are the report surface.
#![allow(clippy::print_stdout)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rein_ledger::{export_manifest, index_path, ingest_repo, write_exports, LedgerIndex};
use rein_telemetry::RunManifest;

struct Args {
    root: PathBuf,
    manifests: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!("usage: rein_trace [--root DIR] [--manifest PATH]...");
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args { root: PathBuf::from("."), manifests: Vec::new() };
    let mut raw = std::env::args().skip(1);
    while let Some(flag) = raw.next() {
        match flag.as_str() {
            "--root" => match raw.next() {
                Some(dir) => args.root = PathBuf::from(dir),
                None => return Err(usage()),
            },
            "--manifest" => match raw.next() {
                Some(path) => args.manifests.push(path),
                None => return Err(usage()),
            },
            _ => {
                eprintln!("error: unknown argument {flag:?}");
                return Err(usage());
            }
        }
    }
    Ok(args)
}

/// Repo-relative manifest paths to export: the explicit `--manifest`
/// list, or a sorted scan of `artifacts/telemetry/*.json`.
fn manifest_sources(args: &Args) -> Result<Vec<String>, String> {
    if !args.manifests.is_empty() {
        return Ok(args.manifests.clone());
    }
    let dir = args.root.join("artifacts").join("telemetry");
    let entries = match std::fs::read_dir(&dir) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("read dir {}: {e}", dir.display())),
        Ok(entries) => entries,
    };
    let mut sources = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.extension().is_some_and(|ext| ext == "json") {
            sources.push(format!(
                "artifacts/telemetry/{}",
                path.file_name().unwrap_or_default().to_string_lossy()
            ));
        }
    }
    sources.sort();
    Ok(sources)
}

/// Exports one manifest; returns its orphan count, or `None` when the
/// manifest was skipped (summary mode).
fn export_one(root: &Path, source: &str) -> Result<Option<u64>, String> {
    let path = root.join(source);
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let manifest =
        RunManifest::from_json(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
    if manifest.mode == "summary" {
        println!("{source}: skipped (summary mode — span stream is sampled)");
        return Ok(None);
    }
    let stem = Path::new(source)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .ok_or_else(|| format!("{source}: no file stem"))?;
    let (forest, export) = export_manifest(&manifest);
    let paths = write_exports(root, &stem, &manifest)?;
    println!(
        "{source}: {} cell trace(s), {} ambient span(s), {} orphan(s) -> {}",
        export.traces,
        export.ambient_spans,
        export.orphans,
        paths[2].display()
    );
    for orphan in &forest.orphans {
        eprintln!(
            "  orphan: span {:?} (id {}) on trace {:016x} has unresolved parent {}",
            orphan.name, orphan.id, orphan.trace_id, orphan.parent_id
        );
    }
    Ok(Some(export.orphans))
}

fn run(args: &Args) -> Result<u64, String> {
    let sources = manifest_sources(args)?;
    if sources.is_empty() {
        println!("no run manifests under {}/artifacts/telemetry", args.root.display());
        return Ok(0);
    }
    let mut orphans = 0u64;
    let mut exported = 0usize;
    for source in &sources {
        if let Some(n) = export_one(&args.root, source)? {
            orphans += n;
            exported += 1;
        }
    }

    // Register the fresh `.cells.json` exports in the ledger index.
    let index_file = index_path(&args.root);
    let candidates = ingest_repo(&args.root)?;
    let mut index = LedgerIndex::load(&index_file)?;
    let changed = index.apply(candidates);
    if changed {
        index.save(&index_file).map_err(|e| format!("write {}: {e}", index_file.display()))?;
    }
    let traced = index.entries.iter().filter(|e| e.kind == "trace_export").count();
    println!(
        "exported {exported} manifest(s); ledger: {} entries ({traced} trace exports), generation {}{}",
        index.entries.len(),
        index.generation,
        if changed { " (updated)" } else { " (unchanged)" }
    );
    Ok(orphans)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(code) => return code,
    };
    match run(&args) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(orphans) => {
            eprintln!("error: {orphans} orphan span(s) — causal trees are incomplete");
            ExitCode::from(4)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
