//! Generic repairers without learned models: the ground-truth upper bound,
//! the Delete strategy, and the three standard imputation baselines
//! (mean-mode, median-mode, mode-mode).

use rein_data::{CellMask, Value};
use rein_stats::descriptive;

use crate::context::{RepairContext, RepairOutcome, Repairer};

/// Ground-truth repair — the performance upper bound ("GT" in Table 1).
/// Detected cells are replaced by their true values; detected rows that do
/// not exist in the clean table (injected duplicates) are removed.
#[derive(Debug, Default, Clone)]
pub struct GroundTruthRepair;

impl Repairer for GroundTruthRepair {
    fn name(&self) -> &'static str {
        "ground_truth"
    }

    fn repair(&self, ctx: &RepairContext<'_>) -> RepairOutcome {
        let _span = rein_telemetry::span("repair:generic");
        let Some(clean) = ctx.clean else {
            return RepairOutcome::repaired(
                ctx.dirty.clone(),
                CellMask::new(ctx.dirty.n_rows(), ctx.dirty.n_cols()),
            );
        };
        let dirty = ctx.dirty;
        // Rows beyond the clean table are injected duplicates: drop those
        // that were detected.
        let keep: Vec<usize> = (0..dirty.n_rows())
            .filter(|&r| {
                r < clean.n_rows() || !(0..dirty.n_cols()).any(|c| ctx.detections.get(r, c))
            })
            .collect();
        let mut table = dirty.select_rows(&keep);
        let mut repaired = CellMask::new(table.n_rows(), table.n_cols());
        for (out_r, &orig_r) in keep.iter().enumerate() {
            if orig_r >= clean.n_rows() {
                continue;
            }
            for c in 0..table.n_cols() {
                if ctx.detections.get(orig_r, c) {
                    table.set_cell(out_r, c, clean.cell(orig_r, c).clone());
                    repaired.set(out_r, c, true);
                }
            }
        }
        RepairOutcome::Repaired { table, repaired_cells: repaired, row_map: keep }
    }
}

/// Delete strategy: drops every row containing a detected cell.
#[derive(Debug, Default, Clone)]
pub struct DeleteRows;

impl Repairer for DeleteRows {
    fn name(&self) -> &'static str {
        "delete"
    }

    fn repair(&self, ctx: &RepairContext<'_>) -> RepairOutcome {
        let _span = rein_telemetry::span("repair:generic");
        let dirty = ctx.dirty;
        let keep: Vec<usize> = (0..dirty.n_rows())
            .filter(|&r| !(0..dirty.n_cols()).any(|c| ctx.detections.get(r, c)))
            .collect();
        let table = dirty.select_rows(&keep);
        let repaired = CellMask::new(table.n_rows(), table.n_cols());
        RepairOutcome::Repaired { table, repaired_cells: repaired, row_map: keep }
    }
}

/// Statistic used for numeric cells by the standard imputers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericStat {
    /// Column mean.
    Mean,
    /// Column median.
    Median,
    /// Column mode.
    Mode,
}

/// Standard imputation: `NumericStat` for numeric columns, mode for
/// categorical columns (Table 1 rows 3–5).
#[derive(Debug, Clone)]
pub struct StandardImpute {
    /// Numeric statistic.
    pub numeric: NumericStat,
}

impl StandardImpute {
    /// Mean-mode imputer.
    pub fn mean_mode() -> Self {
        Self { numeric: NumericStat::Mean }
    }

    /// Median-mode imputer.
    pub fn median_mode() -> Self {
        Self { numeric: NumericStat::Median }
    }

    /// Mode-mode imputer.
    pub fn mode_mode() -> Self {
        Self { numeric: NumericStat::Mode }
    }
}

impl Repairer for StandardImpute {
    fn name(&self) -> &'static str {
        match self.numeric {
            NumericStat::Mean => "impute_mean_mode",
            NumericStat::Median => "impute_median_mode",
            NumericStat::Mode => "impute_mode_mode",
        }
    }

    fn repair(&self, ctx: &RepairContext<'_>) -> RepairOutcome {
        let _span = rein_telemetry::span("repair:generic");
        let dirty = ctx.dirty;
        let mut table = dirty.clone();
        let mut repaired = CellMask::new(dirty.n_rows(), dirty.n_cols());
        for c in 0..dirty.n_cols() {
            if ctx.detections.count_col(c) == 0 {
                continue;
            }
            // Statistics from the *undetected* cells only.
            let trusted: Vec<f64> = (0..dirty.n_rows())
                .filter(|&r| !ctx.detections.get(r, c))
                .filter_map(|r| dirty.cell(r, c).as_f64())
                .collect();
            let numeric_majority = {
                let non_null = (0..dirty.n_rows()).filter(|&r| !dirty.cell(r, c).is_null()).count();
                trusted.len() * 2 >= non_null.max(1)
            };
            let replacement: Value = if numeric_majority && !trusted.is_empty() {
                match self.numeric {
                    NumericStat::Mean => Value::float(descriptive::mean(&trusted)),
                    NumericStat::Median => Value::float(descriptive::median(&trusted)),
                    NumericStat::Mode => {
                        // Mode over exact values.
                        let mut counts: std::collections::BTreeMap<u64, (f64, usize)> =
                            Default::default();
                        for &x in &trusted {
                            counts.entry(x.to_bits()).or_insert((x, 0)).1 += 1;
                        }
                        let mode = counts
                            .values()
                            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.total_cmp(&a.0)))
                            .map(|&(x, _)| x)
                            .unwrap_or(0.0);
                        Value::float(mode)
                    }
                }
            } else {
                // Mode over trusted categorical values.
                let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
                for r in 0..dirty.n_rows() {
                    if !ctx.detections.get(r, c) && !dirty.cell(r, c).is_null() {
                        *counts.entry(dirty.cell(r, c).as_key().into_owned()).or_insert(0) += 1;
                    }
                }
                match counts.into_iter().max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0))) {
                    Some((v, _)) => Value::parse(&v),
                    None => Value::Null,
                }
            };
            for r in 0..dirty.n_rows() {
                rein_guard::checkpoint(1);
                if ctx.detections.get(r, c) {
                    table.set_cell(r, c, replacement.clone());
                    repaired.set(r, c, true);
                }
            }
        }
        RepairOutcome::repaired(table, repaired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::diff::diff_mask;
    use rein_data::{ColumnMeta, ColumnType, Schema, Table};

    fn dataset() -> (Table, Table, CellMask) {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("c", ColumnType::Str),
        ]);
        let clean = Table::from_rows(
            schema,
            (0..20)
                .map(|i| vec![Value::Float((i % 4) as f64), Value::str(["a", "b"][i % 2])])
                .collect(),
        );
        let mut dirty = clean.clone();
        dirty.set_cell(3, 0, Value::Float(500.0));
        dirty.set_cell(7, 1, Value::str("zzz"));
        let detections = diff_mask(&clean, &dirty);
        (clean, dirty, detections)
    }

    #[test]
    fn ground_truth_restores_everything() {
        let (clean, dirty, det) = dataset();
        let ctx = RepairContext { clean: Some(&clean), ..RepairContext::new(&dirty, &det) };
        let out = GroundTruthRepair.repair(&ctx);
        let t = out.table().unwrap();
        assert_eq!(t, &clean);
    }

    #[test]
    fn ground_truth_drops_detected_duplicate_rows() {
        let (clean, mut dirty, _) = dataset();
        dirty.push_row(vec![Value::Float(0.0), Value::str("a")]); // injected dup
        let det = diff_mask(&clean, &dirty);
        let ctx = RepairContext { clean: Some(&clean), ..RepairContext::new(&dirty, &det) };
        let out = GroundTruthRepair.repair(&ctx);
        assert_eq!(out.table().unwrap().n_rows(), clean.n_rows());
    }

    #[test]
    fn delete_removes_flagged_rows() {
        let (_, dirty, det) = dataset();
        let out = DeleteRows.repair(&RepairContext::new(&dirty, &det));
        match out {
            RepairOutcome::Repaired { table, row_map, .. } => {
                assert_eq!(table.n_rows(), 18);
                assert!(!row_map.contains(&3));
                assert!(!row_map.contains(&7));
            }
            _ => panic!("expected repaired"),
        }
    }

    #[test]
    fn mean_impute_uses_trusted_cells_only() {
        let (_, dirty, det) = dataset();
        let out = StandardImpute::mean_mode().repair(&RepairContext::new(&dirty, &det));
        let t = out.table().unwrap();
        // Trusted values of col 0 are (i % 4) over i != 3 -> mean ~1.47,
        // definitely not influenced by the 500.0 outlier.
        let v = t.cell(3, 0).as_f64().unwrap();
        assert!(v < 3.0, "imputed {v}");
    }

    #[test]
    fn mode_impute_for_categorical() {
        let (_, dirty, det) = dataset();
        let out = StandardImpute::mode_mode().repair(&RepairContext::new(&dirty, &det));
        let t = out.table().unwrap();
        // Row 7 is odd -> true value "b"; mode over trusted is "a" (10 vs 9).
        let v = t.cell(7, 1).to_string();
        assert!(v == "a" || v == "b");
        assert_ne!(v, "zzz");
    }

    #[test]
    fn median_differs_from_mean_under_skew() {
        let schema = Schema::new(vec![ColumnMeta::new("x", ColumnType::Float)]);
        let mut rows: Vec<Vec<Value>> = (0..21).map(|_| vec![Value::Float(1.0)]).collect();
        rows[20][0] = Value::Float(1000.0); // trusted but skewing value
        let dirty = {
            let mut d = Table::from_rows(schema, rows);
            d.set_cell(0, 0, Value::Null);
            d
        };
        let mut det = CellMask::new(21, 1);
        det.set(0, 0, true);
        let mean_t = StandardImpute::mean_mode().repair(&RepairContext::new(&dirty, &det));
        let median_t = StandardImpute::median_mode().repair(&RepairContext::new(&dirty, &det));
        let mean_v = mean_t.table().unwrap().cell(0, 0).as_f64().unwrap();
        let median_v = median_t.table().unwrap().cell(0, 0).as_f64().unwrap();
        assert!(mean_v > 40.0);
        assert_eq!(median_v, 1.0);
    }

    #[test]
    fn repaired_cells_mask_matches_detections_for_imputers() {
        let (_, dirty, det) = dataset();
        let out = StandardImpute::mean_mode().repair(&RepairContext::new(&dirty, &det));
        match out {
            RepairOutcome::Repaired { repaired_cells, .. } => assert_eq!(repaired_cells, det),
            _ => panic!(),
        }
    }
}
