//! Negative fixture: per-row allocations inside a detector kernel loop.

pub fn detect(rows: &[Vec<String>]) -> Vec<String> {
    let mut out = Vec::new();
    for row in rows {
        let joined = row.join("|").to_string();
        out.push(joined);
    }
    out
}
