//! Fixture: bare stdout in library code.
pub fn report(v: f64) {
    println!("value = {v}");
}
