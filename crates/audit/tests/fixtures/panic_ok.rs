//! Fixture: an annotated panic is suppressed; test-region panics are exempt.
pub fn first(xs: &[u32]) -> u32 {
    // audit:allow(panic, callers guarantee xs is non-empty)
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn first_of_one() {
        assert_eq!(super::first(&[7]), 7);
        Some(1).unwrap();
    }
}
