//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the serialization subset REIN-RS needs: `#[derive(Serialize,
//! Deserialize)]` (via the sibling `serde_derive` proc-macro) over a
//! JSON-shaped [`Content`] tree, consumed by the vendored `serde_json`.
//!
//! The data model intentionally mirrors serde's JSON defaults: structs
//! become maps, unit enum variants become strings, newtype variants
//! become single-entry maps, `Option::None` becomes null, and non-finite
//! floats serialize as null (deserializing null into `f64` yields NaN so
//! score vectors containing NaN round-trip).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree every type serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON null.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object (insertion-ordered).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The object entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X while deserializing Y" error.
    pub fn expected(what: &str, while_in: &str) -> Self {
        DeError(format!("expected {what} while deserializing {while_in}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be turned into a [`Content`] tree.
pub trait Serialize {
    /// Serializes `self` into the value tree.
    fn serialize_content(&self) -> Content;
}

/// Types that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from the value tree.
    fn deserialize_content(content: &Content) -> Result<Self, DeError>;
}

/// Looks up and deserializes a struct field (derive-macro helper).
pub fn de_field<T: Deserialize>(
    map: &[(String, Content)],
    name: &str,
    type_name: &str,
) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize_content(v),
        None => Err(DeError(format!("missing field `{name}` in {type_name}"))),
    }
}

/// Like [`de_field`], but a missing key yields `T::default()` — the
/// derive-macro helper behind `#[serde(default)]`.
pub fn de_field_or_default<T: Deserialize + Default>(
    map: &[(String, Content)],
    name: &str,
) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize_content(v),
        None => Ok(T::default()),
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                let v = *self as i128;
                if v >= 0 && v > i64::MAX as i128 {
                    Content::U64(*self as u64)
                } else {
                    Content::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, DeError> {
                let wide: i128 = match content {
                    Content::I64(v) => *v as i128,
                    Content::U64(v) => *v as i128,
                    Content::F64(v) if v.fract() == 0.0 => *v as i128,
                    other => return Err(DeError::expected("integer", other.kind())),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl Serialize for u64 {
    fn serialize_content(&self) -> Content {
        if *self > i64::MAX as u64 {
            Content::U64(*self)
        } else {
            Content::I64(*self as i64)
        }
    }
}

impl Deserialize for u64 {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::I64(v) if *v >= 0 => Ok(*v as u64),
            Content::U64(v) => Ok(*v),
            Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Ok(*v as u64),
            other => Err(DeError::expected("unsigned integer", other.kind())),
        }
    }
}

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        if self.is_finite() {
            Content::F64(*self)
        } else {
            Content::Null
        }
    }
}

impl Deserialize for f64 {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            Content::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        (*self as f64).serialize_content()
    }
}

impl Deserialize for f32 {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        f64::deserialize_content(content).map(|v| v as f32)
    }
}

// `Content` is its own data model (the stand-in for `serde_json::Value`,
// which implements both traits upstream): serializing or deserializing it
// is the identity.
impl Serialize for Content {
    fn serialize_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other.kind())),
        }
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(|v| v.serialize_content()).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize_content).collect(),
            other => Err(DeError::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(|v| v.serialize_content()).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        T::deserialize_content(content).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_content(&self) -> Content {
        Content::Seq(vec![self.0.serialize_content(), self.1.serialize_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content.as_seq() {
            Some([a, b]) => Ok((A::deserialize_content(a)?, B::deserialize_content(b)?)),
            _ => Err(DeError::expected("2-element array", content.kind())),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_content(&self) -> Content {
        Content::Seq(vec![
            self.0.serialize_content(),
            self.1.serialize_content(),
            self.2.serialize_content(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content.as_seq() {
            Some([a, b, c]) => Ok((
                A::deserialize_content(a)?,
                B::deserialize_content(b)?,
                C::deserialize_content(c)?,
            )),
            _ => Err(DeError::expected("3-element array", content.kind())),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.serialize_content())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other.kind())),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn serialize_content(&self) -> Content {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (k.clone(), v.serialize_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other.kind())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        for v in [0i64, -5, i64::MAX, i64::MIN] {
            assert_eq!(i64::deserialize_content(&v.serialize_content()), Ok(v));
        }
        assert_eq!(u64::deserialize_content(&u64::MAX.serialize_content()), Ok(u64::MAX));
        assert_eq!(f64::deserialize_content(&1.5f64.serialize_content()), Ok(1.5));
        assert!(f64::deserialize_content(&f64::NAN.serialize_content()).unwrap().is_nan());
        assert_eq!(
            Option::<f64>::deserialize_content(&None::<f64>.serialize_content()),
            Ok(None)
        );
    }

    #[test]
    fn container_roundtrips() {
        let v = vec![(1usize, "a".to_string()), (2, "b".to_string())];
        let c = v.serialize_content();
        assert_eq!(Vec::<(usize, String)>::deserialize_content(&c), Ok(v));
    }
}
