//! The benchmark controller (§2): connects the repository, toolbox and
//! evaluation module, and exploits design-time knowledge (error types, ML
//! task, available signals) to sidestep unnecessary experiments.

use rayon::prelude::*;
use rein_data::rng::derive_seed;
use rein_datasets::GeneratedDataset;
use rein_detect::DetectorKind;
use rein_guard::GuardPolicy;
use rein_repair::{RepairCategory, RepairKind};

use crate::evaluate::{
    repair_quality_categorical, repair_quality_numerical, run_repair_guarded, DetectorHarness,
    DetectorRun, RepairRun,
};
use crate::experiment::{DetectionRecord, RepairRecord};
use crate::toolbox::{applicable_detectors, applicable_repairers, AvailableSignals};

/// A cleaning strategy: one detector feeding one repairer (the paper's
/// figure labels, e.g. "R3" = RAHA + mean-mode imputation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleaningStrategy {
    /// Detector.
    pub detector: DetectorKind,
    /// Repairer.
    pub repairer: RepairKind,
}

impl CleaningStrategy {
    /// Paper-style label: detector index letter + repairer index, e.g.
    /// `"X3"` for Max-Entropy + mean-mode.
    pub fn label(&self) -> String {
        format!("{}{}", self.detector.index_letter(), self.repairer.index())
    }
}

/// The benchmark controller.
#[derive(Debug, Clone)]
pub struct Controller {
    /// Labelling budget for ML-supported detectors.
    pub label_budget: usize,
    /// Master seed.
    pub seed: u64,
    /// Supervision policy for every toolbox dispatch (chaos injection,
    /// retries, budget override).
    pub policy: GuardPolicy,
}

impl Default for Controller {
    fn default() -> Self {
        Self {
            label_budget: crate::evaluate::DEFAULT_LABEL_BUDGET,
            seed: 0,
            policy: GuardPolicy::default(),
        }
    }
}

/// The pruned experiment plan for one dataset.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Detectors worth running.
    pub detectors: Vec<DetectorKind>,
    /// Generic repairers worth running (per detector).
    pub generic_repairers: Vec<RepairKind>,
    /// ML-oriented repairers worth running.
    pub ml_repairers: Vec<RepairKind>,
}

impl Controller {
    /// Signals the benchmark can supply for a generated dataset (the
    /// ground truth exists, so KB and oracle are always available; the
    /// rest depends on the dataset).
    pub fn signals_for(ds: &GeneratedDataset) -> AvailableSignals {
        AvailableSignals {
            fds: !ds.fds.is_empty(),
            knowledge_base: true,
            key_columns: !ds.key_columns.is_empty(),
            oracle: true,
            label_column: ds.clean.schema().label_index().is_some(),
        }
    }

    /// Builds the pruned plan for a dataset.
    pub fn plan(&self, ds: &GeneratedDataset) -> Plan {
        let _span = rein_telemetry::span("controller:plan");
        let signals = Self::signals_for(ds);
        let detectors = applicable_detectors(&ds.info.errors, &signals);
        let repairers = applicable_repairers(&ds.info.errors, ds.info.task, &signals);
        let (ml, generic): (Vec<RepairKind>, Vec<RepairKind>) =
            repairers.into_iter().partition(|r| r.category() == RepairCategory::MlOriented);
        Plan { detectors, generic_repairers: generic, ml_repairers: ml }
    }

    /// Runs the detection phase: every planned detector, in parallel.
    pub fn run_detection(&self, ds: &GeneratedDataset) -> Vec<DetectorRun> {
        let plan = self.plan(ds);
        let span = rein_telemetry::span("controller:detect");
        // Detector spans open on rayon worker threads; hand them the
        // phase span explicitly so nesting survives the fan-out.
        let parent = Some(span.ctx());
        plan.detectors
            .par_iter()
            .map(|&kind| {
                let _worker = rein_telemetry::span_under("controller:detect-one", parent);
                let harness = DetectorHarness::new(
                    ds,
                    self.label_budget,
                    derive_seed(self.seed, kind.index_letter() as u64),
                )
                .with_policy(self.policy.clone());
                harness.run(ds, kind)
            })
            .collect()
    }

    /// Runs the repair phase for one detector's detections: every planned
    /// generic repairer plus the ML-oriented ones.
    pub fn run_repairs(&self, ds: &GeneratedDataset, detection: &DetectorRun) -> Vec<RepairRun> {
        let plan = self.plan(ds);
        let kinds: Vec<RepairKind> =
            plan.generic_repairers.iter().chain(plan.ml_repairers.iter()).copied().collect();
        let span = rein_telemetry::span("controller:repair");
        let parent = Some(span.ctx());
        kinds
            .par_iter()
            .map(|&kind| {
                let _worker = rein_telemetry::span_under("controller:repair-one", parent);
                run_repair_guarded(
                    ds,
                    &detection.mask,
                    kind,
                    derive_seed(self.seed, kind.index() as u64),
                    detection.kind.name(),
                    &self.policy,
                )
            })
            .collect()
    }

    /// Detection records for result tables.
    pub fn detection_records(
        &self,
        ds: &GeneratedDataset,
        runs: &[DetectorRun],
    ) -> Vec<DetectionRecord> {
        runs.iter()
            .map(|run| DetectionRecord {
                dataset: ds.info.name.clone(),
                detector: run.kind.name().to_string(),
                detected: run.quality.detected(),
                true_positives: run.quality.true_positives,
                actual_errors: run.quality.actual_errors(),
                precision: run.quality.precision,
                recall: run.quality.recall,
                f1: run.quality.f1,
                runtime_ms: run.runtime.as_secs_f64() * 1e3,
                failure: run.failure.as_ref().map(|f| f.cause.to_string()),
            })
            .collect()
    }

    /// Repair records for result tables.
    pub fn repair_records(
        &self,
        ds: &GeneratedDataset,
        detector: DetectorKind,
        runs: &[RepairRun],
    ) -> Vec<RepairRecord> {
        runs.iter()
            .map(|run| {
                let cat = repair_quality_categorical(ds, run);
                let num = repair_quality_numerical(ds, run);
                RepairRecord {
                    dataset: ds.info.name.clone(),
                    detector: detector.name().to_string(),
                    repairer: run.kind.name().to_string(),
                    cat_precision: cat.map(|q| q.precision),
                    cat_recall: cat.map(|q| q.recall),
                    cat_f1: cat.map(|q| q.f1),
                    rmse: num.map(|(r, _)| r.rmse).filter(|v| v.is_finite()),
                    dirty_rmse: num.map(|(_, d)| d.rmse).filter(|v| v.is_finite()),
                    runtime_ms: run.runtime.as_secs_f64() * 1e3,
                    failure: run.failure.as_ref().map(|f| f.cause.to_string()),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_datasets::{DatasetId, Params};

    #[test]
    fn citation_plan_prunes_outlier_detectors() {
        let ds = DatasetId::Citation.generate(&Params::scaled(0.05, 1));
        let plan = Controller::default().plan(&ds);
        assert!(plan.detectors.contains(&DetectorKind::KeyCollision));
        assert!(plan.detectors.contains(&DetectorKind::CleanLab));
        assert!(!plan.detectors.contains(&DetectorKind::Sd));
        assert!(!plan.detectors.contains(&DetectorKind::Nadeef));
        // Classification dataset with oracle: ML-oriented repairs planned.
        assert!(plan.ml_repairers.contains(&RepairKind::ActiveClean));
    }

    #[test]
    fn nasa_plan_keeps_outlier_and_mv_detectors_only() {
        let ds = DatasetId::Nasa.generate(&Params::scaled(0.1, 2));
        let plan = Controller::default().plan(&ds);
        assert!(plan.detectors.contains(&DetectorKind::Sd));
        assert!(plan.detectors.contains(&DetectorKind::MvDetector));
        assert!(!plan.detectors.contains(&DetectorKind::KeyCollision));
        // Regression: no ML-oriented repairers.
        assert!(plan.ml_repairers.is_empty());
    }

    #[test]
    fn detection_phase_produces_records() {
        let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.4, 3));
        let ctrl = Controller { label_budget: 40, seed: 1, ..Controller::default() };
        let runs = ctrl.run_detection(&ds);
        assert!(!runs.is_empty());
        let records = ctrl.detection_records(&ds, &runs);
        assert_eq!(records.len(), runs.len());
        // At least one detector achieves decent recall on this dataset.
        assert!(records.iter().any(|r| r.recall > 0.5), "no detector found errors");
    }

    #[test]
    fn repair_phase_covers_generic_and_ml_methods() {
        let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.3, 4));
        let ctrl = Controller { label_budget: 30, seed: 2, ..Controller::default() };
        let harness = DetectorHarness::new(&ds, 30, 1);
        let det = harness.run(&ds, DetectorKind::MaxEntropy);
        let runs = ctrl.run_repairs(&ds, &det);
        assert!(runs.iter().any(|r| r.version.is_some()), "generic repairs ran");
        assert!(runs.iter().any(|r| r.pipeline.is_some()), "ML-oriented repairs ran");
        let records = ctrl.repair_records(&ds, det.kind, &runs);
        // Numeric dataset: RMSE defined for same-shape repairs.
        assert!(records.iter().any(|r| r.rmse.is_some()));
    }

    #[test]
    fn strategy_labels_follow_paper_convention() {
        let s = CleaningStrategy {
            detector: DetectorKind::MaxEntropy,
            repairer: RepairKind::ImputeMeanMode,
        };
        assert_eq!(s.label(), "X3");
        let s =
            CleaningStrategy { detector: DetectorKind::Raha, repairer: RepairKind::GroundTruth };
        assert_eq!(s.label(), "R1");
    }
}
