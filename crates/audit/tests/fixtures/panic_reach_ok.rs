//! Positive fixture: the only panic on the path is annotated, so the
//! public API carries no unreviewed panic.

fn first_value(values: &[f64]) -> f64 {
    // audit:allow(panic, callers guarantee non-empty input via normalized_head's check)
    values.first().copied().unwrap()
}

fn summarize(values: &[f64]) -> f64 {
    first_value(values) / values.len() as f64
}

pub fn normalized_head(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    summarize(values)
}
