//! Fixture: wall-clock read in a result-producing crate.
pub fn elapsed_ms() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_millis()
}
