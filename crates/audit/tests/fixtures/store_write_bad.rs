//! Negative fixture: a store consumer writes journal bytes with a raw
//! fs::write and opens a segment with File::create — either can tear
//! under a crash, which recovery then quarantines as corruption.

pub fn persist(store_root: &Path, payload: &[u8]) -> std::io::Result<()> {
    let journal = store_root.join("journal.wal");
    std::fs::write(&journal, payload)
}

pub fn open_segment(segment: &Path) -> std::io::Result<std::fs::File> {
    std::fs::File::create(segment)
}
