//! Generators for the regression datasets of Table 4: Nasa, Bikes,
//! Soil Moisture, 3D Printer and Mercedes.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_constraints::fd::FunctionalDependency;
use rein_data::rng::{derive_seed, randn};
use rein_data::{ColumnRole, ColumnType, MlTask, Value};
use rein_errors::compose::ErrorSpec;

use crate::common::{finish, GeneratedDataset};
use crate::gen::*;

/// Nasa airfoil self-noise (1504 × 6, manufacturing, R): frequency, angle
/// of attack, chord length, velocity, displacement thickness → sound
/// pressure level. Missing values and outliers at rate 0.08.
pub fn nasa(p: &Params) -> GeneratedDataset {
    let n = p.rows(1504);
    let mut rng = StdRng::seed_from_u64(derive_seed(p.seed, 11));
    let freq = uniform_column(&mut rng, n, 200.0, 20000.0);
    let angle = uniform_column(&mut rng, n, 0.0, 22.0);
    let chord = uniform_column(&mut rng, n, 0.02, 0.3);
    let velocity = uniform_column(&mut rng, n, 30.0, 72.0);
    let thickness = uniform_column(&mut rng, n, 0.0004, 0.06);
    let pressure: Vec<f64> = (0..n)
        .map(|i| {
            // Smooth nonlinear response resembling the airfoil physics.
            140.0 - 3.0 * (freq[i] / 1000.0).ln() - 0.4 * angle[i] - 25.0 * chord[i]
                + 0.1 * velocity[i]
                - 120.0 * thickness[i]
                + 1.5 * randn(&mut rng)
        })
        .collect();
    let clean = TableBuilder::new()
        .column("frequency", ColumnType::Float, ColumnRole::Feature, floats(freq))
        .column("angle_of_attack", ColumnType::Float, ColumnRole::Feature, floats(angle))
        .column("chord_length", ColumnType::Float, ColumnRole::Feature, floats(chord))
        .column("free_stream_velocity", ColumnType::Float, ColumnRole::Feature, floats(velocity))
        .column("displacement_thickness", ColumnType::Float, ColumnRole::Feature, floats(thickness))
        .column("sound_pressure", ColumnType::Float, ColumnRole::Label, floats(pressure))
        .build();
    let specs = [
        ErrorSpec::ExplicitMissing { cols: vec![0, 1, 2, 3, 4], rate: 0.04 },
        ErrorSpec::Outliers { cols: vec![0, 1, 2, 3, 4], rate: 0.04, degree: 4.0 },
    ];
    finish("nasa", "Manufacturing", MlTask::Regression, clean, &specs, 0.08, p.seed, vec![], vec![])
}

/// Bikes (17378 × 16, business, R): hourly bike-sharing counts with the FD
/// `month → season`; rule violations and outliers at rate 0.1.
pub fn bikes(p: &Params) -> GeneratedDataset {
    let n = p.rows(17378);
    let mut rng = StdRng::seed_from_u64(derive_seed(p.seed, 12));
    let mut cols: Vec<Vec<Value>> = (0..16).map(|_| Vec::with_capacity(n)).collect();
    for i in 0..n {
        let month = 1 + (i % 12) as i64;
        let season = (month - 1) / 3 + 1; // FD month -> season
        let hour = (i % 24) as i64;
        let weekday = (i % 7) as i64;
        let holiday = i64::from(rng.random_bool(0.03));
        let workingday = i64::from(weekday < 5 && holiday == 0);
        let temp = 0.5
            + 0.3 * ((month as f64 - 7.0) / 6.0 * std::f64::consts::PI).cos()
            + 0.05 * randn(&mut rng);
        let atemp = temp + 0.02 * randn(&mut rng);
        let humidity = (0.6 + 0.15 * randn(&mut rng)).clamp(0.0, 1.0);
        let windspeed = (0.2 + 0.1 * randn(&mut rng)).abs();
        let weather = rng.random_range(1..4i64);
        let year = (i / (n / 2 + 1)) as i64;
        // Demand: peaks at commute hours, warm weather, working days.
        let commute = (-(hour as f64 - 8.0).powi(2) / 8.0).exp()
            + (-(hour as f64 - 18.0).powi(2) / 8.0).exp();
        let count = (350.0
            * commute
            * (0.5 + temp)
            * (1.0 + 0.2 * workingday as f64)
            * (1.0 - 0.2 * (weather - 1) as f64)
            + 20.0 * randn(&mut rng).abs())
        .max(0.0);
        let casual = count * rng.random_range(0.1..0.35);
        let registered = count - casual;

        cols[0].push(Value::Int(i as i64)); // instant
        cols[1].push(Value::Int(season));
        cols[2].push(Value::Int(year));
        cols[3].push(Value::Int(month));
        cols[4].push(Value::Int(hour));
        cols[5].push(Value::Int(holiday));
        cols[6].push(Value::Int(weekday));
        cols[7].push(Value::Int(workingday));
        cols[8].push(Value::Int(weather));
        cols[9].push(Value::float(temp));
        cols[10].push(Value::float(atemp));
        cols[11].push(Value::float(humidity));
        cols[12].push(Value::float(windspeed));
        cols[13].push(Value::float(casual));
        cols[14].push(Value::float(registered));
        cols[15].push(Value::float(count));
    }
    let names = [
        "instant",
        "season",
        "year",
        "month",
        "hour",
        "holiday",
        "weekday",
        "workingday",
        "weather",
        "temp",
        "atemp",
        "humidity",
        "windspeed",
        "casual",
        "registered",
        "count",
    ];
    let mut b = TableBuilder::new();
    for (idx, (name, values)) in names.iter().zip(cols).enumerate() {
        let role = match idx {
            0 => ColumnRole::Id,
            15 => ColumnRole::Label,
            _ => ColumnRole::Feature,
        };
        let ctype = if (9..=15).contains(&idx) { ColumnType::Float } else { ColumnType::Int };
        b = b.column(name, ctype, role, values);
    }
    let clean = b.build();
    let fds = vec![FunctionalDependency::new([3], 1)];
    let specs = [
        ErrorSpec::FdViolations { fd: fds[0].clone(), rate: 0.25 },
        ErrorSpec::Outliers { cols: vec![9, 10, 11, 12, 13, 14], rate: 0.12, degree: 4.0 },
    ];
    finish("bikes", "Business", MlTask::Regression, clean, &specs, 0.1, p.seed, fds, vec![0])
}

/// Soil Moisture (679 × 129, agriculture, R): smooth hyperspectral band
/// curves whose shape encodes the moisture target; missing values and
/// outliers at the tiny rate 0.01.
pub fn soil_moisture(p: &Params) -> GeneratedDataset {
    let n = p.rows(679);
    let d = 128;
    let mut rng = StdRng::seed_from_u64(derive_seed(p.seed, 13));
    let mut bands: Vec<Vec<Value>> = (0..d).map(|_| Vec::with_capacity(n)).collect();
    let mut moisture = Vec::with_capacity(n);
    for _ in 0..n {
        let m = rng.random_range(25.0..45.0); // moisture %
        let tilt = (m - 35.0) / 10.0;
        let base = rng.random_range(0.2..0.4);
        for (bi, band) in bands.iter_mut().enumerate() {
            let wl = bi as f64 / d as f64;
            // Reflectance dips with moisture in the "water absorption" band.
            let absorption = (-((wl - 0.7) / 0.08).powi(2)).exp() * tilt * 0.1;
            let refl = base + 0.3 * wl - absorption + 0.005 * randn(&mut rng);
            band.push(Value::float(refl));
        }
        moisture.push(Value::float(m + 0.2 * randn(&mut rng)));
    }
    let mut b = TableBuilder::new();
    for (bi, band) in bands.into_iter().enumerate() {
        b = b.column(&format!("band_{bi:03}"), ColumnType::Float, ColumnRole::Feature, band);
    }
    let clean = b.column("soil_moisture", ColumnType::Float, ColumnRole::Label, moisture).build();
    let band_cols: Vec<usize> = (0..d).collect();
    let specs = [
        ErrorSpec::ExplicitMissing { cols: band_cols.clone(), rate: 0.005 },
        ErrorSpec::Outliers { cols: band_cols, rate: 0.005, degree: 4.0 },
    ];
    finish(
        "soil_moisture",
        "Agriculture",
        MlTask::Regression,
        clean,
        &specs,
        0.01,
        p.seed,
        vec![],
        vec![],
    )
}

/// 3D Printer (50 × 12, manufacturing, R): print settings → surface
/// roughness; duplicates, missing values and implicit missing values at
/// rate 0.05.
pub fn printer3d(p: &Params) -> GeneratedDataset {
    let n = p.rows(50);
    let mut rng = StdRng::seed_from_u64(derive_seed(p.seed, 14));
    let mut cols: Vec<Vec<Value>> = (0..12).map(|_| Vec::with_capacity(n)).collect();
    for i in 0..n {
        let layer_height = rng.random_range(0.02..0.2f64);
        let wall_thickness = rng.random_range(1.0..10.0f64);
        let infill = rng.random_range(10.0..90.0f64);
        let infill_pattern = if rng.random_bool(0.5) { "grid" } else { "honeycomb" };
        let nozzle_temp = rng.random_range(200.0..250.0f64);
        let bed_temp = rng.random_range(60.0..80.0f64);
        let speed = rng.random_range(40.0..120.0f64);
        let material = if rng.random_bool(0.5) { "abs" } else { "pla" };
        let fan = rng.random_range(0.0..100.0f64);
        let roughness = 20.0 + 800.0 * layer_height + 0.3 * speed - 0.1 * fan
            + if material == "abs" { 15.0 } else { 0.0 }
            + 5.0 * randn(&mut rng);
        let elongation = rng.random_range(0.8..3.5f64);
        cols[0].push(Value::Int(i as i64));
        cols[1].push(Value::float(layer_height));
        cols[2].push(Value::float(wall_thickness));
        cols[3].push(Value::float(infill));
        cols[4].push(Value::str(infill_pattern));
        cols[5].push(Value::float(nozzle_temp));
        cols[6].push(Value::float(bed_temp));
        cols[7].push(Value::float(speed));
        cols[8].push(Value::str(material));
        cols[9].push(Value::float(fan));
        cols[10].push(Value::float(elongation));
        cols[11].push(Value::float(roughness));
    }
    let names = [
        "id",
        "layer_height",
        "wall_thickness",
        "infill_density",
        "infill_pattern",
        "nozzle_temp",
        "bed_temp",
        "print_speed",
        "material",
        "fan_speed",
        "elongation",
        "roughness",
    ];
    let mut b = TableBuilder::new();
    for (idx, (name, values)) in names.iter().zip(cols).enumerate() {
        let role = match idx {
            0 => ColumnRole::Id,
            11 => ColumnRole::Label,
            _ => ColumnRole::Feature,
        };
        let ctype = match idx {
            0 => ColumnType::Int,
            4 | 8 => ColumnType::Str,
            _ => ColumnType::Float,
        };
        b = b.column(name, ctype, role, values);
    }
    let clean = b.build();
    let specs = [
        ErrorSpec::ExplicitMissing { cols: vec![1, 2, 3], rate: 0.04 },
        ErrorSpec::ImplicitMissing { cols: vec![5, 6], rate: 0.04 },
        ErrorSpec::Duplicates { rate: 0.08, fuzz: 0.3 },
    ];
    finish(
        "printer3d",
        "Manufacturing",
        MlTask::Regression,
        clean,
        &specs,
        0.05,
        p.seed,
        vec![],
        vec![0],
    )
}

/// Mercedes (4210 × 378, manufacturing, R): mostly binary configuration
/// flags plus a few categorical codes → test-bench time; outliers, missing
/// and implicit missing values at rate 0.05.
pub fn mercedes(p: &Params) -> GeneratedDataset {
    let n = p.rows(4210);
    let mut rng = StdRng::seed_from_u64(derive_seed(p.seed, 15));
    let n_bin = 369;
    // A sparse subset of flags actually influences the duration.
    let active: Vec<usize> = (0..n_bin).step_by(23).collect();
    let codes = ["a", "b", "c", "d", "e", "f"];

    let mut cat_cols: Vec<Vec<Value>> = (0..8).map(|_| Vec::with_capacity(n)).collect();
    let mut bin_cols: Vec<Vec<Value>> = (0..n_bin).map(|_| Vec::with_capacity(n)).collect();
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let mut duration = 95.0;
        for (ci, col) in cat_cols.iter_mut().enumerate() {
            let code = codes[rng.random_range(0..codes.len())];
            if ci == 0 {
                duration += (code.as_bytes()[0] - b'a') as f64 * 1.5;
            }
            col.push(Value::str(code));
        }
        for (bi, col) in bin_cols.iter_mut().enumerate() {
            let bit = rng.random_bool(0.3);
            if bit && active.contains(&bi) {
                duration += 2.0;
            }
            col.push(Value::Int(i64::from(bit)));
        }
        duration += 3.0 * randn(&mut rng);
        y.push(Value::float(duration));
    }
    let mut b = TableBuilder::new();
    for (ci, col) in cat_cols.into_iter().enumerate() {
        b = b.column(&format!("X{ci}"), ColumnType::Str, ColumnRole::Feature, col);
    }
    for (bi, col) in bin_cols.into_iter().enumerate() {
        b = b.column(&format!("X{}", bi + 8), ColumnType::Int, ColumnRole::Feature, col);
    }
    let clean = b.column("y", ColumnType::Float, ColumnRole::Label, y).build();
    let some_bins: Vec<usize> = (8..=120).step_by(3).collect::<Vec<_>>();
    let specs = [
        ErrorSpec::ExplicitMissing { cols: some_bins.clone(), rate: 0.05 },
        ErrorSpec::ImplicitMissing { cols: (130..200).collect(), rate: 0.05 },
        ErrorSpec::Outliers { cols: vec![377], rate: 0.2, degree: 4.0 },
    ];
    finish(
        "mercedes",
        "Manufacturing",
        MlTask::Regression,
        clean,
        &specs,
        0.05,
        p.seed,
        vec![],
        vec![],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_constraints::fd;

    #[test]
    fn nasa_shape_and_rate() {
        let d = nasa(&Params::scaled(0.2, 1));
        assert_eq!(d.clean.n_cols(), 6);
        assert_eq!(d.info.task, rein_data::MlTask::Regression);
        assert!((d.error_rate() - 0.08).abs() < 0.05, "rate {}", d.error_rate());
    }

    #[test]
    fn bikes_fd_holds_clean_violated_dirty() {
        let d = bikes(&Params::scaled(0.02, 2));
        assert_eq!(d.clean.n_cols(), 16);
        assert!(fd::holds(&d.clean, &d.fds[0]));
        assert!(!fd::fd_violations(&d.dirty, &d.fds[0]).is_empty());
    }

    #[test]
    fn soil_moisture_wide_and_sparse_errors() {
        let d = soil_moisture(&Params::scaled(0.3, 3));
        assert_eq!(d.clean.n_cols(), 129);
        assert!(d.error_rate() < 0.03, "rate {}", d.error_rate());
        assert!(d.error_rate() > 0.0);
    }

    #[test]
    fn printer3d_tiny_with_duplicates() {
        let d = printer3d(&Params::full(4));
        assert_eq!(d.clean.n_rows(), 50);
        assert_eq!(d.clean.n_cols(), 12);
        assert!(!d.duplicate_pairs.is_empty());
    }

    #[test]
    fn mercedes_is_very_wide() {
        let d = mercedes(&Params::scaled(0.02, 5));
        assert_eq!(d.clean.n_cols(), 378);
        assert_eq!(d.clean.schema().categorical_indices().len(), 8);
        assert!(d.error_rate() > 0.0);
    }

    #[test]
    fn regression_targets_are_numeric() {
        for d in [nasa(&Params::scaled(0.05, 6)), bikes(&Params::scaled(0.01, 6))] {
            let label = d.clean.schema().label_index().unwrap();
            assert!(d.clean.column(label).iter().all(|v| v.as_f64().is_some()));
        }
    }
}
