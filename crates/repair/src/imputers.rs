//! ML-driven imputation (Table 1 rows 6–12): missForest-style iterative
//! imputation with pluggable per-type models — random forest (missForest),
//! MLP (DataWig), decision tree, Bayesian ridge and k-NN — in *mixed* mode
//! (features from all other columns) or *separate* mode (features from
//! same-type columns only), as §3.2 describes.

use rein_data::{CellMask, Table, Value};
use rein_ml::encode::{regression_target, select_matrix_rows, Encoder, LabelMap};
use rein_ml::forest::{ForestParams, RandomForestClassifier, RandomForestRegressor};
use rein_ml::knn::KnnRegressor;
use rein_ml::linreg::BayesianRidge;
use rein_ml::mlp::{MlpClassifier, MlpParams, MlpRegressor};
use rein_ml::model::{Classifier, Regressor};
use rein_ml::tree::{DecisionTreeRegressor, TreeParams};

use crate::context::{RepairContext, RepairOutcome, Repairer};

/// Model used for numeric target columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericModel {
    /// Random forest (missForest).
    MissForest,
    /// MLP (DataWig).
    DataWig,
    /// Decision tree.
    DecisionTree,
    /// Bayesian ridge.
    BayesRidge,
    /// k-nearest neighbours.
    Knn,
}

/// Model used for categorical target columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CategoricalModel {
    /// Random forest (missForest).
    MissForest,
    /// MLP (DataWig).
    DataWig,
}

/// Feature scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureScope {
    /// All other columns (mixed mode).
    Mixed,
    /// Only columns of the same type as the target (separate mode).
    Separate,
}

/// Configurable ML imputer.
#[derive(Debug, Clone)]
pub struct MlImputer {
    name: &'static str,
    numeric: NumericModel,
    categorical: CategoricalModel,
    scope: FeatureScope,
    /// missForest-style refinement iterations.
    pub iterations: usize,
}

impl MlImputer {
    /// Row 6: missForest, mixed mode ("MISS-Mix").
    pub fn miss_mix() -> Self {
        Self {
            name: "miss_mix",
            numeric: NumericModel::MissForest,
            categorical: CategoricalModel::MissForest,
            scope: FeatureScope::Mixed,
            iterations: 2,
        }
    }

    /// Row 7: DataWig, mixed mode ("DataWig-Mix").
    pub fn datawig_mix() -> Self {
        Self {
            name: "datawig_mix",
            numeric: NumericModel::DataWig,
            categorical: CategoricalModel::DataWig,
            scope: FeatureScope::Mixed,
            iterations: 1,
        }
    }

    /// Row 8: missForest, separate mode ("MISS-Sep").
    pub fn miss_sep() -> Self {
        Self {
            name: "miss_sep",
            numeric: NumericModel::MissForest,
            categorical: CategoricalModel::MissForest,
            scope: FeatureScope::Separate,
            iterations: 2,
        }
    }

    /// Row 9: missForest for numerics, DataWig for categoricals.
    pub fn miss_datawig() -> Self {
        Self {
            name: "miss_datawig",
            numeric: NumericModel::MissForest,
            categorical: CategoricalModel::DataWig,
            scope: FeatureScope::Mixed,
            iterations: 1,
        }
    }

    /// Row 10: decision tree + missForest ("DT-MISS").
    pub fn dt_miss() -> Self {
        Self {
            name: "dt_miss",
            numeric: NumericModel::DecisionTree,
            categorical: CategoricalModel::MissForest,
            scope: FeatureScope::Mixed,
            iterations: 1,
        }
    }

    /// Row 11: Bayesian ridge + missForest ("Bayes-MISS").
    pub fn bayes_miss() -> Self {
        Self {
            name: "bayes_miss",
            numeric: NumericModel::BayesRidge,
            categorical: CategoricalModel::MissForest,
            scope: FeatureScope::Mixed,
            iterations: 1,
        }
    }

    /// Row 12: k-NN + missForest ("KNN-MISS").
    pub fn knn_miss() -> Self {
        Self {
            name: "knn_miss",
            numeric: NumericModel::Knn,
            categorical: CategoricalModel::MissForest,
            scope: FeatureScope::Mixed,
            iterations: 1,
        }
    }

    fn build_regressor(&self, seed: u64) -> Box<dyn Regressor> {
        match self.numeric {
            NumericModel::MissForest => Box::new(RandomForestRegressor::new(
                ForestParams { n_trees: 15, ..Default::default() },
                seed,
            )),
            NumericModel::DataWig => Box::new(MlpRegressor::new(
                MlpParams { epochs: 30, hidden: 24, ..Default::default() },
                seed,
            )),
            NumericModel::DecisionTree => {
                Box::new(DecisionTreeRegressor::new(TreeParams::default()))
            }
            NumericModel::BayesRidge => Box::new(BayesianRidge::default()),
            NumericModel::Knn => Box::new(KnnRegressor::new(5)),
        }
    }

    fn build_classifier(&self, seed: u64) -> Box<dyn Classifier> {
        match self.categorical {
            CategoricalModel::MissForest => Box::new(RandomForestClassifier::new(
                ForestParams { n_trees: 15, ..Default::default() },
                seed,
            )),
            CategoricalModel::DataWig => Box::new(MlpClassifier::new(
                MlpParams { epochs: 30, hidden: 24, ..Default::default() },
                seed,
            )),
        }
    }

    fn feature_cols(&self, t: &Table, target: usize, target_numeric: bool) -> Vec<usize> {
        (0..t.n_cols())
            .filter(|&c| c != target)
            .filter(|&c| match self.scope {
                FeatureScope::Mixed => true,
                FeatureScope::Separate => t.observed_type(c).is_numeric() == target_numeric,
            })
            .collect()
    }
}

impl Repairer for MlImputer {
    fn name(&self) -> &'static str {
        self.name
    }

    fn repair(&self, ctx: &RepairContext<'_>) -> RepairOutcome {
        let _span = rein_telemetry::span("repair:imputers");
        let dirty = ctx.dirty;
        let det = ctx.detections;
        // Working copy: detected cells nulled then warm-started via the
        // standard imputer so feature encodings are complete.
        let mut working = dirty.clone();
        for cell in det.iter() {
            working.set_cell(cell.row, cell.col, Value::Null);
        }
        let warm = crate::generic::StandardImpute::mean_mode()
            .repair(&RepairContext { dirty: &working, ..RepairContext::new(&working, det) });
        let mut working = match warm {
            RepairOutcome::Repaired { table, .. } => table,
            // audit:allow(panic, StandardImpute always returns Repaired)
            _ => unreachable!(),
        };

        let mut repaired = CellMask::new(dirty.n_rows(), dirty.n_cols());
        let target_cols: Vec<usize> =
            (0..dirty.n_cols()).filter(|&c| det.count_col(c) > 0).collect();
        for _ in 0..self.iterations.max(1) {
            for &col in &target_cols {
                rein_guard::checkpoint(dirty.n_rows() as u64);
                let target_numeric = {
                    // Type from trusted cells only.
                    let trusted_numeric = (0..dirty.n_rows())
                        .filter(|&r| !det.get(r, col))
                        .filter(|&r| dirty.cell(r, col).as_f64().is_some())
                        .count();
                    let trusted_nonnull = (0..dirty.n_rows())
                        .filter(|&r| !det.get(r, col) && !dirty.cell(r, col).is_null())
                        .count();
                    trusted_numeric * 2 >= trusted_nonnull.max(1)
                };
                let features = self.feature_cols(&working, col, target_numeric);
                if features.is_empty() {
                    continue;
                }
                let encoder = Encoder::fit(&working, &features);
                let x = encoder.transform(&working);
                let train_rows: Vec<usize> = (0..dirty.n_rows())
                    .filter(|&r| !det.get(r, col) && !dirty.cell(r, col).is_null())
                    .collect();
                let predict_rows: Vec<usize> =
                    (0..dirty.n_rows()).filter(|&r| det.get(r, col)).collect();
                if train_rows.len() < 5 || predict_rows.is_empty() {
                    continue;
                }
                let xp = select_matrix_rows(&x, &predict_rows);
                if target_numeric {
                    let (rows, y) = regression_target(dirty, col);
                    let trusted: Vec<(usize, f64)> = rows
                        .iter()
                        .zip(&y)
                        .filter(|(r, _)| !det.get(**r, col))
                        .map(|(&r, &v)| (r, v))
                        .collect();
                    if trusted.len() < 5 {
                        continue;
                    }
                    let tr_rows: Vec<usize> = trusted.iter().map(|(r, _)| *r).collect();
                    let tr_y: Vec<f64> = trusted.iter().map(|(_, v)| *v).collect();
                    let xs = select_matrix_rows(&x, &tr_rows);
                    let mut model = self.build_regressor(ctx.seed);
                    model.fit(&xs, &tr_y);
                    for (local, &row) in predict_rows.iter().enumerate() {
                        let pred = model.predict(&xp)[local];
                        working.set_cell(row, col, Value::float(pred));
                        repaired.set(row, col, true);
                    }
                } else {
                    let labels = LabelMap::fit([dirty], col);
                    if labels.n_classes() < 1 {
                        continue;
                    }
                    let (rows, y) = labels.encode(dirty, col);
                    let trusted: Vec<(usize, usize)> = rows
                        .iter()
                        .zip(&y)
                        .filter(|(r, _)| !det.get(**r, col))
                        .map(|(&r, &v)| (r, v))
                        .collect();
                    if trusted.len() < 5 {
                        continue;
                    }
                    let tr_rows: Vec<usize> = trusted.iter().map(|(r, _)| *r).collect();
                    let tr_y: Vec<usize> = trusted.iter().map(|(_, v)| *v).collect();
                    let xs = select_matrix_rows(&x, &tr_rows);
                    let mut model = self.build_classifier(ctx.seed);
                    model.fit(&xs, &tr_y, labels.n_classes());
                    let preds = model.predict(&xp);
                    for (local, &row) in predict_rows.iter().enumerate() {
                        let name = labels.name_of(preds[local]);
                        working.set_cell(row, col, Value::parse(name));
                        repaired.set(row, col, true);
                    }
                }
            }
        }
        // Cells no model could refine (e.g. a categorical target with no
        // same-type features in separate mode) keep their warm-start value;
        // they were still modified, so they count as repaired.
        for cell in det.iter() {
            if working.cell(cell.row, cell.col) != dirty.cell(cell.row, cell.col) {
                repaired.set(cell.row, cell.col, true);
            }
        }
        RepairOutcome::repaired(working, repaired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::diff::diff_mask;
    use rein_data::{ColumnMeta, ColumnType, Schema};

    /// Strongly coupled columns so imputation has real signal:
    /// y = 2x + 1, cat = sign bucket of x.
    fn dataset() -> (Table, Table, CellMask) {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("y", ColumnType::Float),
            ColumnMeta::new("bucket", ColumnType::Str),
        ]);
        let clean = Table::from_rows(
            schema,
            (0..120)
                .map(|i| {
                    let x = (i % 12) as f64;
                    vec![
                        Value::Float(x),
                        Value::Float(2.0 * x + 1.0),
                        Value::str(if x < 6.0 { "low" } else { "high" }),
                    ]
                })
                .collect(),
        );
        let mut dirty = clean.clone();
        for i in 0..10 {
            dirty.set_cell(i * 11 + 1, 1, Value::Float(-50.0));
        }
        for i in 0..6 {
            dirty.set_cell(i * 17 + 2, 2, Value::str("junk"));
        }
        let det = diff_mask(&clean, &dirty);
        (clean, dirty, det)
    }

    #[test]
    fn miss_mix_reconstructs_coupled_numeric() {
        let (clean, dirty, det) = dataset();
        let out = MlImputer::miss_mix().repair(&RepairContext::new(&dirty, &det));
        let t = out.table().unwrap();
        for cell in det.iter() {
            if cell.col != 1 {
                continue;
            }
            let truth = clean.cell(cell.row, 1).as_f64().unwrap();
            let got = t.cell(cell.row, 1).as_f64().unwrap();
            assert!((truth - got).abs() < 3.0, "row {}: {got} vs {truth}", cell.row);
        }
    }

    #[test]
    fn categorical_imputation_respects_coupling() {
        let (clean, dirty, det) = dataset();
        let out = MlImputer::miss_mix().repair(&RepairContext::new(&dirty, &det));
        let t = out.table().unwrap();
        let mut correct = 0;
        let mut total = 0;
        for cell in det.iter() {
            if cell.col != 2 {
                continue;
            }
            total += 1;
            if t.cell(cell.row, 2) == clean.cell(cell.row, 2) {
                correct += 1;
            }
        }
        assert!(total > 0);
        assert!(correct * 3 >= total * 2, "{correct}/{total} correct");
    }

    #[test]
    fn every_imputer_variant_runs_and_repairs_all_detections() {
        let (_, dirty, det) = dataset();
        for imp in [
            MlImputer::miss_mix(),
            MlImputer::datawig_mix(),
            MlImputer::miss_sep(),
            MlImputer::miss_datawig(),
            MlImputer::dt_miss(),
            MlImputer::bayes_miss(),
            MlImputer::knn_miss(),
        ] {
            let out = imp.repair(&RepairContext::new(&dirty, &det));
            match out {
                RepairOutcome::Repaired { table, repaired_cells, .. } => {
                    assert_eq!(repaired_cells, det, "{}", imp.name());
                    // No nulls remain at repaired cells.
                    for cell in det.iter() {
                        assert!(!table.cell(cell.row, cell.col).is_null(), "{}", imp.name());
                    }
                }
                _ => panic!("expected repaired table"),
            }
        }
    }

    #[test]
    fn separate_mode_ignores_other_type_columns() {
        // In separate mode the categorical target cannot see x, so its
        // accuracy should drop to chance while mixed mode stays coupled.
        let (clean, dirty, det) = dataset();
        let acc_of = |imp: MlImputer| {
            let out = imp.repair(&RepairContext::new(&dirty, &det));
            let t = out.table().unwrap().clone();
            let mut correct = 0usize;
            let mut total = 0usize;
            for cell in det.iter() {
                if cell.col == 2 {
                    total += 1;
                    if t.cell(cell.row, 2) == clean.cell(cell.row, 2) {
                        correct += 1;
                    }
                }
            }
            correct as f64 / total.max(1) as f64
        };
        let mixed = acc_of(MlImputer::miss_mix());
        // Separate mode may still guess the majority class; it must not
        // beat mixed mode on this construction.
        let separate = acc_of(MlImputer::miss_sep());
        assert!(mixed >= separate, "mixed {mixed} vs separate {separate}");
    }

    #[test]
    fn imputer_names_match_table1() {
        assert_eq!(MlImputer::miss_mix().name(), "miss_mix");
        assert_eq!(MlImputer::datawig_mix().name(), "datawig_mix");
        assert_eq!(MlImputer::miss_sep().name(), "miss_sep");
        assert_eq!(MlImputer::miss_datawig().name(), "miss_datawig");
        assert_eq!(MlImputer::dt_miss().name(), "dt_miss");
        assert_eq!(MlImputer::bayes_miss().name(), "bayes_miss");
        assert_eq!(MlImputer::knn_miss().name(), "knn_miss");
    }
}
