//! `rein-audit` CLI: audits the workspace, prints the human report,
//! writes `artifacts/audit/report.json` and exits nonzero on violations.
//!
//! Usage: `cargo run -p rein-audit [-- --root DIR --json-out FILE --quiet]`

// This binary is the audit's report surface; printing is its job.
#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

use rein_audit::audit_workspace;

struct Args {
    root: PathBuf,
    json_out: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    // Default root: the workspace containing this crate
    // (crates/audit/../..), so `cargo run -p rein-audit` works from any
    // cwd inside the repo.
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut args = Args { root: default_root, json_out: None, quiet: false };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory argument")?);
            }
            "--json-out" => {
                args.json_out =
                    Some(PathBuf::from(it.next().ok_or("--json-out needs a file argument")?));
            }
            "--no-json" => args.json_out = Some(PathBuf::new()),
            "--quiet" | "-q" => args.quiet = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rein-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match audit_workspace(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rein-audit: failed to scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    if !args.quiet || !report.clean() {
        print!("{}", report.render_text());
    }
    let json_out = args.json_out.unwrap_or_else(|| args.root.join("artifacts/audit/report.json"));
    if json_out.as_os_str().is_empty() {
        // --no-json
    } else {
        if let Some(dir) = json_out.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("rein-audit: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        let mut json = report.to_json();
        json.push('\n');
        if let Err(e) = std::fs::write(&json_out, json) {
            eprintln!("rein-audit: cannot write {}: {e}", json_out.display());
            return ExitCode::from(2);
        }
        if !args.quiet {
            println!("report written to {}", json_out.display());
        }
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
