//! Fixture: ordered containers keep iteration deterministic.
use std::collections::BTreeMap;

pub fn counts(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut m: BTreeMap<u32, usize> = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m.into_iter().collect()
}
