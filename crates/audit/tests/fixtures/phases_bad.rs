//! Fixture: benchmark binary with too few phases and no manifest.
fn main() {
    let _p = rein_bench::phase("generate");
    println!("done");
}
