//! A recursive-descent parser for the Rust subset the semantic rules
//! need: items (fns, mods, impls, traits, uses), function signatures,
//! and a linear body scan that records calls (with per-argument ident
//! flow), `let` bindings and panic sites.
//!
//! It runs over the comment/string-blanked output of [`crate::lexer`],
//! so literals and prose can never produce spurious tokens. It is not a
//! full Rust parser — it is deliberately tolerant (unknown constructs
//! are skipped token-by-token) and only reports *structural* errors
//! (unbalanced delimiters at end of file), which is what the parser
//! smoke test asserts over the whole workspace.

use std::collections::BTreeSet;

use crate::lexer::{lex, SourceLine};

/// Token classification; `Str`/`CharLit` contents were blanked by the
/// lexer, so only their presence matters (literal detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Number,
    Str,
    CharLit,
    Lifetime,
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub text: String,
    pub line: usize,
    pub kind: TokKind,
}

/// Tokenizes lexed lines. Only `::`, `->`, `=>` and `..` are combined
/// into multi-character puncts; `<`/`>` stay single so angle-bracket
/// depth can be tracked through generics.
pub fn tokenize(lines: &[SourceLine]) -> Vec<Token> {
    let mut out = Vec::new();
    for (ix, line) in lines.iter().enumerate() {
        let lineno = ix + 1;
        let cs: Vec<char> = line.code.chars().collect();
        let n = cs.len();
        let mut i = 0usize;
        while i < n {
            let c = cs[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < n && (cs[i].is_alphanumeric() || cs[i] == '_') {
                    i += 1;
                }
                let text: String = cs[start..i].iter().collect();
                out.push(Token { text, line: lineno, kind: TokKind::Ident });
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                while i < n {
                    if cs[i].is_alphanumeric() || cs[i] == '_' {
                        i += 1;
                    } else if cs[i] == '.' && i + 1 < n && cs[i + 1].is_ascii_digit() {
                        i += 2;
                    } else {
                        break;
                    }
                }
                let text: String = cs[start..i].iter().collect();
                out.push(Token { text, line: lineno, kind: TokKind::Number });
                continue;
            }
            if c == '"' {
                // The lexer blanked string contents, keeping the quotes.
                let mut j = i + 1;
                while j < n && cs[j] != '"' {
                    j += 1;
                }
                i = (j + 1).min(n);
                out.push(Token { text: "\"\"".into(), line: lineno, kind: TokKind::Str });
                continue;
            }
            if c == '\'' {
                // The lexer rewrote char literals to `' '`; a tick
                // followed by anything else is a lifetime.
                if i + 2 < n && cs[i + 1] == ' ' && cs[i + 2] == '\'' {
                    out.push(Token { text: "' '".into(), line: lineno, kind: TokKind::CharLit });
                    i += 3;
                    continue;
                }
                let start = i;
                i += 1;
                while i < n && (cs[i].is_alphanumeric() || cs[i] == '_') {
                    i += 1;
                }
                let text: String = cs[start..i].iter().collect();
                out.push(Token { text, line: lineno, kind: TokKind::Lifetime });
                continue;
            }
            let two = if i + 1 < n {
                match (c, cs[i + 1]) {
                    (':', ':') => Some("::"),
                    ('-', '>') => Some("->"),
                    ('=', '>') => Some("=>"),
                    ('.', '.') => Some(".."),
                    _ => None,
                }
            } else {
                None
            };
            if let Some(t) = two {
                out.push(Token { text: t.into(), line: lineno, kind: TokKind::Punct });
                i += 2;
            } else {
                out.push(Token { text: c.to_string(), line: lineno, kind: TokKind::Punct });
                i += 1;
            }
        }
    }
    out
}

/// What a call expression names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `a::b::c(...)` — the full path as written (leading `crate`/`self`
    /// /`super` segments included).
    Path(Vec<String>),
    /// `.m(...)` — a method call by name.
    Method(String),
}

impl Callee {
    /// The called function's bare name.
    pub fn name(&self) -> &str {
        match self {
            Callee::Path(p) => p.last().map(String::as_str).unwrap_or(""),
            Callee::Method(m) => m,
        }
    }

    /// The path qualifier segment directly before the name, if any.
    pub fn qualifier(&self) -> Option<&str> {
        match self {
            Callee::Path(p) if p.len() >= 2 => Some(p[p.len() - 2].as_str()),
            _ => None,
        }
    }

    /// First path segment after stripping `crate`/`self`/`super`.
    pub fn first_segment(&self) -> Option<&str> {
        match self {
            Callee::Path(p) => {
                p.iter().map(String::as_str).find(|s| !matches!(*s, "crate" | "self" | "super"))
            }
            Callee::Method(_) => None,
        }
    }
}

/// Ident/literal flow into one call argument (idents are collected at
/// every nesting depth inside the argument, so taint can see through
/// nested expressions).
#[derive(Debug, Clone, Default)]
pub struct ArgInfo {
    pub idents: Vec<String>,
    pub has_literal: bool,
}

/// One recorded call expression.
#[derive(Debug, Clone)]
pub struct Call {
    pub callee: Callee,
    pub args: Vec<ArgInfo>,
    pub line: usize,
}

/// One `let` binding.
#[derive(Debug, Clone, Default)]
pub struct LetBinding {
    /// Idents bound by the pattern (lowercase-initial only — variant and
    /// type names are skipped).
    pub names: Vec<String>,
    /// The pattern is exactly `_`.
    pub underscore: bool,
    /// Idents appearing anywhere in the initializer.
    pub init_idents: Vec<String>,
    /// Indices into the function's `calls` of initializer calls at the
    /// statement's own nesting depth; the last one produces the bound
    /// value (`a.b().c()` → `c`).
    pub init_top_calls: Vec<usize>,
    pub line: usize,
}

/// One potential panic site.
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub line: usize,
    pub what: &'static str,
}

/// One closure expression inside a function body. Closures are how code
/// enters rayon parallel regions (`par_iter().map(|x| …)`,
/// `spawn(move || …)`), so the concurrency rules need to know which
/// calls and idents sit inside one and which call received it as an
/// argument.
#[derive(Debug, Clone, Default)]
pub struct Closure {
    /// Idents bound by the parameter list (pattern idents, lowercase).
    pub params: Vec<String>,
    pub line: usize,
    /// Index into the function's `calls` of the innermost call whose
    /// argument list the closure appears in (`None` when the closure is
    /// bound outside any call, e.g. `let f = |x| …`).
    pub arg_of: Option<usize>,
    /// Indices into the function's `calls` of every call opened inside
    /// the closure body (including nested closures' calls).
    pub calls: Vec<usize>,
    /// Every ident occurrence inside the closure body.
    pub idents: Vec<String>,
}

/// One struct-literal expression (`Name { field: expr, .. }`). Field
/// sensitivity exists for the cache-key rules: the audit must see which
/// idents flow into which `CellKey` component, and whether a literal
/// names a field outside the declared key tuple.
#[derive(Debug, Clone, Default)]
pub struct StructLit {
    /// The literal's type name (last path segment as written).
    pub name: String,
    /// `(field, idents flowing into its initializer)` in source order;
    /// a shorthand field carries its own name as the single ident.
    pub fields: Vec<(String, Vec<String>)>,
    pub line: usize,
}

/// One parsed function (top-level, impl/trait method, or nested).
#[derive(Debug, Clone, Default)]
pub struct Function {
    pub name: String,
    /// The surrounding `impl`/`trait` type name, if any.
    pub impl_type: Option<String>,
    pub is_pub: bool,
    pub has_self: bool,
    /// Non-`self` parameters in declaration order.
    pub params: Vec<Param>,
    pub returns_result: bool,
    pub line: usize,
    /// Declared under `#[cfg(test)]` / `#[test]` (directly or via an
    /// enclosing module).
    pub in_test: bool,
    pub has_body: bool,
    pub calls: Vec<Call>,
    pub lets: Vec<LetBinding>,
    pub closures: Vec<Closure>,
    pub panics: Vec<PanicSite>,
    /// First segments (after `crate`/`self`/`super`) of every
    /// multi-segment path in the body — calls *and* plain paths like
    /// unit-struct or enum-variant constructions.
    pub path_refs: BTreeSet<String>,
    /// Every ident occurrence in the body, call-path segments and plain
    /// idents alike. The static-read taint detector intersects this
    /// with the workspace's declared `static` names.
    pub body_idents: BTreeSet<String>,
    /// Struct-literal expressions in body order.
    pub struct_lits: Vec<StructLit>,
}

/// One function parameter: bound pattern idents plus the type text.
#[derive(Debug, Clone, Default)]
pub struct Param {
    pub names: Vec<String>,
    pub ty: String,
}

/// A `mod name;` declaration.
#[derive(Debug, Clone)]
pub struct ModDecl {
    pub name: String,
    pub line: usize,
}

/// Parse result for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub functions: Vec<Function>,
    pub mod_decls: Vec<ModDecl>,
    /// Every ident appearing in `use` items (path segments and renames).
    pub use_idents: BTreeSet<String>,
    /// Structural errors (unbalanced delimiters at EOF). Empty for every
    /// first-party file — the parser smoke test asserts this.
    pub errors: Vec<String>,
}

/// Parses one source file.
pub fn parse_file(source: &str) -> ParsedFile {
    let lines = lex(source);
    let toks = tokenize(&lines);
    let mut p = Parser { toks, pos: 0, out: ParsedFile::default() };
    let ctx = Ctx { impl_type: None, in_test: false };
    p.items(&ctx, false);
    p.out
}

#[derive(Clone)]
struct Ctx {
    impl_type: Option<String>,
    in_test: bool,
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    out: ParsedFile,
}

/// A call whose argument list is still being scanned.
struct OpenCall {
    /// Index into the function's `calls`.
    ix: usize,
    /// Delimiter depth just inside the call's parens.
    inner: i64,
}

/// A `let` statement still being scanned.
struct OpenLet {
    binding: LetBinding,
    /// Delimiter depth at the `let` keyword.
    let_depth: i64,
    /// The initializer started (the `=` was seen).
    init_active: bool,
    /// Inside the pattern's type annotation (after `:`, before `=`).
    in_type: bool,
}

/// A struct literal whose field list is still being scanned.
struct OpenStructLit {
    /// Index into the function's `struct_lits`.
    ix: usize,
    /// Delimiter depth just inside the literal's brace.
    inner: i64,
    /// The next single ident at `inner` depth may be a field name.
    awaiting_name: bool,
    /// Index into `fields` of the initializer currently being fed.
    cur_field: Option<usize>,
}

/// A closure whose body is still being scanned.
struct OpenClosure {
    /// Index into the function's `closures`.
    ix: usize,
    /// Delimiter depth at the closure's `|params|` (the body ends at a
    /// `,`/`;` at this depth or when a close delimiter drops below it).
    entry_depth: i64,
}

fn close_closures(closures: &mut Vec<OpenClosure>, depth: i64) {
    while closures.last().is_some_and(|c| c.entry_depth > depth) {
        closures.pop();
    }
}

fn end_closures_at(closures: &mut Vec<OpenClosure>, depth: i64) {
    while closures.last().is_some_and(|c| c.entry_depth >= depth) {
        closures.pop();
    }
}

fn close_struct_lits(struct_lits: &mut Vec<OpenStructLit>, depth: i64) {
    while struct_lits.last().is_some_and(|s| s.inner > depth) {
        struct_lits.pop();
    }
}

/// Feeds an ident occurrence into the innermost struct literal's
/// currently-active field initializer.
fn feed_struct_field(f: &mut Function, struct_lits: &[OpenStructLit], name: &str) {
    if let Some(top) = struct_lits.last() {
        if let Some(fi) = top.cur_field {
            if let Some(sl) = f.struct_lits.get_mut(top.ix) {
                if let Some((_, idents)) = sl.fields.get_mut(fi) {
                    idents.push(name.to_string());
                }
            }
        }
    }
}

fn close_calls(f: &mut Function, calls: &mut Vec<OpenCall>, depth: i64) {
    while calls.last().is_some_and(|c| c.inner > depth) {
        if let Some(top) = calls.pop() {
            if let Some(call) = f.calls.get_mut(top.ix) {
                if call.args.len() == 1
                    && call.args[0].idents.is_empty()
                    && !call.args[0].has_literal
                {
                    call.args.clear();
                }
            }
        }
    }
}

fn finish_lets(f: &mut Function, lets: &mut Vec<OpenLet>, depth: i64) {
    while lets.last().is_some_and(|l| l.let_depth >= depth) {
        if let Some(top) = lets.pop() {
            f.lets.push(top.binding);
        }
    }
}

fn feed_ident(
    f: &mut Function,
    calls: &[OpenCall],
    lets: &mut [OpenLet],
    closures: &[OpenClosure],
    name: &str,
) {
    for c in calls {
        if let Some(call) = f.calls.get_mut(c.ix) {
            if let Some(arg) = call.args.last_mut() {
                arg.idents.push(name.to_string());
            }
        }
    }
    for l in lets.iter_mut() {
        if l.init_active {
            l.binding.init_idents.push(name.to_string());
        }
    }
    for oc in closures {
        if let Some(cl) = f.closures.get_mut(oc.ix) {
            cl.idents.push(name.to_string());
        }
    }
}

/// Registers a freshly-opened call index with every open closure.
fn note_call(f: &mut Function, closures: &[OpenClosure], ix: usize) {
    for oc in closures {
        if let Some(cl) = f.closures.get_mut(oc.ix) {
            cl.calls.push(ix);
        }
    }
}

fn feed_literal(f: &mut Function, calls: &[OpenCall]) {
    for c in calls {
        if let Some(call) = f.calls.get_mut(c.ix) {
            if let Some(arg) = call.args.last_mut() {
                arg.has_literal = true;
            }
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "async"
            | "await"
            | "box"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "trait"
            | "true"
            | "type"
            | "union"
            | "unsafe"
            | "use"
            | "where"
            | "while"
    )
}

fn is_open(s: &str) -> bool {
    matches!(s, "(" | "[" | "{")
}

fn is_close(s: &str) -> bool {
    matches!(s, ")" | "]" | "}")
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&Token> {
        self.toks.get(self.pos + off)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn at_punct(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    }

    /// Skips a balanced delimiter group starting at the current opening
    /// token. Returns `false` (and records an error) when EOF arrives
    /// before balance is restored.
    fn skip_balanced(&mut self) -> bool {
        let mut depth = 0i64;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                if is_open(&t.text) {
                    depth += 1;
                } else if is_close(&t.text) {
                    depth -= 1;
                }
            }
            self.bump();
            if depth == 0 {
                return true;
            }
        }
        self.out.errors.push("unbalanced delimiters at end of file".into());
        false
    }

    /// Skips an angle-bracketed group (`<...>`) starting at `<`.
    fn skip_angles(&mut self) {
        let mut angle = 0i64;
        while let Some(t) = self.peek() {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "<") => angle += 1,
                (TokKind::Punct, ">") => angle -= 1,
                // A parenthesized group inside generics may contain
                // free-standing `<`/`>` only via nested generics, which
                // the counter already handles.
                _ => {}
            }
            self.bump();
            if angle == 0 {
                return;
            }
        }
    }

    /// Whether the `|` at the cursor begins a closure's parameter list.
    /// Two checks: the previous token must be an expression-*start*
    /// position (after `(`/`,`/`=`/`move`/… — a binary-or or or-pattern
    /// `|` always follows an expression or pattern end), and a matching
    /// `|` must close the parameter list before any token that cannot
    /// appear inside one (`{`, `}`, `;`, `=>`).
    fn closure_starts_here(&self) -> bool {
        let prev_ok = match self.pos.checked_sub(1).and_then(|i| self.toks.get(i)) {
            None => true,
            Some(t) => match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "(" | "[" | "{" | "," | ";" | "=" | "=>" | ":" | "?" | "&") => {
                    true
                }
                (TokKind::Ident, "move" | "return" | "else" | "in") => true,
                _ => false,
            },
        };
        if !prev_ok {
            return false;
        }
        // Zero-parameter closure: `||` arrives as two `|` tokens.
        let mut pd = 0i64;
        let mut k = 1usize;
        while let Some(t) = self.peek_at(k) {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "|") if pd == 0 => return true,
                (TokKind::Punct, "(" | "[" | "<") => pd += 1,
                (TokKind::Punct, ")" | "]" | ">") => {
                    pd -= 1;
                    if pd < 0 {
                        return false;
                    }
                }
                (TokKind::Punct, "{" | "}" | ";" | "=>") => return false,
                _ => {}
            }
            k += 1;
            if k > 64 {
                return false; // parameter lists are short
            }
        }
        false
    }

    /// Consumes a closure's `|params|`, returning the bound pattern
    /// idents. The cursor sits at the opening `|` and is left just past
    /// the closing `|`.
    fn closure_params(&mut self) -> Vec<String> {
        self.bump(); // opening `|`
        let mut params = Vec::new();
        let mut in_type = false;
        let mut pd = 0i64;
        while let Some(t) = self.peek() {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "|") if pd == 0 => {
                    self.bump();
                    return params;
                }
                (TokKind::Punct, "(" | "[" | "<") => {
                    pd += 1;
                    self.bump();
                }
                (TokKind::Punct, ")" | "]" | ">") => {
                    pd -= 1;
                    self.bump();
                }
                (TokKind::Punct, ",") if pd == 0 => {
                    in_type = false;
                    self.bump();
                }
                (TokKind::Punct, ":") => {
                    in_type = true;
                    self.bump();
                }
                (TokKind::Ident, s)
                    if !in_type
                        && !is_keyword(s)
                        && s != "_"
                        && s.chars().next().is_some_and(|c| c.is_lowercase() || c == '_') =>
                {
                    params.push(s.to_string());
                    self.bump();
                }
                _ => self.bump(),
            }
        }
        params
    }

    /// Consumes one attribute (`#[...]` or `#![...]`) and reports
    /// whether it marks a test context (`#[test]`, `#[cfg(test)]`,
    /// `#[tokio::test]` — but not `#[cfg(not(test))]`).
    fn attribute(&mut self) -> bool {
        self.bump(); // `#`
        if self.at_punct("!") {
            self.bump();
        }
        if !self.at_punct("[") {
            return false;
        }
        let start = self.pos;
        self.skip_balanced();
        let body = &self.toks[start..self.pos];
        let has = |s: &str| body.iter().any(|t| t.kind == TokKind::Ident && t.text == s);
        has("test") && !has("not")
    }

    /// Parses items until EOF (`brace_terminated == false`) or the
    /// closing `}` of the enclosing block.
    fn items(&mut self, ctx: &Ctx, brace_terminated: bool) {
        let mut pending_test = false;
        let mut pending_pub = false;
        loop {
            let Some(tok) = self.peek() else {
                if brace_terminated {
                    self.out.errors.push("unbalanced delimiters at end of file".into());
                }
                return;
            };
            let text = tok.text.clone();
            match (tok.kind, text.as_str()) {
                (TokKind::Punct, "#") => {
                    pending_test |= self.attribute();
                    continue;
                }
                (TokKind::Punct, "}") => {
                    self.bump();
                    if brace_terminated {
                        return;
                    }
                    self.out.errors.push("unbalanced `}` at top level".into());
                    pending_test = false;
                    pending_pub = false;
                }
                (TokKind::Ident, "pub") => {
                    pending_pub = true;
                    self.bump();
                    if self.at_punct("(") {
                        self.skip_balanced();
                    }
                }
                (TokKind::Ident, "unsafe" | "async") => self.bump(),
                (TokKind::Ident, "extern") => {
                    self.bump();
                    if self.peek().is_some_and(|t| t.kind == TokKind::Str) {
                        self.bump();
                    }
                    if self.at_punct("{") {
                        self.bump();
                        self.items(ctx, true);
                        pending_test = false;
                        pending_pub = false;
                    }
                    // `extern fn` / `extern crate` fall through to the
                    // next iteration.
                }
                (TokKind::Ident, "const" | "static") => {
                    if self.peek_at(1).is_some_and(|t| t.text == "fn") {
                        self.bump(); // qualifier before `fn`
                    } else {
                        self.skip_to_semicolon();
                        pending_test = false;
                        pending_pub = false;
                    }
                }
                (TokKind::Ident, "fn") => {
                    let in_test = ctx.in_test || pending_test;
                    let f = self.fn_item(pending_pub, ctx, in_test);
                    self.out.functions.push(f);
                    pending_test = false;
                    pending_pub = false;
                }
                (TokKind::Ident, "mod") => {
                    self.bump();
                    let (name, line) = match self.peek() {
                        Some(t) if t.kind == TokKind::Ident => (t.text.clone(), t.line),
                        _ => (String::new(), 0),
                    };
                    if !name.is_empty() {
                        self.bump();
                    }
                    if self.at_punct(";") {
                        self.bump();
                        if !name.is_empty() {
                            self.out.mod_decls.push(ModDecl { name, line });
                        }
                    } else if self.at_punct("{") {
                        self.bump();
                        let inner = Ctx { impl_type: None, in_test: ctx.in_test || pending_test };
                        self.items(&inner, true);
                    }
                    pending_test = false;
                    pending_pub = false;
                }
                (TokKind::Ident, "impl" | "trait") => {
                    let is_trait = text == "trait";
                    self.bump();
                    let ty = self.impl_header(is_trait);
                    if self.at_punct("{") {
                        self.bump();
                        let inner = Ctx { impl_type: ty, in_test: ctx.in_test || pending_test };
                        self.items(&inner, true);
                    } else if self.at_punct(";") {
                        self.bump();
                    }
                    pending_test = false;
                    pending_pub = false;
                }
                (TokKind::Ident, "use") => {
                    self.bump();
                    while let Some(t) = self.peek() {
                        if t.kind == TokKind::Punct && t.text == ";" {
                            self.bump();
                            break;
                        }
                        if t.kind == TokKind::Ident && !is_keyword(&t.text) {
                            self.out.use_idents.insert(t.text.clone());
                        }
                        self.bump();
                    }
                    pending_test = false;
                    pending_pub = false;
                }
                (TokKind::Ident, "struct" | "enum" | "union") => {
                    self.bump();
                    // name, generics, then `;` or tuple-body`;` or braces.
                    while let Some(t) = self.peek() {
                        match (t.kind, t.text.as_str()) {
                            (TokKind::Punct, ";") => {
                                self.bump();
                                break;
                            }
                            (TokKind::Punct, "{") => {
                                self.skip_balanced();
                                break;
                            }
                            (TokKind::Punct, "(") => {
                                self.skip_balanced();
                            }
                            (TokKind::Punct, "<") => self.skip_angles(),
                            _ => self.bump(),
                        }
                    }
                    pending_test = false;
                    pending_pub = false;
                }
                (TokKind::Ident, "type") => {
                    self.skip_to_semicolon();
                    pending_test = false;
                    pending_pub = false;
                }
                (TokKind::Ident, "macro_rules") => {
                    self.bump();
                    if self.at_punct("!") {
                        self.bump();
                    }
                    if self.peek().is_some_and(|t| t.kind == TokKind::Ident) {
                        self.bump();
                    }
                    if self.peek().is_some_and(|t| is_open(&t.text)) {
                        self.skip_balanced();
                    }
                    pending_test = false;
                    pending_pub = false;
                }
                _ => {
                    // Unknown item syntax: skip one token (tolerant
                    // recovery), balancing any group it opens.
                    if self.peek().is_some_and(|t| t.kind == TokKind::Punct && is_open(&t.text)) {
                        self.skip_balanced();
                    } else {
                        self.bump();
                    }
                    pending_test = false;
                    pending_pub = false;
                }
            }
        }
    }

    fn skip_to_semicolon(&mut self) {
        while let Some(t) = self.peek() {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, ";") => {
                    self.bump();
                    return;
                }
                (TokKind::Punct, "(" | "[" | "{") => {
                    self.skip_balanced();
                }
                _ => self.bump(),
            }
        }
    }

    /// Parses the `impl`/`trait` header up to (not including) the body
    /// brace, returning the implemented type (or trait) name.
    fn impl_header(&mut self, is_trait: bool) -> Option<String> {
        let mut ty: Option<String> = None;
        while let Some(t) = self.peek() {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "{" | ";") => break,
                (TokKind::Punct, "<") => self.skip_angles(),
                (TokKind::Ident, "for") if !is_trait => {
                    // `impl Trait for Type` — the type is what counts.
                    ty = None;
                    self.bump();
                }
                (TokKind::Ident, "where") => {
                    // Consume the where clause up to the body.
                    while let Some(w) = self.peek() {
                        if w.kind == TokKind::Punct && (w.text == "{" || w.text == ";") {
                            break;
                        }
                        if w.kind == TokKind::Punct && w.text == "<" {
                            self.skip_angles();
                        } else {
                            self.bump();
                        }
                    }
                    break;
                }
                (TokKind::Ident, s) if !is_keyword(s) => {
                    if ty.is_none() {
                        ty = Some(s.to_string());
                    }
                    self.bump();
                }
                _ => self.bump(),
            }
        }
        ty
    }

    /// Parses a function starting at the `fn` keyword.
    fn fn_item(&mut self, is_pub: bool, ctx: &Ctx, in_test: bool) -> Function {
        self.bump(); // `fn`
        let mut f =
            Function { impl_type: ctx.impl_type.clone(), is_pub, in_test, ..Function::default() };
        if let Some(t) = self.peek() {
            if t.kind == TokKind::Ident {
                f.name = t.text.clone();
                f.line = t.line;
                self.bump();
            }
        }
        if self.at_punct("<") {
            self.skip_angles();
        }
        if self.at_punct("(") {
            self.bump();
            self.params(&mut f);
        }
        if self.at_punct("->") {
            self.bump();
            let mut angle = 0i64;
            while let Some(t) = self.peek() {
                match (t.kind, t.text.as_str()) {
                    (TokKind::Punct, "{" | ";") if angle == 0 => break,
                    (TokKind::Ident, "where") if angle == 0 => break,
                    (TokKind::Punct, "<") => angle += 1,
                    (TokKind::Punct, ">") => angle -= 1,
                    (TokKind::Ident, "Result") => f.returns_result = true,
                    _ => {}
                }
                self.bump();
            }
        }
        if self.at_ident("where") {
            while let Some(t) = self.peek() {
                if t.kind == TokKind::Punct && (t.text == "{" || t.text == ";") {
                    break;
                }
                if t.kind == TokKind::Punct && t.text == "<" {
                    self.skip_angles();
                } else {
                    self.bump();
                }
            }
        }
        if self.at_punct(";") {
            self.bump();
        } else if self.at_punct("{") {
            self.bump();
            f.has_body = true;
            let body_ctx = Ctx { impl_type: f.impl_type.clone(), in_test: f.in_test };
            self.scan_body(&mut f, &body_ctx);
        }
        f
    }

    /// Parses the parameter list; the cursor sits just past the open
    /// paren and is left just past the close paren.
    fn params(&mut self, f: &mut Function) {
        let mut cur: Vec<Token> = Vec::new();
        let mut depth = 1i64; // the fn's own paren
        let mut angle = 0i64;
        let mut first = true;
        loop {
            let Some(t) = self.peek() else { return };
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "(" | "[") => {
                    depth += 1;
                    cur.push(t.clone());
                    self.bump();
                }
                (TokKind::Punct, ")" | "]") => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        Self::finish_param(f, &cur, first);
                        return;
                    }
                    cur.push(t.clone());
                    self.bump();
                }
                (TokKind::Punct, "<") => {
                    angle += 1;
                    cur.push(t.clone());
                    self.bump();
                }
                (TokKind::Punct, ">") => {
                    angle -= 1;
                    cur.push(t.clone());
                    self.bump();
                }
                (TokKind::Punct, ",") if depth == 1 && angle <= 0 => {
                    Self::finish_param(f, &cur, first);
                    cur.clear();
                    first = false;
                    self.bump();
                }
                _ => {
                    cur.push(t.clone());
                    self.bump();
                }
            }
        }
    }

    fn finish_param(f: &mut Function, toks: &[Token], first: bool) {
        if toks.is_empty() {
            return;
        }
        if first && toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "self") {
            f.has_self = true;
            return;
        }
        // Split pattern from type at the first top-level `:` (a lone
        // colon; `::` is its own token).
        let mut split = toks.len();
        let mut pd = 0i64;
        for (i, t) in toks.iter().enumerate() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => pd += 1,
                    ")" | "]" => pd -= 1,
                    ":" if pd == 0 => {
                        split = i;
                        break;
                    }
                    _ => {}
                }
            }
        }
        let mut p = Param::default();
        for t in &toks[..split] {
            if t.kind == TokKind::Ident
                && !is_keyword(&t.text)
                && t.text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
                && t.text != "_"
            {
                p.names.push(t.text.clone());
            }
        }
        if split < toks.len() {
            let ty: Vec<&str> = toks[split + 1..].iter().map(|t| t.text.as_str()).collect();
            p.ty = ty.join(" ");
        }
        f.params.push(p);
    }

    /// Linear body scan; the cursor sits just past the open brace and is
    /// left just past the matching close brace.
    fn scan_body(&mut self, f: &mut Function, ctx: &Ctx) {
        let mut depth = 1i64;
        let mut calls: Vec<OpenCall> = Vec::new();
        let mut lets: Vec<OpenLet> = Vec::new();
        let mut closures: Vec<OpenClosure> = Vec::new();
        let mut struct_lits: Vec<OpenStructLit> = Vec::new();

        while let Some(tok) = self.peek() {
            let kind = tok.kind;
            let text = tok.text.clone();
            let line = tok.line;
            match (kind, text.as_str()) {
                (TokKind::Punct, "#") => {
                    self.bump();
                    if self.at_punct("!") {
                        self.bump();
                    }
                    if self.at_punct("[") {
                        self.skip_balanced();
                    }
                }
                (TokKind::Punct, "(" | "[" | "{") => {
                    depth += 1;
                    self.bump();
                }
                (TokKind::Punct, ")" | "]" | "}") => {
                    depth -= 1;
                    self.bump();
                    close_calls(f, &mut calls, depth);
                    close_closures(&mut closures, depth);
                    close_struct_lits(&mut struct_lits, depth);
                    finish_lets(f, &mut lets, depth + 1);
                    if depth == 0 {
                        finish_lets(f, &mut lets, 0);
                        return;
                    }
                }
                (TokKind::Punct, ";") => {
                    finish_lets(f, &mut lets, depth);
                    end_closures_at(&mut closures, depth);
                    self.bump();
                }
                (TokKind::Punct, ",") => {
                    end_closures_at(&mut closures, depth);
                    if let Some(top) = struct_lits.last_mut() {
                        if top.inner == depth {
                            top.awaiting_name = true;
                            top.cur_field = None;
                        }
                    }
                    if let Some(top) = calls.last() {
                        if top.inner == depth {
                            if let Some(call) = f.calls.get_mut(top.ix) {
                                call.args.push(ArgInfo::default());
                            }
                        }
                    }
                    self.bump();
                }
                (TokKind::Punct, "|") => {
                    if self.closure_starts_here() {
                        let cline = line;
                        let params = self.closure_params();
                        let ix = f.closures.len();
                        f.closures.push(Closure {
                            params,
                            line: cline,
                            arg_of: calls.last().map(|c| c.ix),
                            ..Closure::default()
                        });
                        closures.push(OpenClosure { ix, entry_depth: depth });
                    } else {
                        self.bump();
                    }
                }
                (TokKind::Punct, ":") => {
                    if let Some(top) = lets.last_mut() {
                        if !top.init_active && top.let_depth == depth {
                            top.in_type = true;
                        }
                    }
                    self.bump();
                }
                (TokKind::Punct, "=") => {
                    if let Some(top) = lets.last_mut() {
                        if !top.init_active && top.let_depth == depth {
                            top.init_active = true;
                            top.in_type = false;
                        }
                    }
                    self.bump();
                }
                (TokKind::Punct, ".") => {
                    // Method call: `.name(` or `.name::<...>(`.
                    let is_method = self
                        .peek_at(1)
                        .is_some_and(|t| t.kind == TokKind::Ident && !is_keyword(&t.text));
                    if is_method {
                        let name = self.peek_at(1).map(|t| t.text.clone()).unwrap_or_default();
                        let mline = self.peek_at(1).map(|t| t.line).unwrap_or(line);
                        let mut after = 2;
                        if self.peek_at(2).is_some_and(|t| t.text == "::")
                            && self.peek_at(3).is_some_and(|t| t.text == "<")
                        {
                            // Turbofish: find its extent.
                            let mut angle = 0i64;
                            let mut k = 3;
                            while let Some(t) = self.peek_at(k) {
                                if t.kind == TokKind::Punct && t.text == "<" {
                                    angle += 1;
                                } else if t.kind == TokKind::Punct && t.text == ">" {
                                    angle -= 1;
                                    if angle == 0 {
                                        k += 1;
                                        break;
                                    }
                                }
                                k += 1;
                            }
                            after = k;
                        }
                        if self.peek_at(after).is_some_and(|t| t.text == "(") {
                            if name == "unwrap" || name == "expect" {
                                f.panics.push(PanicSite {
                                    line: mline,
                                    what: if name == "unwrap" { ".unwrap()" } else { ".expect(" },
                                });
                            }
                            let ix = f.calls.len();
                            f.calls.push(Call {
                                callee: Callee::Method(name),
                                args: vec![ArgInfo::default()],
                                line: mline,
                            });
                            note_call(f, &closures, ix);
                            for l in lets.iter_mut() {
                                if l.init_active && l.let_depth == depth {
                                    l.binding.init_top_calls.push(ix);
                                }
                            }
                            for _ in 0..=after {
                                self.bump();
                            }
                            depth += 1;
                            calls.push(OpenCall { ix, inner: depth });
                            continue;
                        }
                    }
                    self.bump();
                }
                (TokKind::Ident, "let") => {
                    lets.push(OpenLet {
                        binding: LetBinding { line, ..LetBinding::default() },
                        let_depth: depth,
                        init_active: false,
                        in_type: false,
                    });
                    self.bump();
                }
                (TokKind::Ident, "fn") => {
                    if self.peek_at(1).is_some_and(|t| t.kind == TokKind::Ident) {
                        let nested = self.fn_item(false, ctx, ctx.in_test);
                        self.out.functions.push(nested);
                    } else {
                        self.bump(); // `fn(...)` pointer type
                    }
                }
                (TokKind::Ident, "_") => {
                    if let Some(top) = lets.last_mut() {
                        if !top.init_active && !top.in_type && top.let_depth == depth {
                            top.binding.underscore = true;
                        }
                    }
                    self.bump();
                }
                (TokKind::Ident, s) if is_keyword(s) => self.bump(),
                (TokKind::Ident, _) => {
                    self.scan_ident(
                        f,
                        &mut depth,
                        &mut calls,
                        &mut lets,
                        &closures,
                        &mut struct_lits,
                    );
                }
                (TokKind::Number | TokKind::Str | TokKind::CharLit, _) => {
                    feed_literal(f, &calls);
                    self.bump();
                }
                _ => self.bump(),
            }
        }
        // EOF inside a body.
        self.out.errors.push("unbalanced delimiters at end of file".into());
        finish_lets(f, &mut lets, 0);
    }

    /// Handles an identifier inside a body: a macro invocation, a path
    /// call, or a plain ident feeding open calls/let initializers.
    fn scan_ident(
        &mut self,
        f: &mut Function,
        depth: &mut i64,
        calls: &mut Vec<OpenCall>,
        lets: &mut Vec<OpenLet>,
        closures: &[OpenClosure],
        struct_lits: &mut Vec<OpenStructLit>,
    ) {
        let first = match self.peek() {
            Some(t) => t.clone(),
            None => return,
        };
        // Macro invocation: `name!` — the name is not a call; panic
        // macros are recorded as panic sites.
        if self.peek_at(1).is_some_and(|t| t.kind == TokKind::Punct && t.text == "!") {
            let what = match first.text.as_str() {
                "panic" => Some("panic!"),
                "unreachable" => Some("unreachable!"),
                "todo" => Some("todo!"),
                "unimplemented" => Some("unimplemented!"),
                _ => None,
            };
            if let Some(what) = what {
                f.panics.push(PanicSite { line: first.line, what });
            }
            self.bump();
            self.bump();
            return;
        }
        // Collect the `::`-joined path.
        let mut segs = vec![first.text.clone()];
        let mut k = 1usize;
        loop {
            let sep = self.peek_at(k).is_some_and(|t| t.text == "::");
            let next_ident = self
                .peek_at(k + 1)
                .is_some_and(|t| t.kind == TokKind::Ident && !is_keyword(&t.text));
            if sep && next_ident {
                if let Some(t) = self.peek_at(k + 1) {
                    segs.push(t.text.clone());
                }
                k += 2;
            } else {
                break;
            }
        }
        // Optional turbofish after the path.
        let mut after = k;
        if self.peek_at(k).is_some_and(|t| t.text == "::")
            && self.peek_at(k + 1).is_some_and(|t| t.text == "<")
        {
            let mut angle = 0i64;
            let mut j = k + 1;
            while let Some(t) = self.peek_at(j) {
                if t.kind == TokKind::Punct && t.text == "<" {
                    angle += 1;
                } else if t.kind == TokKind::Punct && t.text == ">" {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            after = j;
        }
        if segs.len() >= 2 {
            if let Some(seg) =
                segs.iter().find(|s| !matches!(s.as_str(), "crate" | "self" | "super"))
            {
                f.path_refs.insert(seg.clone());
            }
        }
        for seg in &segs {
            f.body_idents.insert(seg.clone());
        }
        let is_call = self.peek_at(after).is_some_and(|t| t.text == "(");
        if is_call {
            let ix = f.calls.len();
            f.calls.push(Call {
                callee: Callee::Path(segs),
                args: vec![ArgInfo::default()],
                line: first.line,
            });
            note_call(f, closures, ix);
            for l in lets.iter_mut() {
                if l.init_active && l.let_depth == *depth {
                    l.binding.init_top_calls.push(ix);
                }
            }
            for _ in 0..=after {
                self.bump();
            }
            *depth += 1;
            calls.push(OpenCall { ix, inner: *depth });
        } else {
            // Struct-literal field position: a single ident at the
            // literal's own depth followed by `:` names a field;
            // followed by `,`/`}` it is a shorthand field. Anything
            // else (a statement in a misdetected block, a path, …) just
            // stops the field search until the next top-level comma.
            let mut named_field = false;
            if segs.len() == 1 {
                if let Some(top) = struct_lits.last_mut() {
                    if top.inner == *depth && top.awaiting_name {
                        top.awaiting_name = false;
                        top.cur_field = None;
                        match self.peek_at(k).map(|t| (t.kind, t.text.as_str() == ":")) {
                            Some((TokKind::Punct, true)) => {
                                if let Some(sl) = f.struct_lits.get_mut(top.ix) {
                                    top.cur_field = Some(sl.fields.len());
                                    sl.fields.push((segs[0].clone(), Vec::new()));
                                }
                                named_field = true;
                            }
                            _ => {
                                let shorthand = self.peek_at(k).is_some_and(|t| {
                                    t.kind == TokKind::Punct && (t.text == "," || t.text == "}")
                                });
                                if shorthand {
                                    if let Some(sl) = f.struct_lits.get_mut(top.ix) {
                                        sl.fields.push((segs[0].clone(), vec![segs[0].clone()]));
                                    }
                                }
                            }
                        }
                    }
                }
            }
            // Plain path: feed every segment as an ident occurrence and
            // collect lowercase segments as pattern names when inside a
            // let pattern.
            for seg in &segs {
                feed_ident(f, calls, lets, closures, seg);
                if !named_field {
                    feed_struct_field(f, struct_lits, seg);
                }
                if let Some(top) = lets.last_mut() {
                    // Pattern idents may sit inside tuple/struct/variant
                    // sub-patterns, i.e. at a deeper delimiter depth.
                    if !top.init_active
                        && !top.in_type
                        && top.let_depth <= *depth
                        && seg != "_"
                        && !is_keyword(seg)
                        && seg.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
                    {
                        top.binding.names.push(seg.clone());
                    }
                }
            }
            for _ in 0..k {
                self.bump();
            }
            // A type-named path directly followed by `{` opens a struct
            // literal (`CellKey { … }`, `Self { … }`). Match scrutinees
            // can misdetect here (valid Rust bans literals in that
            // position, so this is over-approximation, not ambiguity);
            // the field grammar above keeps such blocks near-empty.
            let type_like =
                segs.last().is_some_and(|s| s.chars().next().is_some_and(char::is_uppercase));
            if type_like && !named_field && self.at_punct("{") {
                self.bump();
                *depth += 1;
                let ix = f.struct_lits.len();
                f.struct_lits.push(StructLit {
                    name: segs.last().cloned().unwrap_or_default(),
                    fields: Vec::new(),
                    line: first.line,
                });
                struct_lits.push(OpenStructLit {
                    ix,
                    inner: *depth,
                    awaiting_name: true,
                    cur_field: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        let p = parse_file(src);
        assert!(p.errors.is_empty(), "parse errors: {:?}", p.errors);
        p
    }

    #[test]
    fn fn_signature_and_params() {
        let p = parse(
            "pub fn train(xs: &[Vec<f64>], ys: &[f64], seed: u64) -> Result<Model, Error> {\n\
             }\n",
        );
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.name, "train");
        assert!(f.is_pub);
        assert!(f.returns_result);
        assert!(!f.has_self);
        let names: Vec<_> = f.params.iter().flat_map(|p| p.names.clone()).collect();
        assert_eq!(names, ["xs", "ys", "seed"]);
    }

    #[test]
    fn impl_methods_and_self() {
        let p = parse(
            "impl Model {\n    pub fn fit(&mut self, x: &Table) -> usize { self.n }\n}\n\
             impl Clone for Model {\n    fn clone(&self) -> Model { Model::new() }\n}\n",
        );
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.functions[0].impl_type.as_deref(), Some("Model"));
        assert!(p.functions[0].has_self);
        assert_eq!(p.functions[1].impl_type.as_deref(), Some("Model"));
    }

    #[test]
    fn calls_paths_methods_and_args() {
        let p = parse(
            "fn go(seed: u64) {\n\
                 let rng = StdRng::seed_from_u64(derive(seed, 3));\n\
                 model.fit(&xtr, &ytr);\n\
             }\n",
        );
        let f = &p.functions[0];
        let callees: Vec<_> = f.calls.iter().map(|c| c.callee.name().to_string()).collect();
        assert_eq!(callees, ["seed_from_u64", "derive", "fit"]);
        // The outer call's single argument sees idents at every depth.
        assert_eq!(f.calls[0].args.len(), 1);
        assert!(f.calls[0].args[0].idents.contains(&"seed".to_string()));
        assert!(f.calls[0].args[0].has_literal);
        // Method args split at top-level commas.
        assert_eq!(f.calls[2].args.len(), 2);
        assert_eq!(f.calls[2].args[0].idents, ["xtr"]);
    }

    #[test]
    fn let_bindings_and_underscore() {
        let p = parse(
            "fn go() {\n\
                 let _ = load();\n\
                 let (a, b) = pair();\n\
                 let x: usize = a.len();\n\
             }\n",
        );
        let f = &p.functions[0];
        assert_eq!(f.lets.len(), 3);
        assert!(f.lets[0].underscore);
        assert_eq!(f.lets[0].init_top_calls.len(), 1);
        assert_eq!(f.calls[f.lets[0].init_top_calls[0]].callee.name(), "load");
        assert_eq!(f.lets[1].names, ["a", "b"]);
        assert_eq!(f.lets[2].names, ["x"]);
        assert!(f.lets[2].init_idents.contains(&"a".to_string()));
    }

    #[test]
    fn chained_calls_last_top_call_wins() {
        let p = parse("fn go() { let _ = builder().step().finish(); }\n");
        let f = &p.functions[0];
        let top = &f.lets[0].init_top_calls;
        assert_eq!(f.calls[*top.last().expect("top calls")].callee.name(), "finish");
    }

    #[test]
    fn panic_sites_and_macros() {
        let p = parse(
            "fn go(o: Option<u8>) {\n\
                 o.unwrap();\n\
                 o.expect(\"msg\");\n\
                 panic!(\"boom\");\n\
                 writeln!(f, \"x\").ok();\n\
             }\n",
        );
        let f = &p.functions[0];
        let whats: Vec<_> = f.panics.iter().map(|s| s.what).collect();
        assert_eq!(whats, [".unwrap()", ".expect(", "panic!"]);
        // `writeln!` is a macro, not a call.
        assert!(!f.calls.iter().any(|c| c.callee.name() == "writeln"));
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let p = parse(
            "fn lib_fn() {}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { helper(); }\n}\n\
             #[cfg(not(test))]\nfn shipped() {}\n",
        );
        let by_name = |n: &str| p.functions.iter().find(|f| f.name == n).expect("fn");
        assert!(!by_name("lib_fn").in_test);
        assert!(by_name("t").in_test);
        assert!(!by_name("shipped").in_test);
    }

    #[test]
    fn mod_decls_and_uses() {
        let p = parse(
            "mod katara;\npub mod raha;\nuse crate::features::FeatureSet;\n\
             pub use context::DetectorContext;\n",
        );
        let mods: Vec<_> = p.mod_decls.iter().map(|m| m.name.clone()).collect();
        assert_eq!(mods, ["katara", "raha"]);
        assert!(p.use_idents.contains("features"));
        assert!(p.use_idents.contains("context"));
        assert!(p.use_idents.contains("DetectorContext"));
    }

    #[test]
    fn turbofish_and_generics() {
        let p = parse(
            "fn go() {\n\
                 let v = xs.iter().map(f).collect::<Vec<_>>();\n\
                 let w = Vec::<u8>::with_capacity(4);\n\
                 if a < b && c > d { noop(); }\n\
             }\n",
        );
        let f = &p.functions[0];
        assert!(f.calls.iter().any(|c| c.callee.name() == "collect"));
        assert!(f.calls.iter().any(|c| c.callee.name() == "noop"));
    }

    #[test]
    fn nested_fn_is_parsed() {
        let p = parse("fn outer() {\n    fn inner(x: u8) { x.count_ones(); }\n    inner(3);\n}\n");
        assert_eq!(p.functions.len(), 2);
        assert!(p.functions.iter().any(|f| f.name == "inner"));
    }

    #[test]
    fn closures_record_params_arg_of_calls_and_idents() {
        let p = parse(
            "fn go(seed: u64) {\n\
                 let xs = items.par_iter().map(|i| derive(seed, i)).collect();\n\
                 spawn(move || helper(seed));\n\
             }\n",
        );
        let f = &p.functions[0];
        assert_eq!(f.closures.len(), 2, "{:?}", f.closures);
        let c0 = &f.closures[0];
        assert_eq!(c0.params, ["i"]);
        assert_eq!(f.calls[c0.arg_of.expect("arg_of")].callee.name(), "map");
        assert!(c0.calls.iter().any(|&ix| f.calls[ix].callee.name() == "derive"));
        assert!(c0.idents.contains(&"seed".to_string()));
        let c1 = &f.closures[1];
        assert!(c1.params.is_empty());
        assert_eq!(f.calls[c1.arg_of.expect("arg_of")].callee.name(), "spawn");
        assert!(c1.calls.iter().any(|&ix| f.calls[ix].callee.name() == "helper"));
    }

    #[test]
    fn or_patterns_and_binary_or_are_not_closures() {
        let p = parse(
            "fn go(a: u8, b: u8) -> u8 {\n\
                 match a { 1 | 2 => a | b, _ => if a > 1 || b > 1 { 1 } else { 0 } }\n\
             }\n",
        );
        assert!(p.functions[0].closures.is_empty(), "{:?}", p.functions[0].closures);
    }

    #[test]
    fn braced_closure_body_ends_at_its_brace() {
        let p = parse("fn go() { run(|x| { inner(x); }); after(); }\n");
        let f = &p.functions[0];
        assert_eq!(f.closures.len(), 1);
        let member =
            |name: &str| f.closures[0].calls.iter().any(|&ix| f.calls[ix].callee.name() == name);
        assert!(member("inner"));
        assert!(!member("after"));
    }

    #[test]
    fn sibling_closure_args_stay_separate() {
        let p = parse("fn go() { join(|| left(), || right()); }\n");
        let f = &p.functions[0];
        assert_eq!(f.closures.len(), 2);
        let names = |c: &Closure| -> Vec<String> {
            c.calls.iter().map(|&ix| f.calls[ix].callee.name().to_string()).collect()
        };
        assert_eq!(names(&f.closures[0]), ["left"]);
        assert_eq!(names(&f.closures[1]), ["right"]);
    }

    #[test]
    fn closure_patterns_and_typed_params() {
        let p = parse(
            "fn go() {\n\
                 pairs.iter().filter(|&(a, b)| a > b).for_each(|x: Vec<u8>| sink(x));\n\
                 let f = |n: usize| n + 1;\n\
             }\n",
        );
        let f = &p.functions[0];
        assert_eq!(f.closures.len(), 3);
        assert_eq!(f.closures[0].params, ["a", "b"]);
        assert_eq!(f.closures[1].params, ["x"]);
        let c2 = &f.closures[2];
        assert_eq!(c2.params, ["n"]);
        assert!(c2.arg_of.is_none(), "let-bound closure is not a call argument");
    }

    #[test]
    fn struct_literals_record_fields_and_ident_flow() {
        let p = parse(
            "fn build(seed: u64, scale: f64) -> CellKey {\n\
                 let strategy = label();\n\
                 CellKey { dataset: name.clone(), seed: derive(seed, 1), scale, strategy }\n\
             }\n",
        );
        let f = &p.functions[0];
        assert_eq!(f.struct_lits.len(), 1, "{:?}", f.struct_lits);
        let sl = &f.struct_lits[0];
        assert_eq!(sl.name, "CellKey");
        let names: Vec<&str> = sl.fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["dataset", "seed", "scale", "strategy"]);
        let field = |n: &str| &sl.fields.iter().find(|(f2, _)| f2 == n).expect("field").1;
        assert!(field("dataset").contains(&"name".to_string()));
        assert!(field("seed").contains(&"seed".to_string()));
        assert!(!field("seed").contains(&"name".to_string()), "fields stay separate");
        assert_eq!(field("scale"), &["scale"], "shorthand carries its own name");
    }

    #[test]
    fn nested_struct_literals_close_cleanly() {
        let p = parse(
            "fn go() -> Outer {\n\
                 Outer { inner: Inner { a: left, b }, tail: right }\n\
             }\n",
        );
        let f = &p.functions[0];
        assert_eq!(f.struct_lits.len(), 2, "{:?}", f.struct_lits);
        let outer = f.struct_lits.iter().find(|s| s.name == "Outer").expect("outer");
        let inner = f.struct_lits.iter().find(|s| s.name == "Inner").expect("inner");
        let names =
            |s: &StructLit| -> Vec<String> { s.fields.iter().map(|(n, _)| n.clone()).collect() };
        assert_eq!(names(outer), ["inner", "tail"]);
        assert_eq!(names(inner), ["a", "b"]);
        assert!(outer.fields[1].1.contains(&"right".to_string()));
    }

    #[test]
    fn body_idents_cover_plain_and_path_references() {
        let p = parse(
            "fn go() {\n\
                 DRAWS.fetch_add(1);\n\
                 let x = helper(COUNT);\n\
                 std::env::var(\"K\").ok();\n\
             }\n",
        );
        let f = &p.functions[0];
        for id in ["DRAWS", "COUNT", "env", "var", "helper"] {
            assert!(f.body_idents.contains(id), "missing {id}: {:?}", f.body_idents);
        }
    }

    #[test]
    fn enum_variant_paths_are_not_fn_calls_to_resolve() {
        let p = parse("fn go() -> Option<u8> { Some(compute()) }\n");
        let f = &p.functions[0];
        // `Some(...)` is recorded as a path call; resolution (not the
        // parser) decides it is not first-party. `compute` is inside.
        assert!(f.calls.iter().any(|c| c.callee.name() == "compute"));
    }
}
