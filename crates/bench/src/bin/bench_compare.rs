//! Wilcoxon-gated perf regression comparator for `BENCH_<n>.json`
//! reports produced by `perf_baseline`.
//!
//! ```text
//! cargo run -p rein-bench --bin bench_compare -- BASELINE CURRENT \
//!     [--alpha 0.05] [--threshold 1.10] [--report-only]
//! cargo run -p rein-bench --bin bench_compare -- --self-test
//! ```
//!
//! A benchmark regresses when the paired Wilcoxon signed-rank test over
//! its repeat timings rejects at `alpha` *and* the median slowdown
//! exceeds `threshold`. Exit codes: 0 = no regressions (or
//! `--report-only`), 1 = regressions found, 2 = usage or I/O error.
//!
//! `--self-test` proves the gate end to end on synthetic data: identical
//! reports compare clean, and an injected 2× slowdown is flagged at
//! p < 0.05.
#![allow(clippy::print_stdout)]
// audit:allow-file(telemetry-phases, comparator tool over existing reports, not a benchmark run — no phases or manifest to record)

use std::path::PathBuf;

use rein_bench::perf::CompareConfig;
use rein_bench::perf::{comparator_self_test, compare_reports, render_comparison, BenchReport};

struct Args {
    baseline: PathBuf,
    current: PathBuf,
    cfg: CompareConfig,
    report_only: bool,
}

const USAGE: &str = "usage: bench_compare BASELINE CURRENT \
                     [--alpha A] [--threshold R] [--report-only] | --self-test";

fn parse_args() -> Result<Option<Args>, String> {
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut cfg = CompareConfig::default();
    let mut report_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--self-test" => return Ok(None),
            "--report-only" => report_only = true,
            "--alpha" => {
                let raw = args.next().ok_or("--alpha requires a value")?;
                cfg.alpha = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|a| *a > 0.0 && *a < 1.0)
                    .ok_or(format!("--alpha {raw:?}: want a number in (0, 1)"))?;
            }
            "--threshold" => {
                let raw = args.next().ok_or("--threshold requires a value")?;
                cfg.min_ratio = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|r| *r > 1.0 && r.is_finite())
                    .ok_or(format!("--threshold {raw:?}: want a ratio > 1, e.g. 1.10"))?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}\n{USAGE}"))
            }
            _ => positional.push(PathBuf::from(arg)),
        }
    }
    match positional.len() {
        2 => {
            let mut it = positional.into_iter();
            let baseline = it.next().unwrap();
            let current = it.next().unwrap();
            Ok(Some(Args { baseline, current, cfg, report_only }))
        }
        _ => Err(format!("expected exactly two report paths\n{USAGE}")),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => match comparator_self_test() {
            Ok(summary) => {
                println!("{summary}");
                return;
            }
            Err(e) => {
                eprintln!("error: comparator self-test failed: {e}");
                std::process::exit(2);
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let load = |path: &PathBuf| match BenchReport::load(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let baseline = load(&args.baseline);
    let current = load(&args.current);
    if baseline.env.scale != current.env.scale {
        eprintln!(
            "warning: comparing different scales (baseline {}, current {}); \
             ratios mix workload size with speed",
            baseline.env.scale, current.env.scale
        );
    }
    if baseline.env.threads != current.env.threads
        || baseline.env.single_core != current.env.single_core
    {
        let describe = |env: &rein_bench::perf::BenchEnv| {
            format!(
                "{} thread(s){}",
                env.threads,
                if env.single_core { ", single-core host" } else { "" }
            )
        };
        eprintln!("==================================================================");
        eprintln!("WARNING: core counts differ between the two reports.");
        eprintln!("  baseline: {}", describe(&baseline.env));
        eprintln!("  current:  {}", describe(&current.env));
        eprintln!("Timing ratios below mix hardware parallelism with code speed;");
        eprintln!("parallel-grid regressions/improvements reported here are NOT");
        eprintln!("attributable to the code change. Re-run both reports on the");
        eprintln!("same machine (or pin RAYON_NUM_THREADS) before trusting them.");
        eprintln!("==================================================================");
    }

    let cmp = compare_reports(&baseline, &current, &args.cfg);
    print!("{}", render_comparison(&cmp));
    if cmp.regressions > 0 && !args.report_only {
        std::process::exit(1);
    }
}
