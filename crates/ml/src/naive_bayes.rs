//! Naïve Bayes: Gaussian (continuous features) and Multinomial
//! (count-like / one-hot features, with min-shift to non-negativity).

use crate::linalg::Matrix;
use crate::logistic::softmax_in_place;
use crate::model::Classifier;

/// Gaussian naïve Bayes with per-class feature means and variances.
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    priors: Vec<f64>,
    means: Vec<Vec<f64>>,
    vars: Vec<Vec<f64>>,
}

impl GaussianNb {
    fn log_likelihood(&self, xr: &[f64], c: usize) -> f64 {
        let mut ll = self.priors[c].max(1e-12).ln();
        for (f, &x) in xr.iter().enumerate() {
            let mean = self.means[c][f];
            let var = self.vars[c][f];
            ll += -0.5 * ((x - mean).powi(2) / var + var.ln() + (2.0 * std::f64::consts::PI).ln());
        }
        ll
    }
}

impl Classifier for GaussianNb {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        let n = x.rows();
        let d = x.cols();
        let n_classes = n_classes.max(1);
        self.priors = vec![0.0; n_classes];
        self.means = vec![vec![0.0; d]; n_classes];
        self.vars = vec![vec![1.0; d]; n_classes];
        if n == 0 {
            self.priors = vec![1.0 / n_classes as f64; n_classes];
            return;
        }
        let mut counts = vec![0usize; n_classes];
        for (r, &c) in y.iter().enumerate() {
            counts[c] += 1;
            for (m, &v) in self.means[c].iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for c in 0..n_classes {
            self.priors[c] = counts[c] as f64 / n as f64;
            if counts[c] > 0 {
                for m in &mut self.means[c] {
                    *m /= counts[c] as f64;
                }
            }
        }
        // Variance smoothing à la sklearn: add 1e-9 × max feature variance.
        let mut sq = vec![vec![0.0; d]; n_classes];
        for (r, &c) in y.iter().enumerate() {
            for (s, (&v, &m)) in sq[c].iter_mut().zip(x.row(r).iter().zip(&self.means[c])) {
                *s += (v - m).powi(2);
            }
        }
        let mut max_var = 1e-9f64;
        for c in 0..n_classes {
            if counts[c] > 0 {
                for (vv, s) in self.vars[c].iter_mut().zip(&sq[c]) {
                    *vv = s / counts[c] as f64;
                    max_var = max_var.max(*vv);
                }
            }
        }
        let eps = 1e-9 * max_var;
        for c in 0..n_classes {
            for vv in &mut self.vars[c] {
                *vv = (*vv + eps).max(1e-12);
            }
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows())
            .map(|r| {
                (0..self.priors.len())
                    .max_by(|&a, &b| {
                        self.log_likelihood(x.row(r), a)
                            .total_cmp(&self.log_likelihood(x.row(r), b))
                    })
                    .unwrap_or(0)
            })
            .collect()
    }

    fn predict_proba(&self, x: &Matrix, n_classes: usize) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), n_classes);
        for r in 0..x.rows() {
            let mut lls: Vec<f64> = (0..self.priors.len().min(n_classes))
                .map(|c| self.log_likelihood(x.row(r), c))
                .collect();
            softmax_in_place(&mut lls);
            out.row_mut(r)[..lls.len()].copy_from_slice(&lls);
        }
        out
    }
}

/// Multinomial naïve Bayes with Laplace smoothing.
///
/// Features must be non-negative counts; since our encoder standardises
/// numerics (producing negatives), features are min-shifted per column at
/// fit time — the same workaround practitioners use to run sklearn's
/// `MultinomialNB` on standardised data.
#[derive(Debug, Clone, Default)]
pub struct MultinomialNb {
    priors: Vec<f64>,
    feature_log_prob: Vec<Vec<f64>>,
    shifts: Vec<f64>,
}

impl Classifier for MultinomialNb {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        let n = x.rows();
        let d = x.cols();
        let n_classes = n_classes.max(1);
        self.shifts = vec![0.0; d];
        for f in 0..d {
            let min = (0..n).map(|r| x[(r, f)]).fold(0.0f64, f64::min);
            self.shifts[f] = -min; // shift so min becomes 0
        }
        let mut counts = vec![0usize; n_classes];
        let mut feat = vec![vec![0.0f64; d]; n_classes];
        for (r, &c) in y.iter().enumerate() {
            counts[c] += 1;
            for (acc, (&v, &s)) in feat[c].iter_mut().zip(x.row(r).iter().zip(&self.shifts)) {
                *acc += v + s;
            }
        }
        self.priors =
            counts.iter().map(|&c| (c as f64 + 1.0) / (n as f64 + n_classes as f64)).collect();
        self.feature_log_prob = feat
            .into_iter()
            .map(|row| {
                let total: f64 = row.iter().sum::<f64>() + d as f64; // Laplace α=1
                row.into_iter().map(|v| ((v + 1.0) / total).ln()).collect()
            })
            .collect();
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows())
            .map(|r| {
                let score = |c: usize| -> f64 {
                    let mut s = self.priors[c].max(1e-12).ln();
                    for (f, &v) in x.row(r).iter().enumerate() {
                        s += (v + self.shifts[f]).max(0.0) * self.feature_log_prob[c][f];
                    }
                    s
                };
                (0..self.priors.len()).max_by(|&a, &b| score(a).total_cmp(&score(b))).unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{blob_classification, train_test_accuracy};

    #[test]
    fn gnb_learns_blobs() {
        let (x, y) = blob_classification(150, 3, 101);
        let mut m = GaussianNb::default();
        let acc = train_test_accuracy(&mut m, &x, &y, 3);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn gnb_probabilities_normalised() {
        let (x, y) = blob_classification(60, 2, 103);
        let mut m = GaussianNb::default();
        m.fit(&x, &y, 2);
        let p = m.predict_proba(&x, 2);
        for r in 0..p.rows() {
            assert!((p.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn mnb_learns_separable_counts() {
        // Class 0 heavy on feature 0, class 1 heavy on feature 1.
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..100 {
            if i % 2 == 0 {
                rows.push(vec![5.0 + (i % 5) as f64, 1.0]);
                ys.push(0);
            } else {
                rows.push(vec![1.0, 5.0 + (i % 5) as f64]);
                ys.push(1);
            }
        }
        let x = Matrix::from_rows(&rows);
        let mut m = MultinomialNb::default();
        let acc = train_test_accuracy(&mut m, &x, &ys, 2);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn mnb_tolerates_negative_features_via_shift() {
        let (x, y) = blob_classification(100, 2, 107);
        let mut m = MultinomialNb::default();
        // Standardised blobs include negatives; must not panic and should
        // beat chance.
        let acc = train_test_accuracy(&mut m, &x, &y, 2);
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn gnb_empty_fit_safe() {
        let mut m = GaussianNb::default();
        m.fit(&Matrix::zeros(0, 2), &[], 2);
        assert_eq!(m.predict(&Matrix::zeros(1, 2)).len(), 1);
    }
}
