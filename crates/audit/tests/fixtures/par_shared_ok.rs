//! Concurrency fixture (positive): the same parallel region with
//! shard-safe state — atomics, a Mutex, and per-thread `thread_local!`
//! storage. `par-shared-mutable` must stay silent.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static HITS: AtomicUsize = AtomicUsize::new(0);
static SLOTS: Mutex<Vec<usize>> = Mutex::new(Vec::new());

thread_local! {
    static SCRATCH: std::cell::RefCell<Vec<usize>> = const { std::cell::RefCell::new(Vec::new()) };
}

pub fn tally(xs: &[usize]) -> Vec<usize> {
    xs.par_iter().map(|x| bump(*x)).collect()
}

fn bump(x: usize) -> usize {
    HITS.fetch_add(1, Ordering::SeqCst);
    x + 1
}
