//! Seeded train/test splitting and resampling.
//!
//! The paper repeats every ML experiment ten times "with different random
//! seeds that control the train-test split"; these helpers make each split
//! a pure function of a `u64` seed.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::table::Table;

/// A train/test partition of row indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Row indices of the training partition.
    pub train: Vec<usize>,
    /// Row indices of the test partition.
    pub test: Vec<usize>,
}

/// Randomly partitions `n` rows with `test_fraction` in the test set.
///
/// `test_fraction` is clamped to `[0, 1]`; at least one row lands in each
/// non-degenerate partition when `n ≥ 2` and the fraction is interior.
pub fn train_test_indices(n: usize, test_fraction: f64, seed: u64) -> Split {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let frac = test_fraction.clamp(0.0, 1.0);
    let mut n_test = (n as f64 * frac).round() as usize;
    if n >= 2 && frac > 0.0 && frac < 1.0 {
        n_test = n_test.clamp(1, n - 1);
    }
    let test = idx[..n_test].to_vec();
    let train = idx[n_test..].to_vec();
    Split { train, test }
}

/// Splits a table into `(train, test)` tables.
pub fn train_test_split(table: &Table, test_fraction: f64, seed: u64) -> (Table, Table) {
    let s = train_test_indices(table.n_rows(), test_fraction, seed);
    (table.select_rows(&s.train), table.select_rows(&s.test))
}

/// Stratified split on discrete labels: each class contributes
/// proportionally to the test partition. `labels[i]` is a class key per row.
pub fn stratified_indices(labels: &[String], test_fraction: f64, seed: u64) -> Split {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_class: std::collections::BTreeMap<&str, Vec<usize>> = Default::default();
    for (i, l) in labels.iter().enumerate() {
        by_class.entry(l.as_str()).or_default().push(i);
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    let frac = test_fraction.clamp(0.0, 1.0);
    for (_, mut rows) in by_class {
        rows.shuffle(&mut rng);
        let mut n_test = (rows.len() as f64 * frac).round() as usize;
        if rows.len() >= 2 && frac > 0.0 && frac < 1.0 {
            n_test = n_test.clamp(1, rows.len() - 1);
        }
        test.extend_from_slice(&rows[..n_test]);
        train.extend_from_slice(&rows[n_test..]);
    }
    train.sort_unstable();
    test.sort_unstable();
    Split { train, test }
}

/// `k`-fold cross-validation index sets: returns `k` `(train, test)` splits.
pub fn k_fold_indices(n: usize, k: usize, seed: u64) -> Vec<Split> {
    assert!(k >= 2, "k-fold requires k >= 2");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &row) in idx.iter().enumerate() {
        folds[i % k].push(row);
    }
    (0..k)
        .map(|f| {
            let test = folds[f].clone();
            let train = folds
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != f)
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            Split { train, test }
        })
        .collect()
}

/// Bootstrap sample of `n_out` row indices from `n` rows (with replacement).
pub fn bootstrap_indices(n: usize, n_out: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_out).map(|_| rng.random_range(0..n)).collect()
}

/// A random sample of `k` distinct indices from `0..n` (reservoir-free:
/// shuffles a prefix). When `k ≥ n` all indices are returned shuffled.
pub fn sample_indices(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx.truncate(k.min(n));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnMeta, ColumnType, Schema};
    use crate::value::Value;

    #[test]
    fn split_is_a_partition() {
        let s = train_test_indices(100, 0.2, 7);
        assert_eq!(s.test.len(), 20);
        assert_eq!(s.train.len(), 80);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_seed_deterministic() {
        assert_eq!(train_test_indices(50, 0.3, 42), train_test_indices(50, 0.3, 42));
        assert_ne!(train_test_indices(50, 0.3, 42), train_test_indices(50, 0.3, 43));
    }

    #[test]
    fn small_n_keeps_both_sides_nonempty() {
        let s = train_test_indices(2, 0.2, 1);
        assert_eq!(s.test.len(), 1);
        assert_eq!(s.train.len(), 1);
    }

    #[test]
    fn table_split_respects_sizes() {
        let schema = Schema::new(vec![ColumnMeta::new("x", ColumnType::Int)]);
        let rows = (0..10).map(|i| vec![Value::Int(i)]).collect();
        let t = Table::from_rows(schema, rows);
        let (tr, te) = train_test_split(&t, 0.3, 5);
        assert_eq!(tr.n_rows(), 7);
        assert_eq!(te.n_rows(), 3);
    }

    #[test]
    fn stratified_keeps_class_balance() {
        let labels: Vec<String> =
            (0..100).map(|i| if i < 80 { "a".to_string() } else { "b".to_string() }).collect();
        let s = stratified_indices(&labels, 0.25, 3);
        let test_b = s.test.iter().filter(|&&i| labels[i] == "b").count();
        assert_eq!(s.test.len(), 25);
        assert_eq!(test_b, 5);
    }

    #[test]
    fn k_fold_covers_everything_once() {
        let folds = k_fold_indices(23, 5, 9);
        assert_eq!(folds.len(), 5);
        let mut seen: Vec<usize> = folds.iter().flat_map(|s| s.test.iter().copied()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
        for f in &folds {
            assert_eq!(f.train.len() + f.test.len(), 23);
        }
    }

    #[test]
    fn bootstrap_has_requested_size_and_range() {
        let b = bootstrap_indices(10, 30, 4);
        assert_eq!(b.len(), 30);
        assert!(b.iter().all(|&i| i < 10));
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let s = sample_indices(10, 4, 2);
        assert_eq!(s.len(), 4);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 4);
        assert_eq!(sample_indices(3, 10, 2).len(), 3);
    }
}
