//! FAHES (Qahtan et al.): disguised missing values. A syntactic module
//! catches placeholder tokens and pattern-deviant repeated strings in
//! categorical columns; a density module catches numeric sentinels —
//! values that repeat suspiciously often *and* sit at the edge of (or
//! outside) the column's dense region.

use rein_data::{CellMask, Value};
use rein_stats::descriptive;

use crate::context::{DetectContext, Detector};

/// Placeholder spellings the syntactic module always recognises.
const PLACEHOLDERS: [&str; 8] = ["?", "unknown", "-", "--", "n/a", "na", "none", "missing"];

/// FAHES detector.
#[derive(Debug, Clone)]
pub struct Fahes {
    /// A numeric value must cover at least this fraction of the column to
    /// be considered a repeated sentinel.
    pub min_sentinel_share: f64,
}

impl Default for Fahes {
    fn default() -> Self {
        Self { min_sentinel_share: 0.01 }
    }
}

impl Detector for Fahes {
    fn name(&self) -> &'static str {
        "fahes"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:fahes");
        let t = ctx.dirty;
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());

        // Syntactic module: placeholder tokens anywhere.
        for c in 0..t.n_cols() {
            for (r, v) in t.column(c).iter().enumerate() {
                if let Value::Str(s) = v {
                    if PLACEHOLDERS.contains(&s.trim().to_lowercase().as_str()) {
                        mask.set(r, c, true);
                    }
                }
            }
        }

        // Density module: repeated numeric sentinels at the distribution
        // edge (999999, -1, 0 in a positive column, …).
        for c in ctx.numeric_columns() {
            let xs = t.numeric_values(c);
            if xs.len() < 20 {
                continue;
            }
            let q05 = descriptive::quantile(&xs, 0.05);
            let q95 = descriptive::quantile(&xs, 0.95);
            let iqr = descriptive::iqr(&xs).max(1e-9);
            // Count exact repetitions.
            let mut counts: std::collections::BTreeMap<u64, (f64, usize)> = Default::default();
            for &x in &xs {
                let e = counts.entry(x.to_bits()).or_insert((x, 0));
                e.1 += 1;
            }
            let min_count = ((xs.len() as f64) * self.min_sentinel_share).ceil() as usize;
            let sentinels: Vec<f64> = counts
                .values()
                .filter(|(x, n)| {
                    *n >= min_count.max(3) && (*x < q05 - 0.5 * iqr || *x > q95 + 0.5 * iqr)
                })
                .map(|(x, _)| *x)
                .collect();
            if sentinels.is_empty() {
                continue;
            }
            for r in 0..t.n_rows() {
                if let Some(x) = t.cell(r, c).as_f64() {
                    if sentinels.iter().any(|s| (x - s).abs() < 1e-12) {
                        mask.set(r, c, true);
                    }
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema, Table};

    #[test]
    fn placeholder_tokens_are_caught() {
        let schema = Schema::new(vec![ColumnMeta::new("c", ColumnType::Str)]);
        let mut rows: Vec<Vec<Value>> =
            (0..30).map(|i| vec![Value::str(format!("city{}", i % 5))]).collect();
        rows[3][0] = Value::str("?");
        rows[11][0] = Value::str("unknown");
        rows[20][0] = Value::str("N/A");
        let t = Table::from_rows(schema, rows);
        let m = Fahes::default().detect(&DetectContext::bare(&t));
        assert_eq!(m.count(), 3);
        assert!(m.get(3, 0) && m.get(11, 0) && m.get(20, 0));
    }

    #[test]
    fn numeric_sentinel_at_the_edge_is_caught() {
        let schema = Schema::new(vec![ColumnMeta::new("phone_len", ColumnType::Float)]);
        let mut rows: Vec<Vec<Value>> =
            (0..200).map(|i| vec![Value::Float(40.0 + (i % 17) as f64)]).collect();
        // 999999 repeated 8 times — classic disguised missing value.
        for i in 0..8 {
            rows[i * 21][0] = Value::Float(999999.0);
        }
        let t = Table::from_rows(schema, rows);
        let m = Fahes::default().detect(&DetectContext::bare(&t));
        assert_eq!(m.count(), 8);
        assert!(m.get(0, 0));
    }

    #[test]
    fn rare_extreme_values_are_not_sentinels() {
        // A single extreme value is an outlier, not a disguised MV.
        let schema = Schema::new(vec![ColumnMeta::new("x", ColumnType::Float)]);
        let mut rows: Vec<Vec<Value>> =
            (0..200).map(|i| vec![Value::Float(40.0 + (i % 17) as f64)]).collect();
        rows[7][0] = Value::Float(99999.0);
        let t = Table::from_rows(schema, rows);
        let m = Fahes::default().detect(&DetectContext::bare(&t));
        assert!(m.is_empty(), "count {}", m.count());
    }

    #[test]
    fn frequent_central_values_are_not_sentinels() {
        // The mode of a distribution repeats a lot but is not at the edge.
        let schema = Schema::new(vec![ColumnMeta::new("x", ColumnType::Float)]);
        let rows: Vec<Vec<Value>> = (0..200)
            .map(|i| vec![Value::Float(if i % 2 == 0 { 50.0 } else { 40.0 + (i % 17) as f64 })])
            .collect();
        let t = Table::from_rows(schema, rows);
        let m = Fahes::default().detect(&DetectContext::bare(&t));
        assert!(m.is_empty(), "count {}", m.count());
    }
}
