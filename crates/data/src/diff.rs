//! Table diffing against a ground truth.
//!
//! The benchmark's detection metrics are defined cell-wise against the
//! ground-truth table: a cell is *actually erroneous* iff it differs from
//! the corresponding ground-truth cell. [`diff_mask`] materialises that set.

use crate::mask::CellMask;
use crate::table::Table;

/// Relative tolerance used when comparing numeric cells.
///
/// Zero would make float round-trips through CSV count as errors; this is
/// tight enough that any injected perturbation is still caught.
pub const NUMERIC_TOL: f64 = 1e-9;

/// Mask of cells where `dirty` differs from `clean`.
///
/// Rows beyond `clean.n_rows()` (e.g. injected duplicate rows) are marked
/// entirely dirty; the mask is sized to the *dirty* table.
///
/// # Panics
/// Panics if the column counts differ.
pub fn diff_mask(clean: &Table, dirty: &Table) -> CellMask {
    assert_eq!(clean.n_cols(), dirty.n_cols(), "diff: column count mismatch");
    let mut mask = CellMask::new(dirty.n_rows(), dirty.n_cols());
    let shared = clean.n_rows().min(dirty.n_rows());
    for r in 0..shared {
        for c in 0..dirty.n_cols() {
            if !dirty.cell(r, c).approx_eq(clean.cell(r, c), NUMERIC_TOL) {
                mask.set(r, c, true);
            }
        }
    }
    for r in shared..dirty.n_rows() {
        mask.set_row(r, true);
    }
    mask
}

/// Fraction of differing cells (the *error rate* of Table 4 in the paper).
pub fn error_rate(clean: &Table, dirty: &Table) -> f64 {
    if dirty.n_cells() == 0 {
        return 0.0;
    }
    diff_mask(clean, dirty).count() as f64 / dirty.n_cells() as f64
}

/// Applies ground-truth values at the masked cells of `dirty` (the paper's
/// "GT" repair method, the performance upper bound).
///
/// Cells in rows that do not exist in `clean` (injected duplicates) are left
/// untouched; callers remove those rows instead.
pub fn apply_ground_truth(dirty: &Table, clean: &Table, cells: &CellMask) -> Table {
    let mut out = dirty.clone();
    for cell in cells.iter() {
        if cell.row < clean.n_rows() {
            out.set_cell(cell.row, cell.col, clean.cell(cell.row, cell.col).clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnMeta, ColumnType, Schema};
    use crate::value::Value;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("s", ColumnType::Str),
        ])
    }

    fn clean() -> Table {
        Table::from_rows(
            schema(),
            vec![
                vec![Value::Float(1.0), Value::str("a")],
                vec![Value::Float(2.0), Value::str("b")],
            ],
        )
    }

    #[test]
    fn identical_tables_have_empty_diff() {
        let c = clean();
        assert!(diff_mask(&c, &c).is_empty());
        assert_eq!(error_rate(&c, &c), 0.0);
    }

    #[test]
    fn changed_cells_are_flagged() {
        let c = clean();
        let mut d = c.clone();
        d.set_cell(0, 1, Value::str("zzz"));
        d.set_cell(1, 0, Value::Null);
        let m = diff_mask(&c, &d);
        assert_eq!(m.count(), 2);
        assert!(m.get(0, 1));
        assert!(m.get(1, 0));
        assert!((error_rate(&c, &d) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tiny_float_noise_is_not_an_error() {
        let c = clean();
        let mut d = c.clone();
        d.set_cell(0, 0, Value::Float(1.0 + 1e-13));
        assert!(diff_mask(&c, &d).is_empty());
    }

    #[test]
    fn extra_rows_count_fully_dirty() {
        let c = clean();
        let mut d = c.clone();
        d.push_row(vec![Value::Float(1.0), Value::str("a")]); // injected dup
        let m = diff_mask(&c, &d);
        assert_eq!(m.count(), 2);
        assert!(m.get(2, 0) && m.get(2, 1));
    }

    #[test]
    fn ground_truth_repair_restores_masked_cells() {
        let c = clean();
        let mut d = c.clone();
        d.set_cell(0, 1, Value::str("zzz"));
        d.set_cell(1, 1, Value::str("yyy"));
        let mut cells = CellMask::new(2, 2);
        cells.set(0, 1, true); // repair only the first error
        let repaired = apply_ground_truth(&d, &c, &cells);
        assert_eq!(repaired.cell(0, 1), &Value::str("a"));
        assert_eq!(repaired.cell(1, 1), &Value::str("yyy"));
    }
}
