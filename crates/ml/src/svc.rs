//! Linear support-vector machines trained by Pegasos-style SGD:
//! [`LinearSvc`] (hinge loss, one-vs-rest) and [`LinearSvr`]
//! (ε-insensitive loss).

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::linalg::{dot, Matrix};
use crate::model::{Classifier, Regressor};

/// Shared SVM hyperparameters.
#[derive(Debug, Clone)]
pub struct SvcParams {
    /// Regularisation strength λ (Pegasos).
    pub lambda: f64,
    /// Training epochs over the data.
    pub epochs: usize,
    /// ε for the regression loss tube.
    pub epsilon: f64,
}

impl Default for SvcParams {
    fn default() -> Self {
        // λ and the epoch budget are chosen so Pegasos's O(1/(λT)) optimality
        // gap is small at benchmark data sizes.
        Self { lambda: 1e-2, epochs: 60, epsilon: 0.05 }
    }
}

fn pegasos_binary(
    x: &Matrix,
    targets: &[f64], // ±1
    params: &SvcParams,
    rng: &mut StdRng,
) -> (Vec<f64>, f64) {
    let n = x.rows();
    let d = x.cols();
    let mut w = vec![0.0; d];
    let mut b = 0.0;
    if n == 0 {
        return (w, b);
    }
    let mut order: Vec<usize> = (0..n).collect();
    let mut t = 0usize;
    for _ in 0..params.epochs {
        order.shuffle(rng);
        for &i in &order {
            t += 1;
            let eta = 1.0 / (params.lambda * t as f64);
            let margin = targets[i] * (dot(x.row(i), &w) + b);
            // Shrink step.
            let shrink = 1.0 - eta * params.lambda;
            for v in &mut w {
                *v *= shrink;
            }
            if margin < 1.0 {
                let step = eta * targets[i];
                for (wv, &xv) in w.iter_mut().zip(x.row(i)) {
                    *wv += step * xv;
                }
                b += step;
            }
        }
    }
    (w, b)
}

/// Linear SVM classifier (one-vs-rest hinge loss).
#[derive(Debug, Clone)]
pub struct LinearSvc {
    params: SvcParams,
    seed: u64,
    per_class: Vec<(Vec<f64>, f64)>,
}

impl LinearSvc {
    /// Builds a linear SVC.
    pub fn new(params: SvcParams, seed: u64) -> Self {
        Self { params, seed, per_class: Vec::new() }
    }
}

impl Classifier for LinearSvc {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.per_class = (0..n_classes)
            .map(|c| {
                let targets: Vec<f64> =
                    y.iter().map(|&yc| if yc == c { 1.0 } else { -1.0 }).collect();
                pegasos_binary(x, &targets, &self.params, &mut rng)
            })
            .collect();
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows())
            .map(|r| {
                let xr = x.row(r);
                self.per_class
                    .iter()
                    .enumerate()
                    .map(|(c, (w, b))| (c, b + dot(xr, w)))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .map_or(0, |(c, _)| c)
            })
            .collect()
    }
}

/// Linear support-vector regressor (ε-insensitive loss, SGD).
#[derive(Debug, Clone)]
pub struct LinearSvr {
    params: SvcParams,
    seed: u64,
    weights: Vec<f64>,
    bias: f64,
    y_scale: f64,
    y_shift: f64,
}

impl LinearSvr {
    /// Builds a linear SVR.
    pub fn new(params: SvcParams, seed: u64) -> Self {
        Self { params, seed, weights: Vec::new(), bias: 0.0, y_scale: 1.0, y_shift: 0.0 }
    }
}

impl Regressor for LinearSvr {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        let n = x.rows();
        let d = x.cols();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        if n == 0 {
            return;
        }
        // Standardise y so ε and λ are scale-free.
        let mean = y.iter().sum::<f64>() / n as f64;
        let std = (y.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64).sqrt().max(1e-9);
        self.y_shift = mean;
        self.y_scale = std;
        let ys: Vec<f64> = y.iter().map(|v| (v - mean) / std).collect();

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..n).collect();
        let mut t = 0usize;
        for _ in 0..self.params.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (self.params.lambda * t as f64);
                let pred = dot(x.row(i), &self.weights) + self.bias;
                let err = pred - ys[i];
                let shrink = 1.0 - eta * self.params.lambda;
                for v in &mut self.weights {
                    *v *= shrink;
                }
                if err.abs() > self.params.epsilon {
                    let g = err.signum();
                    for (wv, &xv) in self.weights.iter_mut().zip(x.row(i)) {
                        *wv -= eta * g * xv;
                    }
                    self.bias -= eta * g;
                }
            }
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows())
            .map(|r| self.y_shift + self.y_scale * (self.bias + dot(x.row(r), &self.weights)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{
        blob_classification, linear_regression_data, train_test_accuracy, train_test_rmse,
    };

    #[test]
    fn svc_separates_blobs() {
        let (x, y) = blob_classification(150, 3, 11);
        let mut m = LinearSvc::new(SvcParams::default(), 1);
        let acc = train_test_accuracy(&mut m, &x, &y, 3);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn svc_binary() {
        let (x, y) = blob_classification(100, 2, 13);
        let mut m = LinearSvc::new(SvcParams::default(), 2);
        let acc = train_test_accuracy(&mut m, &x, &y, 2);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn svr_fits_linear_target() {
        let (x, y) = linear_regression_data(200, 0.1, 17);
        let mut m = LinearSvr::new(SvcParams { epochs: 60, ..Default::default() }, 3);
        let err = train_test_rmse(&mut m, &x, &y);
        // y std is ~4+; err below 1 means real learning.
        assert!(err < 1.0, "rmse {err}");
    }

    #[test]
    fn svr_is_scale_invariant_enough() {
        let (x, y) = linear_regression_data(150, 0.1, 19);
        let y_big: Vec<f64> = y.iter().map(|v| v * 1000.0).collect();
        let mut m = LinearSvr::new(SvcParams { epochs: 60, ..Default::default() }, 5);
        let err = train_test_rmse(&mut m, &x, &y_big);
        let y_std = {
            let mean = y_big.iter().sum::<f64>() / y_big.len() as f64;
            (y_big.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / y_big.len() as f64).sqrt()
        };
        assert!(err < 0.3 * y_std, "rmse {err} vs std {y_std}");
    }

    #[test]
    fn empty_fit_is_safe() {
        let mut m = LinearSvc::new(SvcParams::default(), 1);
        m.fit(&Matrix::zeros(0, 2), &[], 2);
        assert_eq!(m.predict(&Matrix::zeros(1, 2)).len(), 1);
    }
}
