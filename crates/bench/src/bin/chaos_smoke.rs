//! Chaos smoke test: runs a full S1 detection + repair grid twice — once
//! fault-free, once under seeded fault injection — and asserts that
//!
//! 1. exactly the injected cells degrade (each with a structured
//!    failure of the expected cause), and
//! 2. every non-injected cell's output is byte-identical between the
//!    two runs (serialized masks and repaired versions compared as
//!    strings).
//!
//! The injection spec comes from `REIN_CHAOS` when set, otherwise the
//! built-in default targets one detector (panic) and one repair cell
//! (budget stall). Exit codes: `3` (the standard degraded-run exit from
//! [`rein_bench::conclude`]) on success — the chaos run *did* degrade
//! cells, and the manifest records them; `4` when a non-injected cell
//! diverged; `5` when the failure set differs from the injection spec;
//! `2` for a bad environment.

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use std::collections::BTreeMap;

use rein_bench::{conclude, dataset, header, phase};
use rein_core::{ChaosSpec, Controller, GuardPolicy};
use rein_datasets::{DatasetId, GeneratedDataset};

/// One detector panics; one (detector, repairer) cell stalls.
const DEFAULT_SPEC: &str = "detect:raha=panic,repair:impute_mean_mode#max_entropy=stall";

/// Serializes every grid cell's output: detector masks and repaired
/// versions, keyed by cell coordinates.
fn run_grid(ctrl: &Controller, ds: &GeneratedDataset) -> BTreeMap<String, String> {
    let mut cells = BTreeMap::new();
    let detections = ctrl.run_detection(ds);
    for det in &detections {
        let key = format!("detect:{}", det.kind.name());
        let bytes = serde_json::to_string(&det.mask).expect("mask serializes");
        cells.insert(key, bytes);
        let repairs = ctrl.run_repairs(ds, det);
        for rep in &repairs {
            let key = format!("repair:{}#{}", rep.kind.name(), det.kind.name());
            let bytes = match (&rep.version, &rep.repaired_cells) {
                (Some(v), Some(m)) => format!(
                    "{}\n{}\n{:?}",
                    rein_data::csv::write_str(&v.table),
                    serde_json::to_string(m).expect("mask serializes"),
                    v.row_map
                ),
                _ => format!("pipeline:{}", rep.pipeline.is_some()),
            };
            cells.insert(key, bytes);
        }
    }
    cells
}

fn main() {
    let setup = phase("setup");
    let spec_text = std::env::var("REIN_CHAOS").unwrap_or_else(|_| DEFAULT_SPEC.to_string());
    let chaos = match ChaosSpec::parse(&spec_text) {
        Ok(c) if !c.is_empty() => c,
        Ok(_) => {
            eprintln!("error: chaos smoke needs at least one injection rule");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: REIN_CHAOS={spec_text:?} is invalid: {e}");
            std::process::exit(2);
        }
    };
    let ds = dataset(DatasetId::BreastCancer, 29);
    drop(setup);

    header("Chaos smoke — S1 grid under fault injection");
    println!("dataset: {} ({} rows)", ds.info.name, ds.dirty.n_rows());
    println!("spec:    {spec_text}");

    let baseline_phase = phase("baseline");
    let clean_ctrl = Controller { label_budget: 50, seed: 29, ..Controller::default() };
    let baseline = run_grid(&clean_ctrl, &ds);
    drop(baseline_phase);
    let baseline_failures = rein_telemetry::failures_snapshot();
    if !baseline_failures.is_empty() {
        eprintln!("error: fault-free run degraded {} cell(s)", baseline_failures.len());
        std::process::exit(5);
    }

    let chaos_phase = phase("chaos");
    let chaos_ctrl =
        Controller { label_budget: 50, seed: 29, policy: GuardPolicy::with_chaos(chaos.clone()) };
    let injected = run_grid(&chaos_ctrl, &ds);
    drop(chaos_phase);

    let verify = phase("verify");
    // Every injected rule must have produced at least one failure, and
    // every failure must trace back to an injected rule.
    let failures = rein_telemetry::failures_snapshot();
    println!("\n{} failure record(s):", failures.len());
    for f in &failures {
        println!(
            "  {}:{}@{}#{} -> {} (attempts {})",
            f.phase, f.strategy, f.dataset, f.scope, f.cause, f.attempts
        );
    }
    if failures.len() != chaos.len() {
        eprintln!(
            "error: {} injection rule(s) but {} failure record(s)",
            chaos.len(),
            failures.len()
        );
        std::process::exit(5);
    }
    for f in &failures {
        let covered =
            chaos.rules().iter().any(|r| r.phase.name() == f.phase && r.strategy == f.strategy);
        if !covered {
            eprintln!(
                "error: failure {}:{} does not match any injection rule",
                f.phase, f.strategy
            );
            std::process::exit(5);
        }
    }

    // Non-injected cells must match the fault-free run byte-for-byte.
    let failed_keys: Vec<String> = failures
        .iter()
        .map(|f| {
            if f.scope.is_empty() {
                format!("{}:{}", f.phase, f.strategy)
            } else {
                format!("{}:{}#{}", f.phase, f.strategy, f.scope)
            }
        })
        .collect();
    // A degraded detector also changes every repair cell it feeds.
    let affected = |key: &str| {
        failed_keys.iter().any(|fk| {
            key == fk
                || (fk.starts_with("detect:")
                    && key.starts_with("repair:")
                    && key.ends_with(&format!("#{}", &fk["detect:".len()..])))
        })
    };
    let mut checked = 0usize;
    let mut diverged = 0usize;
    for (key, bytes) in &baseline {
        if affected(key) {
            continue;
        }
        checked += 1;
        match injected.get(key) {
            Some(other) if other == bytes => {}
            Some(_) => {
                eprintln!("error: non-injected cell {key} diverged under chaos");
                diverged += 1;
            }
            None => {
                eprintln!("error: cell {key} missing from the chaos run");
                diverged += 1;
            }
        }
    }
    drop(verify);
    println!(
        "\n{checked} non-injected cell(s) byte-identical; {} degraded as injected",
        failures.len()
    );
    if diverged > 0 {
        std::process::exit(4);
    }
    conclude("chaos_smoke", 29, 50);
}
