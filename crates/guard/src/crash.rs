//! Crash injection for the durable cell store (`REIN_CRASH`).
//!
//! A [`CrashSpec`] is the chaos spec's sibling for *process-death*
//! testing: instead of degrading a strategy in-process (panic, stall,
//! …), a matching rule makes the store **abort the whole process** at a
//! specific commit point — a faithful `kill -9` with no unwinding, no
//! `Drop` flushes and no buffered-write rescue. The `crash_smoke`
//! binary uses it to prove that a resumed grid is byte-identical to an
//! uninterrupted one (DESIGN.md §6j).
//!
//! Grammar (comma-separated rules, first match wins):
//!
//! ```text
//! coordinate[=point]
//! ```
//!
//! * `coordinate` — the exact grid cell coordinate the commit carries:
//!   `detect:<detector>`, `repair:<repairer>#<detector>` or
//!   `eval:<scenario>:<repairer>#<detector>` — the same keys
//!   `Controller::run_grid` uses.
//! * `point` — `before` (abort before the cell's record reaches the
//!   journal: the cell is lost and recomputed on resume) or `after`
//!   (abort after the record is appended and fsynced: the cell survives
//!   and is a hit on resume). Defaults to `after`.
//!
//! Example: `repair:impute_mean_mode#max_entropy=before`.
//!
//! The spec travels on [`GuardPolicy`](crate::GuardPolicy) like the
//! chaos spec — but it is deliberately **not** part of the policy's
//! cache identity ([`GuardPolicy::cache_identity`](crate::GuardPolicy::cache_identity)):
//! a crashed run and its resume must address the same cells, and the
//! injection only decides *when* the process dies, never what any cell
//! computes.

/// When a crash rule fires relative to its record's durable append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashWhen {
    /// Abort before the record is appended.
    Before,
    /// Abort after the record is appended and fsynced.
    After,
}

impl CrashWhen {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "before" => Ok(CrashWhen::Before),
            "after" => Ok(CrashWhen::After),
            other => Err(format!("unknown crash point `{other}` (want before|after)")),
        }
    }
}

/// One crash-injection rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashRule {
    /// The exact grid cell coordinate the rule targets.
    pub coordinate: String,
    /// When to abort relative to that cell's commit.
    pub when: CrashWhen,
}

/// A parsed set of crash rules. The default (empty) spec never fires.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashSpec {
    rules: Vec<CrashRule>,
}

impl CrashSpec {
    /// Parses the `REIN_CRASH` grammar (see the module docs).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut rules = Vec::new();
        for raw in text.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (coordinate, when) = match raw.split_once('=') {
                Some((c, w)) => (c.trim(), CrashWhen::parse(w.trim())?),
                None => (raw, CrashWhen::After),
            };
            let phase = coordinate.split(':').next().unwrap_or("");
            if !matches!(phase, "detect" | "repair" | "eval") {
                return Err(format!(
                    "crash rule `{raw}` must target a grid coordinate \
                     (detect:…, repair:…#… or eval:…:…#…)"
                ));
            }
            if coordinate.len() == phase.len() + 1 || !coordinate.contains(':') {
                return Err(format!("crash rule `{raw}` has an empty strategy coordinate"));
            }
            rules.push(CrashRule { coordinate: coordinate.to_string(), when });
        }
        Ok(CrashSpec { rules })
    }

    /// Reads `REIN_CRASH`; unset or empty means no injection. A set but
    /// unparsable spec is an error — silently running crash-free when
    /// the operator asked for a kill test would invalidate the proof.
    pub fn from_env() -> Result<Self, String> {
        // audit:allow(env-read-confinement, REIN_CRASH is snapshotted once at startup by the bench binaries and folded into the guard policy; it only decides when the process aborts, never what a cell computes)
        match std::env::var("REIN_CRASH") {
            Err(_) => Ok(CrashSpec::default()),
            Ok(raw) => Self::parse(&raw),
        }
    }

    /// Whether the spec injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// The rules, in spec order.
    pub fn rules(&self) -> &[CrashRule] {
        &self.rules
    }

    /// The crash point for a commit coordinate, if any rule matches
    /// (first match wins).
    pub fn when_for(&self, coordinate: &str) -> Option<CrashWhen> {
        self.rules.iter().find(|r| r.coordinate == coordinate).map(|r| r.when)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_coordinates_with_default_and_explicit_points() {
        let c =
            CrashSpec::parse("detect:raha, repair:impute_mean_mode#max_entropy=before").unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.when_for("detect:raha"), Some(CrashWhen::After));
        assert_eq!(c.when_for("repair:impute_mean_mode#max_entropy"), Some(CrashWhen::Before));
        assert_eq!(c.when_for("repair:impute_mean_mode#raha"), None);
        assert_eq!(c.when_for("eval:S1:impute_mean_mode#max_entropy"), None);
    }

    #[test]
    fn rejects_malformed_rules() {
        assert!(CrashSpec::parse("raha").is_err());
        assert!(CrashSpec::parse("model:x").is_err());
        assert!(CrashSpec::parse("detect:raha=sometimes").is_err());
        assert!(CrashSpec::parse("detect:").is_err());
    }

    #[test]
    fn empty_spec_matches_nothing() {
        let c = CrashSpec::parse("").unwrap();
        assert!(c.is_empty());
        assert_eq!(c.when_for("detect:raha"), None);
    }
}
