//! Positive fixture: every RNG seed traces back to a parameter.

use rand::rngs::StdRng;
use rand::SeedableRng;

fn mix(seed: u64, stream: u64) -> u64 {
    seed.rotate_left(17) ^ stream
}

fn make_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The seed threads from the caller's parameter through a derivation
/// and a helper — provenance holds at every hop.
pub fn resample(n: usize, seed: u64) -> Vec<usize> {
    let derived = mix(seed, 3);
    let mut rng = make_rng(derived);
    (0..n).map(|_| rng.gen_range(0..n.max(1))).collect()
}

/// Direct construction from a parameter is also fine.
pub fn shuffle_order(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.rotate_left(rng.gen_range(0..n.max(1)));
    order
}
