//! Companion file for `closure_edge_spawn_bad.rs`: the panic site the
//! spawn closure reaches across files.

pub fn remote_step(xs: &[u64]) -> u64 {
    if xs.is_empty() {
        panic!("empty shard");
    }
    xs[0]
}
