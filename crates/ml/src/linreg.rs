//! Linear regression family: OLS, Bayesian ridge (evidence maximisation),
//! and RANSAC robust regression.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::linalg::{dot, solve_spd, Matrix};
use crate::model::Regressor;
use crate::ridge::RidgeRegressor;

/// Ordinary least squares (implemented as ridge with a vanishing penalty,
/// which also regularises rank-deficient designs gracefully).
#[derive(Debug, Clone)]
pub struct LinearRegression {
    inner: RidgeRegressor,
}

impl Default for LinearRegression {
    fn default() -> Self {
        Self { inner: RidgeRegressor::new(1e-8) }
    }
}

impl LinearRegression {
    /// Fitted coefficients.
    pub fn coefficients(&self) -> &[f64] {
        self.inner.coefficients()
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.inner.intercept()
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        self.inner.fit(x, y);
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.inner.predict(x)
    }
}

/// Bayesian ridge regression via MacKay's evidence (type-II ML) iterations:
/// precision hyperparameters `alpha` (noise) and `lambda` (weights) are
/// re-estimated from the data, as in scikit-learn's `BayesianRidge`.
#[derive(Debug, Clone)]
pub struct BayesianRidge {
    /// Maximum evidence iterations.
    pub max_iter: usize,
    weights: Vec<f64>,
    bias: f64,
    /// Final weight-precision λ.
    pub lambda: f64,
    /// Final noise-precision α.
    pub alpha: f64,
}

impl Default for BayesianRidge {
    fn default() -> Self {
        Self { max_iter: 30, weights: Vec::new(), bias: 0.0, lambda: 1.0, alpha: 1.0 }
    }
}

impl Regressor for BayesianRidge {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        let n = x.rows();
        let d = x.cols();
        if n == 0 || d == 0 {
            self.weights = vec![0.0; d];
            self.bias = if y.is_empty() { 0.0 } else { y.iter().sum::<f64>() / y.len() as f64 };
            return;
        }
        // Centre for an unpenalised intercept.
        let mut x_mean = vec![0.0; d];
        for r in 0..n {
            for (m, &v) in x_mean.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in &mut x_mean {
            *m /= n as f64;
        }
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let mut xc = Matrix::zeros(n, d);
        for r in 0..n {
            for c in 0..d {
                xc[(r, c)] = x[(r, c)] - x_mean[c];
            }
        }
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        let gram = xc.gram();
        let rhs = xc.t_vec(&yc);
        let mut alpha = 1.0f64; // noise precision
        let mut lambda = 1.0f64; // weight precision
        let mut w = vec![0.0; d];
        for _ in 0..self.max_iter {
            let mut a = gram.clone();
            let ratio = lambda / alpha;
            for i in 0..d {
                a[(i, i)] += ratio;
            }
            w = solve_spd(&a, &rhs).unwrap_or(w);
            // Effective number of parameters γ = Σ λᵢ/(λᵢ+ratio); approximate
            // with the trace identity γ = d - ratio · tr(A⁻¹) ≈ via diagonal.
            let w_norm: f64 = w.iter().map(|v| v * v).sum();
            let residual: f64 = (0..n)
                .map(|r| {
                    let p = dot(xc.row(r), &w);
                    (yc[r] - p).powi(2)
                })
                .sum();
            let gamma = (d as f64) - ratio * (0..d).map(|i| 1.0 / a[(i, i)]).sum::<f64>();
            let gamma = gamma.clamp(1e-6, d as f64);
            let new_lambda = gamma / w_norm.max(1e-12);
            let new_alpha = (n as f64 - gamma).max(1e-6) / residual.max(1e-12);
            let converged = (new_lambda - lambda).abs() < 1e-6 * lambda
                && (new_alpha - alpha).abs() < 1e-6 * alpha;
            lambda = new_lambda.clamp(1e-9, 1e9);
            alpha = new_alpha.clamp(1e-9, 1e9);
            if converged {
                break;
            }
        }
        self.lambda = lambda;
        self.alpha = alpha;
        self.bias = y_mean - w.iter().zip(&x_mean).map(|(a, b)| a * b).sum::<f64>();
        self.weights = w;
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.bias + dot(x.row(r), &self.weights)).collect()
    }
}

/// RANSAC parameters.
#[derive(Debug, Clone)]
pub struct RansacParams {
    /// Number of random minimal-sample trials.
    pub n_trials: usize,
    /// Minimum samples per trial (≥ n_features + 1 recommended).
    pub min_samples: usize,
    /// Inlier threshold as a multiple of the MAD of residuals.
    pub residual_scale: f64,
}

impl Default for RansacParams {
    fn default() -> Self {
        Self { n_trials: 40, min_samples: 8, residual_scale: 2.5 }
    }
}

/// RANSAC robust linear regression: repeatedly fits on random minimal
/// subsets, keeps the consensus set with the most inliers, and refits on
/// the best consensus.
#[derive(Debug, Clone)]
pub struct Ransac {
    params: RansacParams,
    seed: u64,
    model: LinearRegression,
}

impl Ransac {
    /// Builds a RANSAC estimator.
    pub fn new(params: RansacParams, seed: u64) -> Self {
        Self { params, seed, model: LinearRegression::default() }
    }
}

impl Regressor for Ransac {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        let n = x.rows();
        if n == 0 {
            self.model.fit(x, y);
            return;
        }
        let min_s = self.params.min_samples.clamp(2, n);
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Inlier threshold from the target's own MAD (scikit-learn's RANSAC
        // default) — deriving it from a full fit would let gross outliers
        // inflate the threshold through the contaminated fit itself.
        let mut sorted_y: Vec<f64> = y.to_vec();
        sorted_y.sort_by(|a, b| a.total_cmp(b));
        let median_y = sorted_y[sorted_y.len() / 2];
        let mut abs_dev: Vec<f64> = y.iter().map(|v| (v - median_y).abs()).collect();
        abs_dev.sort_by(|a, b| a.total_cmp(b));
        let mad = abs_dev[abs_dev.len() / 2].max(1e-9);
        let threshold = self.params.residual_scale / 2.5 * mad;

        let mut best_inliers: Vec<usize> = (0..n).collect();
        let mut best_count = 0usize;
        let mut idx: Vec<usize> = (0..n).collect();
        for _ in 0..self.params.n_trials {
            idx.shuffle(&mut rng);
            let sample = &idx[..min_s];
            let xs = crate::encode::select_matrix_rows(x, sample);
            let ys: Vec<f64> = sample.iter().map(|&i| y[i]).collect();
            let mut m = LinearRegression::default();
            m.fit(&xs, &ys);
            let p = m.predict(x);
            let inliers: Vec<usize> =
                (0..n).filter(|&i| (y[i] - p[i]).abs() <= threshold).collect();
            if inliers.len() > best_count {
                best_count = inliers.len();
                best_inliers = inliers;
            }
        }
        let xs = crate::encode::select_matrix_rows(x, &best_inliers);
        let ys: Vec<f64> = best_inliers.iter().map(|&i| y[i]).collect();
        self.model.fit(&xs, &ys);
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.model.predict(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{linear_regression_data, train_test_rmse};

    #[test]
    fn ols_recovers_coefficients() {
        let (x, y) = linear_regression_data(150, 0.01, 4);
        let mut m = LinearRegression::default();
        m.fit(&x, &y);
        assert!((m.coefficients()[0] - 3.0).abs() < 0.05);
        assert!((m.coefficients()[1] + 2.0).abs() < 0.05);
    }

    #[test]
    fn bayes_ridge_matches_ols_on_clean_data() {
        let (x, y) = linear_regression_data(200, 0.1, 5);
        let mut m = BayesianRidge::default();
        let err = train_test_rmse(&mut m, &x, &y);
        assert!(err < 0.3, "rmse {err}");
        assert!(m.lambda > 0.0 && m.alpha > 0.0);
    }

    #[test]
    fn bayes_ridge_noise_precision_tracks_noise() {
        let (x1, y1) = linear_regression_data(200, 0.1, 6);
        let (x2, y2) = linear_regression_data(200, 2.0, 6);
        let mut low = BayesianRidge::default();
        let mut high = BayesianRidge::default();
        low.fit(&x1, &y1);
        high.fit(&x2, &y2);
        // α ≈ 1/σ²: noisier data → lower precision.
        assert!(low.alpha > high.alpha);
    }

    #[test]
    fn ransac_ignores_gross_outliers() {
        let (x, mut y) = linear_regression_data(120, 0.05, 7);
        // Corrupt 20% of targets badly.
        for i in 0..24 {
            y[i * 5] += 500.0;
        }
        let mut robust = Ransac::new(RansacParams::default(), 1);
        robust.fit(&x, &y);
        let mut plain = LinearRegression::default();
        plain.fit(&x, &y);
        // Evaluate against the *true* function on fresh clean data.
        let (xt, yt) = linear_regression_data(100, 0.0, 8);
        let robust_rmse = crate::metrics::rmse(&yt, &robust.predict(&xt));
        let plain_rmse = crate::metrics::rmse(&yt, &plain.predict(&xt));
        assert!(robust_rmse < plain_rmse / 4.0, "robust {robust_rmse} vs plain {plain_rmse}");
        assert!(robust_rmse < 1.0);
    }

    #[test]
    fn ransac_on_tiny_input() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let y = [0.0, 1.0, 2.0];
        let mut m = Ransac::new(RansacParams::default(), 3);
        m.fit(&x, &y);
        let p = m.predict(&x);
        assert!((p[1] - 1.0).abs() < 0.2);
    }
}
