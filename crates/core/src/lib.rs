//! # rein-core
//!
//! The REIN benchmark framework itself (§2 of the paper): the data
//! [`repository`] (PostgreSQL substitute), the cleaning [`toolbox`] with
//! capability metadata, the benchmark [`controller`] that prunes
//! unnecessary experiments from design-time knowledge, the S1–S5
//! evaluation [`scenario`]s (Table 3), the [`evaluate`] module measuring
//! detection/repair/model quality, and serialisable [`experiment`]
//! records including the Wilcoxon A/B test.

pub mod cache_key;
pub mod controller;
pub mod evaluate;
pub mod experiment;
pub mod repository;
pub mod scenario;
pub mod toolbox;

pub use cache_key::CellKey;
pub use controller::{CleaningStrategy, Controller, Plan};
pub use evaluate::{
    detect_with_context, eval_classifier, eval_classifier_guarded, eval_clusterer,
    eval_pipeline_s5, eval_regressor, eval_regressor_guarded, run_repair, run_repair_guarded,
    scenario_split, DetectorHarness, DetectorRun, RepairRun, VersionTable,
};
pub use experiment::{ab_test, AbTestRecord, DetectionRecord, ModelRecord, RepairRecord};
pub use rein_guard::{
    ChaosMode, ChaosRule, ChaosSpec, CrashRule, CrashSpec, CrashWhen, FailureCause, GuardPolicy,
    Phase, StrategyFailure,
};
pub use repository::{Repository, VersionKey};
pub use scenario::{Scenario, VersionRole};
pub use toolbox::{applicable_detectors, applicable_repairers, AvailableSignals};
