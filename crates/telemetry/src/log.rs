//! The `REIN_LOG` stderr event emitter.
//!
//! The effective level is parsed from the environment once and cached in
//! an atomic, so a disabled [`info!`](crate::info!) or
//! [`debug!`](crate::debug!) call site costs a single relaxed load — the
//! format arguments are never evaluated.

use std::sync::atomic::{AtomicU8, Ordering};

/// Emitter verbosity, ordered so `Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is emitted.
    Off = 0,
    /// Run-level events: warnings, phase summaries.
    Info = 1,
    /// Everything, including span open/close events.
    Debug = 2,
}

/// Sentinel meaning "not yet read from the environment".
const UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

fn parse(value: &str) -> Option<Level> {
    match value.trim().to_ascii_lowercase().as_str() {
        "off" | "0" | "none" => Some(Level::Off),
        "info" | "1" => Some(Level::Info),
        "debug" | "2" => Some(Level::Debug),
        _ => None,
    }
}

/// The effective level: `REIN_LOG` if set and valid, else `info`.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Info,
        2 => Level::Debug,
        _ => {
            // audit:allow(env-read-confinement, REIN_LOG only selects log verbosity in the observer layer; it cannot reach a computed result)
            let from_env = std::env::var("REIN_LOG");
            let resolved = match &from_env {
                Ok(raw) => parse(raw),
                Err(_) => Some(Level::Info),
            };
            let level = resolved.unwrap_or(Level::Info);
            LEVEL.store(level as u8, Ordering::Relaxed);
            if resolved.is_none() {
                if let Ok(raw) = from_env {
                    emit(
                        Level::Info,
                        &format!("REIN_LOG={raw:?} is not off|info|debug; using info"),
                    );
                }
            }
            level
        }
    }
}

/// Overrides the level, ignoring `REIN_LOG`. For tests and overhead
/// benchmarks.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// True when events at `at` should be emitted.
#[inline]
pub fn enabled(at: Level) -> bool {
    // Fast path: one atomic load once the level is cached.
    let cached = LEVEL.load(Ordering::Relaxed);
    if cached != UNSET {
        return cached >= at as u8;
    }
    level() >= at
}

/// Writes one event line to stderr. Callers should gate on [`enabled`]
/// (the macros do) so formatting is skipped when the level is off.
pub fn emit(at: Level, message: &str) {
    let tag = match at {
        Level::Off => return,
        Level::Info => "info",
        Level::Debug => "debug",
    };
    eprintln!("[rein {tag}] {message}");
}

/// Emits an `info`-level event if `REIN_LOG` allows it.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Info) {
            $crate::emit($crate::Level::Info, &::std::format!($($arg)*));
        }
    };
}

/// Emits a `debug`-level event if `REIN_LOG` allows it.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Debug) {
            $crate::emit($crate::Level::Debug, &::std::format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Off < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(parse("off"), Some(Level::Off));
        assert_eq!(parse("INFO"), Some(Level::Info));
        assert_eq!(parse(" debug "), Some(Level::Debug));
        assert_eq!(parse("2"), Some(Level::Debug));
        assert_eq!(parse("verbose"), None);
    }
}
