//! Fixture: hash containers iterate in nondeterministic order.
use std::collections::HashMap;

pub fn counts(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut m: HashMap<u32, usize> = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m.into_iter().collect()
}
