//! Cell-level detection quality: precision, recall, F1 (§6.1 of the paper).

use rein_data::CellMask;
use serde::{Deserialize, Serialize};

/// Precision / recall / F1 together with the raw confusion counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionQuality {
    /// Detected cells that are actually erroneous.
    pub true_positives: usize,
    /// Detected cells that are actually clean.
    pub false_positives: usize,
    /// Erroneous cells the detector missed.
    pub false_negatives: usize,
    /// `tp / (tp + fp)`; 0 when nothing was detected.
    pub precision: f64,
    /// `tp / (tp + fn)`; 0 when the ground truth has no errors.
    pub recall: f64,
    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub f1: f64,
}

impl DetectionQuality {
    /// Computes quality from raw confusion counts.
    pub fn from_counts(tp: usize, fp: usize, fneg: usize) -> Self {
        let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
        let recall = if tp + fneg == 0 { 0.0 } else { tp as f64 / (tp + fneg) as f64 };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            true_positives: tp,
            false_positives: fp,
            false_negatives: fneg,
            precision,
            recall,
            f1,
        }
    }

    /// Total number of cells the detector flagged.
    pub fn detected(&self) -> usize {
        self.true_positives + self.false_positives
    }

    /// Total number of actually erroneous cells.
    pub fn actual_errors(&self) -> usize {
        self.true_positives + self.false_negatives
    }
}

/// Evaluates a detection mask against the ground-truth error mask.
///
/// # Panics
/// Panics on mask dimension mismatch (the masks come from the same table).
pub fn evaluate_detection(detected: &CellMask, actual: &CellMask) -> DetectionQuality {
    let tp = detected.intersect(actual).count();
    let fp = detected.count() - tp;
    let fneg = actual.count() - tp;
    DetectionQuality::from_counts(tp, fp, fneg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::CellRef;

    fn mask(cells: &[(usize, usize)]) -> CellMask {
        CellMask::from_cells(10, 4, cells.iter().map(|&(r, c)| CellRef::new(r, c)))
    }

    #[test]
    fn perfect_detection() {
        let actual = mask(&[(0, 0), (1, 2), (3, 3)]);
        let q = evaluate_detection(&actual, &actual);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f1, 1.0);
        assert_eq!(q.true_positives, 3);
    }

    #[test]
    fn partial_overlap() {
        let actual = mask(&[(0, 0), (1, 1), (2, 2), (3, 3)]);
        let detected = mask(&[(0, 0), (1, 1), (5, 0), (6, 0)]);
        let q = evaluate_detection(&detected, &actual);
        assert_eq!(q.true_positives, 2);
        assert_eq!(q.false_positives, 2);
        assert_eq!(q.false_negatives, 2);
        assert_eq!(q.precision, 0.5);
        assert_eq!(q.recall, 0.5);
        assert_eq!(q.f1, 0.5);
        assert_eq!(q.detected(), 4);
        assert_eq!(q.actual_errors(), 4);
    }

    #[test]
    fn empty_detection_yields_zero_scores() {
        let actual = mask(&[(0, 0)]);
        let q = evaluate_detection(&mask(&[]), &actual);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f1, 0.0);
    }

    #[test]
    fn no_actual_errors() {
        let q = evaluate_detection(&mask(&[(1, 1)]), &mask(&[]));
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.false_positives, 1);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let q = DetectionQuality::from_counts(1, 0, 3); // P=1, R=0.25
        assert!((q.f1 - 0.4).abs() < 1e-12);
    }
}
