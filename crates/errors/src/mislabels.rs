//! Mislabel (class-error) injection: flips the label of `rate` of the rows
//! to a different class drawn from the observed label domain. This is the
//! error type CleanLab targets and the paper's "class errors".

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::{CellMask, Table};

use crate::common::Injection;

/// Flips labels in column `label_col` for `rate` of the rows.
///
/// Requires at least two distinct non-null label values; otherwise nothing
/// can be flipped and the injection is the identity.
pub fn inject_mislabels(table: &Table, label_col: usize, rate: f64, seed: u64) -> Injection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = table.clone();
    let mut mask = CellMask::new(table.n_rows(), table.n_cols());

    let domain: Vec<_> = table.value_counts(label_col).into_iter().map(|(v, _)| v).collect();
    if domain.len() < 2 || rate <= 0.0 {
        return Injection::unchanged(out);
    }

    let mut rows: Vec<usize> =
        (0..table.n_rows()).filter(|&r| !table.cell(r, label_col).is_null()).collect();
    rows.shuffle(&mut rng);
    let k = ((rows.len() as f64 * rate).round() as usize).clamp(1, rows.len());
    for &r in &rows[..k] {
        let current = table.cell(r, label_col);
        let others: Vec<_> = domain.iter().filter(|v| *v != current).collect();
        let new = others[rng.random_range(0..others.len())].clone();
        out.set_cell(r, label_col, new);
        mask.set(r, label_col, true);
    }
    Injection { table: out, cells: mask }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::diff::diff_mask;
    use rein_data::{ColumnMeta, ColumnType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("y", ColumnType::Str).label(),
        ]);
        Table::from_rows(
            schema,
            (0..50)
                .map(|i| {
                    vec![Value::Float(i as f64), Value::str(if i % 2 == 0 { "pos" } else { "neg" })]
                })
                .collect(),
        )
    }

    #[test]
    fn flips_land_only_on_the_label_column() {
        let t = table();
        let inj = inject_mislabels(&t, 1, 0.2, 3);
        assert_eq!(inj.cells.count(), 10);
        for c in inj.cells.iter() {
            assert_eq!(c.col, 1);
            assert_ne!(inj.table.cell(c.row, 1), t.cell(c.row, 1));
        }
        assert_eq!(diff_mask(&t, &inj.table), inj.cells);
    }

    #[test]
    fn flipped_labels_stay_in_domain() {
        let t = table();
        let inj = inject_mislabels(&t, 1, 0.3, 5);
        for c in inj.cells.iter() {
            let v = inj.table.cell(c.row, 1).to_string();
            assert!(v == "pos" || v == "neg");
        }
    }

    #[test]
    fn single_class_cannot_be_mislabeled() {
        let schema = Schema::new(vec![ColumnMeta::new("y", ColumnType::Str).label()]);
        let t = Table::from_rows(schema, (0..10).map(|_| vec![Value::str("only")]).collect());
        let inj = inject_mislabels(&t, 0, 0.5, 1);
        assert!(inj.cells.is_empty());
    }

    #[test]
    fn deterministic_by_seed() {
        let t = table();
        assert_eq!(inject_mislabels(&t, 1, 0.2, 4).table, inject_mislabels(&t, 1, 0.2, 4).table);
    }
}
