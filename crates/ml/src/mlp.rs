//! Multi-layer perceptron: one ReLU hidden layer trained by mini-batch
//! SGD with momentum — softmax/cross-entropy head for classification,
//! linear/squared-error head for regression.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::rng::randn;

use crate::linalg::Matrix;
use crate::logistic::softmax_in_place;
use crate::model::{Classifier, Regressor};

/// MLP hyperparameters.
#[derive(Debug, Clone)]
pub struct MlpParams {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Learning rate.
    pub lr: f64,
    /// Epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Momentum coefficient.
    pub momentum: f64,
}

impl Default for MlpParams {
    fn default() -> Self {
        Self { hidden: 32, lr: 0.05, epochs: 60, batch: 32, momentum: 0.9 }
    }
}

/// Dense layer weights plus momentum buffers.
#[derive(Debug, Clone)]
struct Net {
    w1: Matrix, // d × h
    b1: Vec<f64>,
    w2: Matrix, // h × out
    b2: Vec<f64>,
    v_w1: Matrix,
    v_b1: Vec<f64>,
    v_w2: Matrix,
    v_b2: Vec<f64>,
}

impl Net {
    fn init(d: usize, h: usize, out: usize, rng: &mut StdRng) -> Self {
        let mut w1 = Matrix::zeros(d, h);
        let mut w2 = Matrix::zeros(h, out);
        let s1 = (2.0 / d.max(1) as f64).sqrt();
        let s2 = (2.0 / h.max(1) as f64).sqrt();
        for r in 0..d {
            for c in 0..h {
                w1[(r, c)] = s1 * randn(rng);
            }
        }
        for r in 0..h {
            for c in 0..out {
                w2[(r, c)] = s2 * randn(rng);
            }
        }
        Net {
            v_w1: Matrix::zeros(d, h),
            v_b1: vec![0.0; h],
            v_w2: Matrix::zeros(h, out),
            v_b2: vec![0.0; out],
            w1,
            b1: vec![0.0; h],
            w2,
            b2: vec![0.0; out],
        }
    }

    /// Forward pass for one sample: returns (hidden activations, outputs).
    fn forward(&self, xr: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let h = self.b1.len();
        let out = self.b2.len();
        let mut hidden = self.b1.clone();
        for (f, &xv) in xr.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            for (hv, c) in hidden.iter_mut().zip(0..h) {
                *hv += xv * self.w1[(f, c)];
            }
        }
        for hv in &mut hidden {
            *hv = hv.max(0.0); // ReLU
        }
        let mut output = self.b2.clone();
        for (j, &hv) in hidden.iter().enumerate() {
            if hv == 0.0 {
                continue;
            }
            for (ov, c) in output.iter_mut().zip(0..out) {
                *ov += hv * self.w2[(j, c)];
            }
        }
        (hidden, output)
    }

    /// One SGD step on a batch given per-sample output-layer errors
    /// (dL/dz of the output pre-activations).
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        x: &Matrix,
        batch: &[usize],
        errors: &[Vec<f64>],
        hiddens: &[Vec<f64>],
        lr: f64,
        momentum: f64,
    ) {
        let d = self.w1.rows();
        let h = self.b1.len();
        let out = self.b2.len();
        let scale = lr / batch.len().max(1) as f64;

        let mut g_w2 = Matrix::zeros(h, out);
        let mut g_b2 = vec![0.0; out];
        let mut g_w1 = Matrix::zeros(d, h);
        let mut g_b1 = vec![0.0; h];

        for (bi, &i) in batch.iter().enumerate() {
            let err = &errors[bi];
            let hid = &hiddens[bi];
            for (j, &hv) in hid.iter().enumerate() {
                if hv > 0.0 {
                    for (c, &e) in err.iter().enumerate() {
                        g_w2[(j, c)] += hv * e;
                    }
                }
            }
            for (c, &e) in err.iter().enumerate() {
                g_b2[c] += e;
            }
            // Backprop into hidden.
            let mut hid_err = vec![0.0; h];
            for (j, he) in hid_err.iter_mut().enumerate() {
                if hid[j] > 0.0 {
                    for (c, &e) in err.iter().enumerate() {
                        *he += e * self.w2[(j, c)];
                    }
                }
            }
            let xr = x.row(i);
            for (f, &xv) in xr.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                for (j, &he) in hid_err.iter().enumerate() {
                    g_w1[(f, j)] += xv * he;
                }
            }
            for (j, &he) in hid_err.iter().enumerate() {
                g_b1[j] += he;
            }
        }

        // Momentum updates.
        for f in 0..d {
            for j in 0..h {
                let v = &mut self.v_w1[(f, j)];
                *v = momentum * *v - scale * g_w1[(f, j)];
                self.w1[(f, j)] += *v;
            }
        }
        for j in 0..h {
            self.v_b1[j] = momentum * self.v_b1[j] - scale * g_b1[j];
            self.b1[j] += self.v_b1[j];
            for c in 0..out {
                let v = &mut self.v_w2[(j, c)];
                *v = momentum * *v - scale * g_w2[(j, c)];
                self.w2[(j, c)] += *v;
            }
        }
        for c in 0..out {
            self.v_b2[c] = momentum * self.v_b2[c] - scale * g_b2[c];
            self.b2[c] += self.v_b2[c];
        }
    }
}

fn train<FErr: FnMut(usize, &[f64]) -> Vec<f64>>(
    net: &mut Net,
    x: &Matrix,
    params: &MlpParams,
    rng: &mut StdRng,
    mut out_error: FErr,
) {
    let n = x.rows();
    if n == 0 {
        return;
    }
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..params.epochs {
        rein_guard::checkpoint(n as u64);
        order.shuffle(rng);
        for batch in order.chunks(params.batch.max(1)) {
            let mut errors = Vec::with_capacity(batch.len());
            let mut hiddens = Vec::with_capacity(batch.len());
            for &i in batch {
                let (hid, out) = net.forward(x.row(i));
                errors.push(out_error(i, &out));
                hiddens.push(hid);
            }
            net.step(x, batch, &errors, &hiddens, params.lr, params.momentum);
        }
    }
}

/// MLP classifier (softmax head).
pub struct MlpClassifier {
    params: MlpParams,
    seed: u64,
    net: Option<Net>,
    n_classes: usize,
}

impl MlpClassifier {
    /// Builds an (unfitted) MLP classifier.
    pub fn new(params: MlpParams, seed: u64) -> Self {
        Self { params, seed, net: None, n_classes: 0 }
    }
}

impl Classifier for MlpClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        self.n_classes = n_classes.max(2);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut net = Net::init(x.cols(), self.params.hidden, self.n_classes, &mut rng);
        let params = self.params.clone();
        train(&mut net, x, &params, &mut rng, |i, out| {
            let mut probs = out.to_vec();
            softmax_in_place(&mut probs);
            (0..probs.len()).map(|c| probs[c] - if y[i] == c { 1.0 } else { 0.0 }).collect()
        });
        self.net = Some(net);
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        let Some(net) = &self.net else { return vec![0; x.rows()] };
        (0..x.rows())
            .map(|r| {
                let (_, out) = net.forward(x.row(r));
                crate::linalg::argmax(&out)
            })
            .collect()
    }

    fn predict_proba(&self, x: &Matrix, n_classes: usize) -> Matrix {
        let mut p = Matrix::zeros(x.rows(), n_classes);
        let Some(net) = &self.net else { return p };
        for r in 0..x.rows() {
            let (_, mut out) = net.forward(x.row(r));
            softmax_in_place(&mut out);
            let w = out.len().min(n_classes);
            p.row_mut(r)[..w].copy_from_slice(&out[..w]);
        }
        p
    }
}

/// MLP regressor (linear head, squared error); target standardised
/// internally for stable learning rates.
pub struct MlpRegressor {
    params: MlpParams,
    seed: u64,
    net: Option<Net>,
    y_shift: f64,
    y_scale: f64,
}

impl MlpRegressor {
    /// Builds an (unfitted) MLP regressor.
    pub fn new(params: MlpParams, seed: u64) -> Self {
        Self { params, seed, net: None, y_shift: 0.0, y_scale: 1.0 }
    }
}

impl Regressor for MlpRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        let n = x.rows();
        if n == 0 {
            self.net = None;
            return;
        }
        let mean = y.iter().sum::<f64>() / n as f64;
        let std = (y.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64).sqrt().max(1e-9);
        self.y_shift = mean;
        self.y_scale = std;
        let ys: Vec<f64> = y.iter().map(|v| (v - mean) / std).collect();

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut net = Net::init(x.cols(), self.params.hidden, 1, &mut rng);
        let params = self.params.clone();
        train(&mut net, x, &params, &mut rng, |i, out| vec![out[0] - ys[i]]);
        self.net = Some(net);
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let Some(net) = &self.net else { return vec![0.0; x.rows()] };
        (0..x.rows())
            .map(|r| {
                let (_, out) = net.forward(x.row(r));
                self.y_shift + self.y_scale * out[0]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{
        blob_classification, linear_regression_data, train_test_accuracy, train_test_rmse,
    };

    #[test]
    fn classifier_learns_blobs() {
        let (x, y) = blob_classification(150, 3, 131);
        let mut m = MlpClassifier::new(MlpParams::default(), 1);
        let acc = train_test_accuracy(&mut m, &x, &y, 3);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn classifier_solves_xor() {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..200 {
            let a = (i / 2) % 2;
            let b = i % 2;
            rows.push(vec![a as f64, b as f64]);
            ys.push(a ^ b);
        }
        let x = Matrix::from_rows(&rows);
        let mut m = MlpClassifier::new(MlpParams { epochs: 150, ..Default::default() }, 5);
        m.fit(&x, &ys, 2);
        let acc = crate::metrics::accuracy(&ys, &m.predict(&x));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn regressor_fits_linear_data() {
        let (x, y) = linear_regression_data(300, 0.1, 137);
        let mut m = MlpRegressor::new(MlpParams::default(), 2);
        let err = train_test_rmse(&mut m, &x, &y);
        assert!(err < 1.0, "rmse {err}");
    }

    #[test]
    fn proba_normalised() {
        let (x, y) = blob_classification(60, 2, 139);
        let mut m = MlpClassifier::new(MlpParams { epochs: 20, ..Default::default() }, 3);
        m.fit(&x, &y, 2);
        let p = m.predict_proba(&x, 2);
        for r in 0..p.rows() {
            assert!((p.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn seeded_training_reproducible() {
        let (x, y) = blob_classification(80, 2, 149);
        let mut a = MlpClassifier::new(MlpParams { epochs: 10, ..Default::default() }, 7);
        let mut b = MlpClassifier::new(MlpParams { epochs: 10, ..Default::default() }, 7);
        a.fit(&x, &y, 2);
        b.fit(&x, &y, 2);
        assert_eq!(a.predict(&x), b.predict(&x));
    }
}
