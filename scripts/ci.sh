#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (REIN_THREADS=1)"
REIN_THREADS=1 cargo test -q

echo "==> cargo test -q (REIN_THREADS=4)"
REIN_THREADS=4 cargo test -q

echo "==> cargo run -p rein-audit (determinism & integrity audit, semantic rules + SARIF, stale suppressions blocking)"
cargo run -q -p rein-audit -- --quiet --deny-stale --sarif artifacts/audit/report.sarif

echo "==> ledger report (ingest committed artifacts; must be a deterministic no-op twice)"
cargo run -q --release -p rein-ledger --bin rein_report -- --out artifacts/ledger \
  --diff artifacts/telemetry/chaos_smoke-29.json artifacts/telemetry/fig5_repair_numerical-61.json
first_sum=$(sha256sum artifacts/ledger/index.json artifacts/ledger/report.md artifacts/ledger/report.html)
cargo run -q --release -p rein-ledger --bin rein_report -- --out artifacts/ledger \
  --diff artifacts/telemetry/chaos_smoke-29.json artifacts/telemetry/fig5_repair_numerical-61.json
second_sum=$(sha256sum artifacts/ledger/index.json artifacts/ledger/report.md artifacts/ledger/report.html)
if [ "$first_sum" != "$second_sum" ]; then
  echo "ledger outputs changed between two identical runs:"
  echo "$first_sum"
  echo "$second_sum"
  exit 1
fi
echo "==> perf smoke (comparator self-test + small-scale suite vs committed baseline, report-only)"
cargo run -q --release -p rein-bench --bin bench_compare -- --self-test
REIN_SCALE=0.01 cargo run -q --release -p rein-bench --bin perf_baseline -- \
  --out artifacts/perf/BENCH_ci.json
# Report-only: shared CI runners are too noisy to gate merges on wall
# clock, and the committed baseline was recorded on different hardware
# at a different scale. The table in the log is the signal.
cargo run -q --release -p rein-bench --bin bench_compare -- \
  BENCH_0.json artifacts/perf/BENCH_ci.json --report-only

echo "==> chaos smoke at REIN_THREADS=1 and 4 (exit 3 = degraded-as-injected)"
# chaos_smoke exits 3 by design: the injected cells *did* degrade and the
# manifest records them. 4 = a non-injected cell diverged, 5 = wrong
# failure set, anything else = crash or bad environment. Running it at
# two pool widths and hashing the fault-free cell dumps proves the grid
# is worker-count invariant in the serial/parallel dimension too.
for threads in 1 4; do
  set +e
  REIN_SCALE=0.05 REIN_THREADS=$threads cargo run -q --release -p rein-bench --bin chaos_smoke -- \
    --dump-cells "artifacts/chaos/cells-t$threads.txt"
  chaos_exit=$?
  set -e
  if [ "$chaos_exit" -ne 3 ]; then
    echo "chaos_smoke (REIN_THREADS=$threads) exited $chaos_exit (expected 3: degraded run with recorded failures)"
    exit 1
  fi
done
serial_sum=$(sha256sum artifacts/chaos/cells-t1.txt | cut -d' ' -f1)
parallel_sum=$(sha256sum artifacts/chaos/cells-t4.txt | cut -d' ' -f1)
if [ "$serial_sum" != "$parallel_sum" ]; then
  echo "grid cell dumps differ between REIN_THREADS=1 ($serial_sum) and REIN_THREADS=4 ($parallel_sum)"
  exit 1
fi
echo "grid dumps byte-identical across REIN_THREADS=1/4 (sha256 $serial_sum)"

echo "==> crash smoke at REIN_THREADS=1 and 4 (kill-resume byte-identity, quarantine recovery, warm-store hit rate)"
# crash_smoke is self-asserting: it kills a store-backed grid at every
# REIN_CRASH commit point, resumes from the journal, flips a journal
# byte to force quarantine recovery, and requires the warm store to
# serve >=90% of cells — every dump byte-compared against a store-less
# reference. Exit 0 is the only pass; set -e gates the rest.
for threads in 1 4; do
  REIN_SCALE=0.05 REIN_THREADS=$threads cargo run -q --release -p rein-bench --bin crash_smoke
done

echo "==> parallel smoke (S1-S5 grid byte-identity at 1/4/N threads, in-process)"
REIN_SCALE=0.05 cargo run -q --release -p rein-bench --bin parallel_smoke

echo "==> trace exports from the smoke manifests (double run must be byte-identical; ledger must register)"
# The smoke runs above rewrote their manifests; render the causal trace
# exports (Chrome trace JSON, flamegraph SVG, per-cell cost table)
# twice and hash-compare — the exports are pure functions of the
# manifest bytes, so any drift is nondeterminism. rein_trace exits 4 on
# orphan spans (an incomplete causal tree) and re-ingests the ledger.
cargo run -q --release -p rein-ledger --bin rein_trace -- \
  --manifest artifacts/telemetry/chaos_smoke-29.json \
  --manifest artifacts/telemetry/parallel_smoke-31.json
first_trace=$(sha256sum artifacts/trace/chaos_smoke-29.* artifacts/trace/parallel_smoke-31.*)
cargo run -q --release -p rein-ledger --bin rein_trace -- \
  --manifest artifacts/telemetry/chaos_smoke-29.json \
  --manifest artifacts/telemetry/parallel_smoke-31.json
second_trace=$(sha256sum artifacts/trace/chaos_smoke-29.* artifacts/trace/parallel_smoke-31.*)
if [ "$first_trace" != "$second_trace" ]; then
  echo "trace exports changed between two identical runs:"
  echo "$first_trace"
  echo "$second_trace"
  exit 1
fi
echo "trace exports byte-identical across a double run"
if ! grep -q '"kind": "trace_export"' artifacts/ledger/index.json; then
  echo "ledger index carries no trace_export entries after rein_trace"
  exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "CI checks passed."
