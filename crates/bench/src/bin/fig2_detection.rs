//! Figure 2: detection accuracy (a,d,f,h,k,n,p,q,r), detector-similarity
//! IoU matrices (b,e,g,i,l,s) and runtimes (c,j,m,o,t).
//!
//! For each dataset the benchmark controller plans the applicable
//! detectors; the report prints, per detector, the number of detected
//! cells split into true/false positives against the red-dashed actual
//! error count, then the pairwise true-positive IoU matrix, then runtimes.
//!
//! Usage: `fig2_detection [dataset ...]` (default: the nine datasets the
//! figure covers).

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use rein_bench::{conclude, dataset, f, header, phase, secs};
use rein_datasets::DatasetId;
use rein_stats::iou::iou_matrix;

fn main() {
    let setup = phase("setup");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let default = [
        DatasetId::Beers,
        DatasetId::Citation,
        DatasetId::Adult,
        DatasetId::SmartFactory,
        DatasetId::Nasa,
        DatasetId::Bikes,
        DatasetId::Water,
        DatasetId::Power,
        DatasetId::Har,
    ];
    let ids: Vec<DatasetId> = if args.is_empty() {
        default.to_vec()
    } else {
        args.iter()
            .filter_map(|a| {
                let id = DatasetId::from_name(a);
                if id.is_none() {
                    rein_telemetry::info!("unknown dataset {a:?}");
                }
                id
            })
            .collect()
    };
    drop(setup);

    let ctrl = rein_bench::controller(100, 11);
    for (i, id) in ids.iter().enumerate() {
        let generate = phase("generate");
        let ds = dataset(*id, 200 + i as u64);
        drop(generate);
        header(&format!(
            "Figure 2 — {} (actual erroneous cells: {})",
            ds.info.name,
            ds.mask.count()
        ));
        let detect = phase("detect");
        let mut runs = ctrl.run_detection(&ds);
        drop(detect);
        let _report = phase("report");
        // Degraded cells are excluded from the accuracy table (an empty
        // mask would just read as zero recall) and flagged explicitly.
        let degraded: Vec<String> = runs
            .iter()
            .filter_map(|r| r.failure.as_ref().map(|f| format!("{} ({})", r.kind.name(), f.cause)))
            .collect();
        for line in &degraded {
            println!("  DEGRADED {line}");
        }
        // The paper excludes detectors that found nothing.
        runs.retain(|r| r.quality.detected() > 0 && r.failure.is_none());
        runs.sort_by(|a, b| b.quality.f1.total_cmp(&a.quality.f1));

        println!(
            "{:<18} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7}",
            "detector", "detected", "tp", "fp", "P", "R", "F1"
        );
        for run in &runs {
            println!(
                "{:<18} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7}",
                run.kind.name(),
                run.quality.detected(),
                run.quality.true_positives,
                run.quality.false_positives,
                f(run.quality.precision),
                f(run.quality.recall),
                f(run.quality.f1),
            );
        }

        // IoU over true positives (Figures 2b/e/g/i/l/s).
        if runs.len() >= 2 {
            println!("\nIoU (true positives):");
            let named: Vec<(&str, &rein_data::CellMask)> =
                runs.iter().map(|r| (r.kind.name(), &r.mask)).collect();
            let m = iou_matrix(&named, &ds.mask);
            print!("{:<18}", "");
            for r in &runs {
                print!("{:>6}", &r.kind.name()[..r.kind.name().len().min(5)]);
            }
            println!();
            for (ri, run) in runs.iter().enumerate() {
                print!("{:<18}", run.kind.name());
                for v in m[ri].iter().take(runs.len()) {
                    print!("{v:>6.2}");
                }
                println!();
            }
        }

        println!("\nruntime:");
        let mut by_time = runs.iter().collect::<Vec<_>>();
        by_time.sort_by_key(|r| r.runtime);
        for run in by_time {
            let flag = if run.runtime.as_secs_f64() > 60.0 { "  (>1min)" } else { "" };
            println!("  {:<18} {}{}", run.kind.name(), secs(run.runtime), flag);
        }
    }

    conclude("fig2_detection", ctrl.seed, ctrl.label_budget as u64);
}
