//! Value-swapping injection: pairs of cells within one attribute exchange
//! their values (an `error-generator` error type). Both cells of a swapped
//! pair become erroneous unless they held equal values.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::{CellMask, Table};

use crate::common::Injection;

/// Swaps values between `rate × n_rows / 2` disjoint row pairs in each of
/// `cols`. Pairs whose two values are equal are skipped (no actual error).
pub fn inject_value_swaps(table: &Table, cols: &[usize], rate: f64, seed: u64) -> Injection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = table.clone();
    let mut mask = CellMask::new(table.n_rows(), table.n_cols());
    for &col in cols {
        let mut rows: Vec<usize> =
            (0..table.n_rows()).filter(|&r| !table.cell(r, col).is_null()).collect();
        rows.shuffle(&mut rng);
        let n_pairs = ((rows.len() as f64 * rate / 2.0).round() as usize).min(rows.len() / 2);
        for p in 0..n_pairs {
            let (a, b) = (rows[2 * p], rows[2 * p + 1]);
            if table.cell(a, col) == table.cell(b, col) {
                continue;
            }
            let va = out.cell(a, col).clone();
            let vb = out.cell(b, col).clone();
            out.set_cell(a, col, vb);
            out.set_cell(b, col, va);
            mask.set(a, col, true);
            mask.set(b, col, true);
        }
    }
    Injection { table: out, cells: mask }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::diff::diff_mask;
    use rein_data::{ColumnMeta, ColumnType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![ColumnMeta::new("x", ColumnType::Int)]);
        Table::from_rows(schema, (0..30).map(|i| vec![Value::Int(i)]).collect())
    }

    #[test]
    fn swaps_produce_pairs_of_errors() {
        let t = table();
        let inj = inject_value_swaps(&t, &[0], 0.4, 3);
        assert!(inj.cells.count() >= 10);
        assert_eq!(inj.cells.count() % 2, 0, "errors come in pairs");
        assert_eq!(diff_mask(&t, &inj.table), inj.cells);
    }

    #[test]
    fn multiset_of_column_values_is_preserved() {
        let t = table();
        let inj = inject_value_swaps(&t, &[0], 0.5, 9);
        let mut before: Vec<i64> = t.column(0).iter().map(|v| v.as_i64().unwrap()).collect();
        let mut after: Vec<i64> = inj.table.column(0).iter().map(|v| v.as_i64().unwrap()).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn equal_values_do_not_count_as_errors() {
        let schema = Schema::new(vec![ColumnMeta::new("c", ColumnType::Str)]);
        let t = Table::from_rows(schema, (0..20).map(|_| vec![Value::str("same")]).collect());
        let inj = inject_value_swaps(&t, &[0], 1.0, 2);
        assert!(inj.cells.is_empty());
    }

    #[test]
    fn deterministic_by_seed() {
        let t = table();
        assert_eq!(
            inject_value_swaps(&t, &[0], 0.3, 8).table,
            inject_value_swaps(&t, &[0], 0.3, 8).table
        );
    }
}
