//! Call-graph closure fixture (negative): the only path from the
//! public API to the panic site runs through a closure passed to an
//! iterator adapter. `panic-reachability` firing on `grid` proves the
//! closure's member calls are traversable call edges.

pub fn grid(xs: &[u64]) -> Vec<u64> {
    xs.iter().map(|x| risky(*x)).collect()
}

fn risky(x: u64) -> u64 {
    if x == 0 {
        panic!("zero cell");
    }
    x
}
