//! Integration tests for rein-telemetry.
//!
//! Telemetry state is process-global and the test harness runs tests on
//! parallel threads, so every test uses names unique to itself and
//! filters global snapshots down to them.

use std::collections::BTreeMap;
use std::time::Duration;

use rayon::prelude::*;
use rein_telemetry::{
    counter, counters_snapshot, current, histogram, span, span_under, HistogramSummary, RunConfig,
    RunManifest, SpanRecord,
};

fn spans_named(prefix: &str) -> Vec<SpanRecord> {
    rein_telemetry::snapshot_spans().into_iter().filter(|s| s.name.starts_with(prefix)).collect()
}

#[test]
fn spans_nest_and_close_in_order() {
    let root = span("nesttest:root");
    let root_ctx = root.ctx();
    {
        let child = span("nesttest:child");
        let _grandchild = span("nesttest:grandchild");
        drop(child); // out-of-order close must not corrupt the stack
    }
    // The stack unwound back to the root span.
    assert_eq!(current(), Some(root_ctx));
    drop(root);
    assert!(!spans_named("nesttest:").iter().any(|s| Some(s.id) == current().map(|c| c.id)));

    let spans = spans_named("nesttest:");
    assert_eq!(spans.len(), 3);
    let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap().clone();
    let root = by_name("nesttest:root");
    let child = by_name("nesttest:child");
    let grandchild = by_name("nesttest:grandchild");

    assert_eq!(root.depth, 0);
    assert_eq!(child.depth, 1);
    assert_eq!(grandchild.depth, 2);
    assert_eq!(root.parent_id, 0);
    assert_eq!(child.parent_id, root.id);
    assert_eq!(grandchild.parent_id, child.id);

    // Completion order: children finish before their ancestors.
    let pos = |id: u64| spans.iter().position(|s| s.id == id).unwrap();
    assert!(pos(grandchild.id) < pos(root.id));
    assert!(pos(child.id) < pos(root.id));

    // A parent's wall-clock covers its children.
    assert!(root.duration_ms >= child.duration_ms);
    assert!(root.start_ms <= child.start_ms);
}

#[test]
fn finish_returns_the_duration_recorded() {
    let s = span("finishtest:timed");
    std::thread::sleep(Duration::from_millis(5));
    let d = s.finish();
    assert!(d >= Duration::from_millis(5));
    let recs = spans_named("finishtest:");
    assert_eq!(recs.len(), 1);
    let diff = (recs[0].duration_ms - d.as_secs_f64() * 1e3).abs();
    assert!(diff < 1e-9, "record should hold the same duration finish() returned");
}

#[test]
fn counters_sum_correctly_under_rayon() {
    let parent = span("rayontest:fanout");
    let parent_ctx = Some(parent.ctx());
    let cells = counter("rayontest_cells");
    let before = cells.get();

    let total: u64 = (0..64u64)
        .collect::<Vec<_>>()
        .par_iter()
        .map(|&i| {
            let _s = span_under("rayontest:item", parent_ctx);
            let c = counter("rayontest_cells");
            for _ in 0..100 {
                c.incr();
            }
            i
        })
        .sum();

    assert_eq!(total, (0..64).sum::<u64>());
    assert_eq!(cells.get() - before, 64 * 100, "increments must not be lost across threads");
    drop(parent);

    let items = spans_named("rayontest:item");
    assert_eq!(items.len(), 64);
    let parent_rec = spans_named("rayontest:fanout").pop().unwrap();
    for item in items {
        assert_eq!(item.parent_id, parent_rec.id, "worker spans attach to the captured parent");
        assert_eq!(item.depth, parent_rec.depth + 1);
    }
}

#[test]
fn histogram_percentiles_land_in_the_right_buckets() {
    let h = histogram("histtest_latency");
    for _ in 0..50 {
        h.record(Duration::from_millis(1));
    }
    for _ in 0..40 {
        h.record(Duration::from_millis(4));
    }
    for _ in 0..10 {
        h.record(Duration::from_millis(16));
    }
    let s = h.summary();
    assert_eq!(s.count, 100);
    // Mean and max come from exact running aggregates.
    assert!((s.mean_ms - 3.7).abs() < 1e-9, "mean {}", s.mean_ms);
    assert!((s.max_ms - 16.0).abs() < 1e-9, "max {}", s.max_ms);
    // Percentiles are bucket-interpolated: assert the containing bucket.
    // 1ms lands in [0.52, 1.05)ms, 4ms in [2.10, 4.20)ms, 16ms in [8.39, 16.78)ms.
    assert!((0.5..1.1).contains(&s.p50_ms), "p50 {}", s.p50_ms);
    assert!((2.0..4.3).contains(&s.p90_ms), "p90 {}", s.p90_ms);
    assert!((8.3..16.8).contains(&s.p99_ms), "p99 {}", s.p99_ms);
    // Monotone.
    assert!(s.p50_ms <= s.p90_ms && s.p90_ms <= s.p99_ms && s.p99_ms <= s.max_ms * 1.05);
}

#[test]
fn manifest_roundtrips_losslessly_through_json() {
    let mut counters = BTreeMap::new();
    counters.insert("cells_scanned".to_string(), 123_456u64);
    counters.insert("rng_draws".to_string(), u64::MAX); // must survive as u64
    let mut histograms = BTreeMap::new();
    histograms.insert(
        "detector_runtime".to_string(),
        HistogramSummary {
            count: 12,
            mean_ms: 3.25,
            p50_ms: 2.0,
            p90_ms: 7.5,
            p95_ms: 8.25,
            p99_ms: 9.125,
            max_ms: 9.5,
        },
    );
    let manifest = RunManifest {
        binary: "fig2_detection".to_string(),
        config: RunConfig {
            scale: 0.05,
            repeats: 3,
            seed: 0xDEAD_BEEF_CAFE_F00D,
            label_budget: 100,
            threads: 4,
        },
        mode: "full".to_string(),
        span_rollup: Vec::new(),
        spans: vec![
            SpanRecord {
                name: "phase:setup".to_string(),
                id: 1,
                parent_id: 0,
                depth: 0,
                start_ms: 0.125,
                duration_ms: 10.5,
                trace_id: 0,
                instant: false,
            },
            SpanRecord {
                name: "detect:raha".to_string(),
                id: 2,
                parent_id: 1,
                depth: 1,
                start_ms: 1.0,
                duration_ms: 4.75,
                trace_id: 0x1234_5678_9ABC_DEF0,
                instant: false,
            },
        ],
        counters,
        histograms,
        failures: vec![rein_telemetry::FailureRecord {
            phase: "detect".to_string(),
            strategy: "raha".to_string(),
            dataset: "beers".to_string(),
            scope: String::new(),
            cause: "panic: boom".to_string(),
            attempts: 2,
            elapsed_ms: 4.5,
            trace_id: "123456789abcdef0".to_string(),
        }],
    };

    let json = manifest.to_json();
    let back = RunManifest::from_json(&json).expect("manifest parses back");
    assert_eq!(back, manifest);
    // Pre-guard manifests carry no `failures` key; the field defaults.
    let legacy = json.replace("\"failures\"", "\"failures_legacy\"");
    let back = RunManifest::from_json(&legacy).expect("legacy manifest parses");
    assert!(back.failures.is_empty());

    // The manifest path embeds binary and seed.
    assert!(manifest
        .path()
        .to_string_lossy()
        .ends_with(&format!("fig2_detection-{}.json", 0xDEAD_BEEF_CAFE_F00Du64)));
}

#[test]
fn collected_manifest_sees_global_state() {
    counter("collecttest_counter").add(7);
    histogram("collecttest_hist").record(Duration::from_micros(250));
    {
        let _s = span("collecttest:phase");
    }
    let config = RunConfig { scale: 1.0, repeats: 1, seed: 99, label_budget: 50, threads: 1 };
    let m = RunManifest::collect("collecttest", config);
    assert!(m.counters.get("collecttest_counter").copied().unwrap_or(0) >= 7);
    assert!(m.histograms["collecttest_hist"].count >= 1);
    assert!(m.spans.iter().any(|s| s.name == "collecttest:phase"));
    // Roundtrip of a collected (not hand-built) manifest.
    let back = RunManifest::from_json(&m.to_json()).unwrap();
    assert_eq!(back.binary, "collecttest");
    assert_eq!(back.config, m.config);
    assert_eq!(back.counters, m.counters);
}

#[test]
fn registry_snapshot_matches_serial_sum_under_contention() {
    // Hammer one shared counter, a per-worker counter family, and one
    // shared histogram from rayon workers simultaneously; the merged
    // global snapshot must equal what a serial run would produce.
    const WORKERS: u64 = 32;
    const OPS: u64 = 1_000;
    let shared_before = counter("hammertest_shared").get();
    let hist_before = histogram("hammertest_hist").summary();

    (0..WORKERS).collect::<Vec<_>>().par_iter().for_each(|&w| {
        let shared = counter("hammertest_shared");
        let own = counter(&format!("hammertest_worker_{w}"));
        let hist = histogram("hammertest_hist");
        for i in 0..OPS {
            shared.add(w + 1);
            own.incr();
            if i % 100 == 0 {
                hist.record(Duration::from_micros(w + 1));
            }
        }
    });

    // Serial expectation: sum over workers of OPS * (w + 1).
    let expected_shared: u64 = (0..WORKERS).map(|w| OPS * (w + 1)).sum();
    assert_eq!(
        counter("hammertest_shared").get() - shared_before,
        expected_shared,
        "shared counter must merge without losing increments"
    );
    let snap = counters_snapshot();
    for w in 0..WORKERS {
        assert_eq!(
            snap.get(&format!("hammertest_worker_{w}")).copied(),
            Some(OPS),
            "per-worker counter {w} must appear in the snapshot with its full count"
        );
    }
    let hist_after = histogram("hammertest_hist").summary();
    let recorded = WORKERS * (OPS / 100);
    assert_eq!(
        hist_after.count - hist_before.count,
        recorded,
        "histogram must record every observation across threads"
    );
    // The slowest observation (WORKERS microseconds) survives the merge.
    assert!(hist_after.max_ms >= WORKERS as f64 / 1000.0 - 1e-9, "max {}", hist_after.max_ms);
}
