//! Fixture: the same wall-clock read is legitimate in the telemetry layer.
pub fn elapsed_ms() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_millis()
}
