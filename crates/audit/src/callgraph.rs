//! Workspace call graph: one node per parsed function, edges resolved
//! by name with path-qualifier and impl-type heuristics, plus forward
//! and reverse reachability.
//!
//! Resolution is deliberately an *over-approximation*: a method call
//! resolves to every same-name function (this is how dynamic dispatch
//! through `Box<dyn Detector>` stays visible), and an unqualified call
//! prefers same-file, then same-crate, then any match. Reachability
//! rules (toolbox-parity, panic-reachability) want exactly this
//! direction of error: claiming slightly too much reachability, never
//! too little, so a "module unreachable" finding is trustworthy.

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::{Call, Callee, Function, ParsedFile};
use crate::rules::{classify, FileClass};

/// One function node with the file context the rules need.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// Crate short name: `crates/<name>/…` → `<name>`, else `root`.
    pub crate_name: String,
    /// File stem (`katara.rs` → `katara`; `lib.rs` → `lib`).
    pub module: String,
    pub class: FileClass,
    pub func: Function,
}

impl FnNode {
    /// Library scope: code that ships in a crate's lib target and is
    /// not test-only.
    pub fn lib_scope(&self) -> bool {
        !self.class.is_test_support && !self.class.is_bin && !self.func.in_test
    }
}

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// Function name → node indices.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Forward adjacency (caller → callees).
    pub edges: Vec<BTreeSet<usize>>,
    /// Reverse adjacency (callee → callers).
    pub redges: Vec<BTreeSet<usize>>,
}

/// Crate short name for a workspace-relative path.
pub fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        if let Some(c) = parts.next() {
            return c.to_string();
        }
    }
    "root".to_string()
}

/// File stem for a workspace-relative path.
pub fn module_of(path: &str) -> String {
    path.rsplit('/').next().and_then(|f| f.strip_suffix(".rs")).unwrap_or("").to_string()
}

impl CallGraph {
    /// Builds the graph from parsed files `(path, parsed)`.
    pub fn build(files: &[(String, &ParsedFile)]) -> CallGraph {
        let mut g = CallGraph::default();
        for (path, parsed) in files {
            let crate_name = crate_of(path);
            let module = module_of(path);
            let class = classify(path);
            for func in &parsed.functions {
                if func.name.is_empty() {
                    continue;
                }
                let ix = g.nodes.len();
                g.by_name.entry(func.name.clone()).or_default().push(ix);
                g.nodes.push(FnNode {
                    file: path.clone(),
                    crate_name: crate_name.clone(),
                    module: module.clone(),
                    class,
                    func: func.clone(),
                });
            }
        }
        g.edges = vec![BTreeSet::new(); g.nodes.len()];
        g.redges = vec![BTreeSet::new(); g.nodes.len()];
        for caller in 0..g.nodes.len() {
            let calls = g.nodes[caller].func.calls.clone();
            for call in &calls {
                for callee in g.resolve(caller, call) {
                    g.edges[caller].insert(callee);
                    g.redges[callee].insert(caller);
                }
            }
        }
        g
    }

    /// Resolves one call from `caller` to candidate node indices.
    pub fn resolve(&self, caller: usize, call: &Call) -> Vec<usize> {
        let name = call.callee.name();
        let Some(cands) = self.by_name.get(name) else {
            return Vec::new();
        };
        match &call.callee {
            Callee::Method(_) => {
                // Dynamic dispatch over-approximation: every same-name
                // fn, preferring inherent/impl methods when any exist.
                let with_self: Vec<usize> =
                    cands.iter().copied().filter(|&i| self.nodes[i].func.has_self).collect();
                if with_self.is_empty() {
                    cands.clone()
                } else {
                    with_self
                }
            }
            Callee::Path(_) => {
                let qual =
                    call.callee.qualifier().filter(|q| !matches!(*q, "crate" | "self" | "super"));
                if let Some(q) = qual {
                    let q_owned = if q == "Self" {
                        self.nodes[caller].func.impl_type.clone().unwrap_or_default()
                    } else {
                        q.to_string()
                    };
                    if q_owned.chars().next().is_some_and(char::is_uppercase) {
                        // Type-qualified: match the impl type.
                        let typed: Vec<usize> = cands
                            .iter()
                            .copied()
                            .filter(|&i| self.nodes[i].func.impl_type.as_deref() == Some(&q_owned))
                            .collect();
                        return typed;
                    }
                    // Module-qualified: match the file stem, preferring
                    // the caller's crate.
                    let in_mod: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&i| self.nodes[i].module == q_owned)
                        .collect();
                    let same_crate: Vec<usize> = in_mod
                        .iter()
                        .copied()
                        .filter(|&i| self.nodes[i].crate_name == self.nodes[caller].crate_name)
                        .collect();
                    return if same_crate.is_empty() { in_mod } else { same_crate };
                }
                // Unqualified: same file, then same crate, then any.
                let same_file: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| self.nodes[i].file == self.nodes[caller].file)
                    .collect();
                if !same_file.is_empty() {
                    return same_file;
                }
                let same_crate: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| self.nodes[i].crate_name == self.nodes[caller].crate_name)
                    .collect();
                if !same_crate.is_empty() {
                    return same_crate;
                }
                cands.clone()
            }
        }
    }

    /// Forward BFS: every node reachable from `roots` (roots included).
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<bool> {
        self.bfs(roots, &self.edges)
    }

    /// Reverse BFS: every node that can reach one of `sources`.
    pub fn reaching(&self, sources: &[usize]) -> Vec<bool> {
        self.bfs(sources, &self.redges)
    }

    fn bfs(&self, start: &[usize], adj: &[BTreeSet<usize>]) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &s in start {
            if s < seen.len() && !seen[s] {
                seen[s] = true;
                queue.push(s);
            }
        }
        while let Some(n) = queue.pop() {
            for &m in &adj[n] {
                if !seen[m] {
                    seen[m] = true;
                    queue.push(m);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn graph(files: &[(&str, &str)]) -> (CallGraph, Vec<ParsedFile>) {
        let parsed: Vec<ParsedFile> = files.iter().map(|(_, s)| parse_file(s)).collect();
        let refs: Vec<(String, &ParsedFile)> =
            files.iter().zip(&parsed).map(|((p, _), pf)| (p.to_string(), pf)).collect();
        (CallGraph::build(&refs), parsed)
    }

    fn node(g: &CallGraph, name: &str) -> usize {
        g.by_name.get(name).and_then(|v| v.first().copied()).expect("node")
    }

    #[test]
    fn module_qualified_resolution() {
        let (g, _) = graph(&[
            ("crates/detect/src/lib.rs", "pub fn build() { katara::run(); }\n"),
            ("crates/detect/src/katara.rs", "pub fn run() {}\n"),
            ("crates/repair/src/katara.rs", "pub fn run() {}\n"),
        ]);
        let b = node(&g, "build");
        let detect_run = g
            .by_name
            .get("run")
            .map(|v| {
                v.iter().copied().find(|&i| g.nodes[i].crate_name == "detect").expect("detect run")
            })
            .expect("run nodes");
        assert!(g.edges[b].contains(&detect_run), "prefers the caller's crate");
        assert_eq!(g.edges[b].len(), 1);
    }

    #[test]
    fn type_qualified_resolution() {
        let (g, _) = graph(&[
            (
                "crates/ml/src/model.rs",
                "impl Model { pub fn new() -> Model { Model } }\n\
                 pub fn build() { Model::new(); }\n",
            ),
            ("crates/ml/src/other.rs", "impl Other { pub fn new() -> Other { Other } }\n"),
        ]);
        let b = node(&g, "build");
        assert_eq!(g.edges[b].len(), 1);
        let target = *g.edges[b].iter().next().expect("edge");
        assert_eq!(g.nodes[target].func.impl_type.as_deref(), Some("Model"));
    }

    #[test]
    fn method_calls_over_approximate() {
        let (g, _) = graph(&[
            ("crates/detect/src/a.rs", "impl A { pub fn detect(&self) {} }\n"),
            ("crates/detect/src/b.rs", "impl B { pub fn detect(&self) {} }\n"),
            ("crates/core/src/run.rs", "pub fn run(d: &dyn D) { d.detect(); }\n"),
        ]);
        let r = node(&g, "run");
        assert_eq!(g.edges[r].len(), 2, "dyn dispatch reaches every impl");
    }

    #[test]
    fn reachability_forward_and_reverse() {
        let (g, _) = graph(&[(
            "crates/core/src/x.rs",
            "pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn island() {}\n",
        )]);
        let a = node(&g, "a");
        let c = node(&g, "c");
        let island = node(&g, "island");
        let fwd = g.reachable_from(&[a]);
        assert!(fwd[c] && !fwd[island]);
        let rev = g.reaching(&[c]);
        assert!(rev[a] && !rev[island]);
    }
}
