//! Figure 7: accuracy of ML models trained on different data versions in
//! different scenarios — F1 for classification datasets, RMSE for
//! regression datasets, silhouette for clustering datasets — including
//! the Wilcoxon A/B markers between S1 and S4 and the S2-vs-S3
//! serve-clean experiment (Figures 7n/7o).

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use rein_bench::{conclude, dataset, f, header, phase, repeats};
use rein_core::{
    eval_classifier, eval_clusterer, eval_regressor, run_repair, CleaningStrategy, Scenario,
    VersionTable,
};
use rein_data::rng::derive_seed;
use rein_datasets::{DatasetId, GeneratedDataset};
use rein_detect::DetectorKind;
use rein_ml::model::{ClassifierKind, ClustererKind, RegressorKind};
use rein_repair::RepairKind;
use rein_stats::{mean_std, wilcoxon_signed_rank};

const REPAIRERS: [RepairKind; 5] = [
    RepairKind::GroundTruth,
    RepairKind::Delete,
    RepairKind::ImputeMeanMode,
    RepairKind::MissMix,
    RepairKind::Baran,
];

/// Builds the evaluated data versions: the dirty table ("D0") plus one
/// repaired version per (detector, repairer) strategy.
fn versions(
    ds: &GeneratedDataset,
    detectors: &[DetectorKind],
    seed: u64,
) -> Vec<(String, VersionTable)> {
    let ctrl = rein_bench::controller(100, seed);
    let mut out = vec![("D0".to_string(), VersionTable::identity(ds.dirty.clone()))];
    for &det_kind in detectors {
        let harness = rein_core::DetectorHarness::new(ds, 100, seed);
        let det = harness.run(ds, det_kind);
        if det.quality.detected() == 0 {
            continue;
        }
        for rep_kind in REPAIRERS {
            let strategy = CleaningStrategy { detector: det_kind, repairer: rep_kind };
            let run =
                run_repair(ds, &det.mask, rep_kind, derive_seed(seed, rep_kind.index() as u64));
            if let Some(v) = run.version {
                if v.table.n_rows() >= 20 {
                    out.push((strategy.label(), v));
                }
            }
        }
    }
    let _ = ctrl;
    out
}

fn classification(id: DatasetId, detectors: &[DetectorKind], models: &[ClassifierKind], seed: u64) {
    let ds = dataset(id, seed);
    header(&format!("Figure 7 — classification F1 ({})", ds.info.name));
    let versions = versions(&ds, detectors, seed);
    let reps = repeats();
    println!(
        "{:<8} {:<8} {:>12} {:>12} {:>6}",
        "model", "version", "S1 mean±std", "S4 mean±std", "A/B"
    );
    for &model in models {
        for (label, version) in &versions {
            let s1 = eval_classifier(Scenario::S1, &ds, version, model, reps, seed);
            let s4 = eval_classifier(Scenario::S4, &ds, version, model, reps, seed);
            let marker = match wilcoxon_signed_rank(&s1, &s4) {
                Ok(r) if r.rejects_null(0.05) => "■", // reject H0: different
                Ok(_) => "□",
                Err(_) => "=",
            };
            let m1 = mean_std(&s1);
            let m4 = mean_std(&s4);
            println!(
                "{:<8} {:<8} {:>6}±{:<5} {:>6}±{:<5} {:>6}",
                model.name(),
                label,
                f(m1.mean),
                f(if m1.std.is_nan() { 0.0 } else { m1.std }),
                f(m4.mean),
                f(if m4.std.is_nan() { 0.0 } else { m4.std }),
                marker,
            );
        }
    }
    println!("(■ = Wilcoxon rejects H0 at α=0.05: S1 and S4 genuinely differ)");
}

fn regression(id: DatasetId, detectors: &[DetectorKind], models: &[RegressorKind], seed: u64) {
    let ds = dataset(id, seed);
    header(&format!("Figure 7 — regression RMSE ({})", ds.info.name));
    let versions = versions(&ds, detectors, seed);
    let reps = repeats();
    println!("{:<8} {:<8} {:>12} {:>12}", "model", "version", "S1 RMSE", "S4 RMSE");
    for &model in models {
        for (label, version) in &versions {
            let s1 = eval_regressor(Scenario::S1, &ds, version, model, reps, seed);
            let s4 = eval_regressor(Scenario::S4, &ds, version, model, reps, seed);
            println!(
                "{:<8} {:<8} {:>12} {:>12}",
                model.name(),
                label,
                f(mean_std(&s1).mean),
                f(mean_std(&s4).mean),
            );
        }
    }
    // Figures 7n/7o: S2 vs S3 (train dirty / serve clean and vice versa).
    println!("\nS2 vs S3 (serve-clean effect, Figures 7n/7o):");
    let version = VersionTable::identity(ds.dirty.clone());
    for model in [RegressorKind::Ransac, RegressorKind::BayesRidge] {
        let s2 = eval_regressor(Scenario::S2, &ds, &version, model, reps, seed);
        let s3 = eval_regressor(Scenario::S3, &ds, &version, model, reps, seed);
        println!(
            "  {:<8} S2 (train dirty, test GT) {}  |  S3 (train GT, test dirty) {}",
            model.name(),
            f(mean_std(&s2).mean),
            f(mean_std(&s3).mean),
        );
    }
}

fn clustering(id: DatasetId, detectors: &[DetectorKind], models: &[ClustererKind], seed: u64) {
    let ds = dataset(id, seed);
    header(&format!("Figure 7 — clustering silhouette ({})", ds.info.name));
    let versions = versions(&ds, detectors, seed);
    println!("{:<8} {:<8} {:>12} {:>12}", "model", "version", "S1 (version)", "S4 (GT)");
    for &model in models {
        let s4 = eval_clusterer(&ds.clean, model, 6, seed);
        for (label, version) in &versions {
            let s1 = eval_clusterer(&version.table, model, 6, seed);
            println!("{:<8} {:<8} {:>12} {:>12}", model.name(), label, f(s1), f(s4));
        }
    }
}

fn main() {
    let cls_models = [
        ClassifierKind::Mlp,
        ClassifierKind::DecisionTree,
        ClassifierKind::RandomForest,
        ClassifierKind::Logit,
        ClassifierKind::XgBoost,
        ClassifierKind::GaussianNb,
    ];
    let reg_models = [
        RegressorKind::XgBoost,
        RegressorKind::DecisionTree,
        RegressorKind::Knn,
        RegressorKind::Ridge,
    ];
    let clu_models = [
        ClustererKind::KMeans,
        ClustererKind::Birch,
        ClustererKind::Gmm,
        ClustererKind::Hierarchical,
        ClustererKind::Optics,
    ];

    let p = phase("classification:beers");
    classification(
        DatasetId::Beers,
        &[DetectorKind::MaxEntropy, DetectorKind::Raha, DetectorKind::Nadeef],
        &cls_models,
        81,
    );
    drop(p);
    let p = phase("classification:breast_cancer");
    classification(
        DatasetId::BreastCancer,
        &[DetectorKind::MaxEntropy, DetectorKind::Ed2],
        &cls_models,
        82,
    );
    drop(p);
    let p = phase("classification:citation");
    classification(
        DatasetId::Citation,
        &[DetectorKind::KeyCollision, DetectorKind::MaxEntropy],
        &cls_models[..4],
        83,
    );
    drop(p);
    let p = phase("regression:nasa");
    regression(DatasetId::Nasa, &[DetectorKind::MaxEntropy, DetectorKind::DBoost], &reg_models, 84);
    drop(p);
    let p = phase("regression:bikes");
    regression(DatasetId::Bikes, &[DetectorKind::Raha, DetectorKind::Nadeef], &reg_models, 85);
    drop(p);
    let p = phase("clustering:water");
    clustering(DatasetId::Water, &[DetectorKind::Raha, DetectorKind::MaxEntropy], &clu_models, 86);
    drop(p);
    let p = phase("clustering:power");
    clustering(DatasetId::Power, &[DetectorKind::MaxEntropy], &clu_models, 87);
    drop(p);
    conclude("fig7_modeling", 81, 100);
}
