//! Comparing cleaning strategies the REIN way: the benchmark controller
//! plans the applicable detectors for a dataset's error profile, every
//! detector feeds several repairers, and each strategy is scored both in
//! isolation (repair RMSE) and by its downstream effect (regression RMSE
//! in scenario S1 vs the ground-truth bound S4).
//!
//! Run with: `cargo run --example cleaning_strategies`

// Examples narrate their results on stdout by design.
#![allow(clippy::print_stdout)]

use rein::core::{
    eval_regressor, run_repair, CleaningStrategy, Controller, Scenario, VersionTable,
};
use rein::datasets::{DatasetId, Params};
use rein::ml::model::RegressorKind;
use rein::repair::RepairKind;

fn main() {
    let ds = DatasetId::Nasa.generate(&Params::scaled(0.5, 9));
    let ctrl = Controller { label_budget: 80, seed: 3, ..Controller::default() };

    // The controller prunes detectors that cannot help this error profile
    // (no duplicate detectors for a MV/outlier dataset, etc.).
    let plan = ctrl.plan(&ds);
    println!("planned detectors for nasa ({:?}):", ds.info.errors.types);
    for d in &plan.detectors {
        println!("  {}", d.name());
    }

    let mut detections = ctrl.run_detection(&ds);
    detections.retain(|d| d.quality.detected() > 0);
    detections.sort_by(|a, b| b.quality.f1.total_cmp(&a.quality.f1));
    detections.truncate(3);

    let dirty = VersionTable::identity(ds.dirty.clone());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let s1_dirty = mean(&eval_regressor(Scenario::S1, &ds, &dirty, RegressorKind::XgBoost, 3, 1));
    let s4 = mean(&eval_regressor(Scenario::S4, &ds, &dirty, RegressorKind::XgBoost, 3, 1));

    println!("\nXGB RMSE on dirty data (S1): {s1_dirty:.3}   ground truth (S4): {s4:.3}\n");
    println!(
        "{:<10} {:<20} {:>12} {:>12}",
        "strategy", "(det + repairer)", "repair RMSE", "model RMSE"
    );
    for det in &detections {
        for rep in [RepairKind::ImputeMeanMode, RepairKind::MissMix, RepairKind::KnnMiss] {
            let strategy = CleaningStrategy { detector: det.kind, repairer: rep };
            let run = run_repair(&ds, &det.mask, rep, 5);
            let repair_rmse = rein::core::evaluate::repair_quality_numerical(&ds, &run)
                .map(|(r, _)| r.rmse)
                .unwrap_or(f64::NAN);
            let version = run.version.expect("generic repair");
            let model_rmse =
                mean(&eval_regressor(Scenario::S1, &ds, &version, RegressorKind::XgBoost, 3, 1));
            println!(
                "{:<10} {:<20} {:>12.3} {:>12.3}",
                strategy.label(),
                format!("{} + {}", det.kind.name(), rep.name()),
                repair_rmse,
                model_rmse
            );
        }
    }
    println!("\nLower model RMSE than the dirty S1 baseline means the strategy helped.");
}
