//! Concurrency fixture (positive): every function acquires the lock
//! pair in the same global order (LEFT before RIGHT), and sequential
//! non-held locks (temporary guards) impose no ordering at all.
//! `par-lock-discipline` must stay silent.

use std::sync::Mutex;

static LEFT: Mutex<Vec<u64>> = Mutex::new(Vec::new());
static RIGHT: Mutex<Vec<u64>> = Mutex::new(Vec::new());

pub fn forward() -> usize {
    let a = LEFT.lock().unwrap();
    let b = RIGHT.lock().unwrap();
    a.len() + b.len()
}

pub fn also_forward() -> usize {
    let a = LEFT.lock().unwrap();
    let b = RIGHT.lock().unwrap();
    b.len() + a.len()
}

pub fn sequential() -> usize {
    RIGHT.lock().unwrap().len() + LEFT.lock().unwrap().len()
}
