//! Concurrency fixture (negative): `Ordering::Relaxed` outside the
//! allowlisted telemetry counter sites — `par-atomic-ordering` must
//! fire. (The same source mapped to an allowlisted telemetry path is
//! the positive case.)

use std::sync::atomic::{AtomicU64, Ordering};

static COUNT: AtomicU64 = AtomicU64::new(0);

pub fn bump() -> u64 {
    COUNT.fetch_add(1, Ordering::Relaxed)
}
