//! Hierarchical wall-clock spans.
//!
//! Each thread keeps a stack of open spans; [`span`] parents a new span
//! under the top of the current thread's stack. Rayon fan-out runs
//! closures on worker threads whose stacks start empty, so parallel code
//! captures the parent context first and opens children explicitly:
//!
//! ```ignore
//! let parent = rein_telemetry::current();
//! items.par_iter().map(|it| {
//!     let _s = rein_telemetry::span_under("detect:one", parent);
//!     ...
//! })
//! ```
//!
//! Finished spans accumulate in a process-global list that
//! [`RunManifest::collect`](crate::RunManifest::collect) snapshots.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::log::{emit, enabled, Level};

/// A lightweight handle to an open span, safe to copy into closures
/// running on other threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    /// Process-unique span id (ids start at 1; 0 means "no parent").
    pub id: u64,
    /// Nesting depth, 0 for root spans.
    pub depth: u32,
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name, e.g. `"phase:detect"` or `"detect:raha"`.
    pub name: String,
    /// Process-unique id.
    pub id: u64,
    /// Parent span id, or 0 for root spans.
    pub parent_id: u64,
    /// Nesting depth, 0 for root spans.
    pub depth: u32,
    /// Start offset in milliseconds from the first telemetry event of
    /// the process.
    pub start_ms: f64,
    /// Wall-clock duration in milliseconds.
    pub duration_ms: f64,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Process start reference for `start_ms` offsets. Reads the clock
/// through [`crate::perf::now`] — the one sanctioned wall-clock source.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(crate::perf::now)
}

fn finished() -> &'static Mutex<Vec<SpanRecord>> {
    static FINISHED: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    FINISHED.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static STACK: RefCell<Vec<SpanCtx>> = const { RefCell::new(Vec::new()) };
}

/// The innermost span open on the current thread, if any. Capture this
/// before a rayon fan-out and pass it to [`span_under`] inside the
/// parallel closure.
pub fn current() -> Option<SpanCtx> {
    STACK.with(|s| s.borrow().last().copied())
}

/// An open span; records itself when dropped or [`finish`](Span::finish)ed.
#[derive(Debug)]
pub struct Span {
    name: String,
    id: u64,
    parent_id: u64,
    depth: u32,
    start_ms: f64,
    start: Instant,
    closed: bool,
}

/// Opens a span parented under the current thread's innermost open span.
pub fn span(name: impl Into<String>) -> Span {
    span_under(name, current())
}

/// Opens a span under an explicit parent (or as a root when `None`).
/// This is the fan-out form: the parent context travels into worker
/// threads by value, so nesting stays correct under rayon.
pub fn span_under(name: impl Into<String>, parent: Option<SpanCtx>) -> Span {
    let name = name.into();
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let depth = parent.map_or(0, |p| p.depth + 1);
    let parent_id = parent.map_or(0, |p| p.id);
    let start_ms = epoch().elapsed().as_secs_f64() * 1e3;
    STACK.with(|s| s.borrow_mut().push(SpanCtx { id, depth }));
    if enabled(Level::Debug) {
        emit(Level::Debug, &format!("{}+ open {name} depth={depth}", Indent(depth)));
    }
    Span { name, id, parent_id, depth, start_ms, start: crate::perf::now(), closed: false }
}

/// Depth-proportional indentation for debug span events.
struct Indent(u32);

impl std::fmt::Display for Indent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for _ in 0..self.0 {
            f.write_str("  ")?;
        }
        Ok(())
    }
}

impl Span {
    /// Handle for parenting children (possibly on other threads).
    pub fn ctx(&self) -> SpanCtx {
        SpanCtx { id: self.id, depth: self.depth }
    }

    /// Closes the span now and returns its wall-clock duration.
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        if self.closed {
            return Duration::ZERO;
        }
        self.closed = true;
        let duration = self.start.elapsed();
        // Pop by id rather than blindly popping the top: a guard moved
        // across threads or dropped out of order must not corrupt the
        // stack of unrelated spans.
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|c| c.id == self.id) {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            name: std::mem::take(&mut self.name),
            id: self.id,
            parent_id: self.parent_id,
            depth: self.depth,
            start_ms: self.start_ms,
            duration_ms: duration.as_secs_f64() * 1e3,
        };
        if enabled(Level::Debug) {
            emit(
                Level::Debug,
                &format!(
                    "{}- close {} depth={} ({:.3}ms)",
                    Indent(record.depth),
                    record.name,
                    record.depth,
                    record.duration_ms
                ),
            );
        }
        // audit:allow(panic, span list lock poisoning only follows another panic)
        finished().lock().expect("span list lock").push(record);
        duration
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Copies out every finished span, in completion order.
pub fn snapshot_spans() -> Vec<SpanRecord> {
    // audit:allow(panic, span list lock poisoning only follows another panic)
    finished().lock().expect("span list lock").clone()
}

/// Removes and returns every finished span.
pub fn drain_spans() -> Vec<SpanRecord> {
    // audit:allow(panic, span list lock poisoning only follows another panic)
    std::mem::take(&mut *finished().lock().expect("span list lock"))
}

pub(crate) fn reset_spans() {
    // audit:allow(panic, span list lock poisoning only follows another panic)
    finished().lock().expect("span list lock").clear();
}
