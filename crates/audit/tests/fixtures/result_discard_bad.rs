//! Negative fixture: a first-party Result silently discarded.

fn persist(path: &str, payload: &str) -> Result<(), String> {
    std::fs::write(path, payload).map_err(|e| e.to_string())
}

pub fn flush(path: &str, payload: &str) {
    let _ = persist(path, payload);
}
