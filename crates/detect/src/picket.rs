//! Picket (Liu et al.): self-supervised error detection, no user labels.
//! The original learns a self-attention reconstruction model; we keep the
//! self-supervision principle with per-column predictors — each column is
//! reconstructed from the others, and cells with anomalous reconstruction
//! loss are flagged. Like the original, it is accurate on small data and
//! deliberately memory-hungry relative to the simple detectors.

use rein_data::{CellMask, ColumnType};
use rein_ml::encode::{regression_target, select_matrix_rows, Encoder, LabelMap};
use rein_ml::model::{Classifier, Regressor};
use rein_ml::tree::{DecisionTreeClassifier, DecisionTreeRegressor, TreeParams};

use crate::context::{DetectContext, Detector};

/// Picket detector.
#[derive(Debug, Clone)]
pub struct Picket {
    /// A numeric cell is flagged when its reconstruction residual exceeds
    /// this many residual standard deviations.
    pub residual_z: f64,
    /// A categorical cell is flagged when the reconstructed class differs
    /// and the predictor's confidence exceeds this threshold.
    pub min_confidence: f64,
}

impl Default for Picket {
    fn default() -> Self {
        Self { residual_z: 3.5, min_confidence: 0.85 }
    }
}

impl Detector for Picket {
    fn name(&self) -> &'static str {
        "picket"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:picket");
        let t = ctx.dirty;
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());
        if t.n_rows() < 20 || t.n_cols() < 2 {
            return mask;
        }
        for target_col in 0..t.n_cols() {
            let other: Vec<usize> = (0..t.n_cols()).filter(|&c| c != target_col).collect();
            let encoder = Encoder::fit(t, &other);
            let x = encoder.transform(t);
            match t.observed_type(target_col) {
                ColumnType::Int | ColumnType::Float => {
                    let (rows, y) = regression_target(t, target_col);
                    if rows.len() < 10 {
                        continue;
                    }
                    let xs = select_matrix_rows(&x, &rows);
                    let mut model = DecisionTreeRegressor::new(TreeParams {
                        max_depth: 6,
                        ..Default::default()
                    });
                    model.fit(&xs, &y);
                    let preds = model.predict(&xs);
                    let residuals: Vec<f64> = y.iter().zip(&preds).map(|(t, p)| t - p).collect();
                    let mean = residuals.iter().sum::<f64>() / residuals.len() as f64;
                    let std = (residuals.iter().map(|r| (r - mean).powi(2)).sum::<f64>()
                        / residuals.len() as f64)
                        .sqrt()
                        .max(1e-9);
                    for (local, &row) in rows.iter().enumerate() {
                        if (residuals[local] - mean).abs() > self.residual_z * std {
                            mask.set(row, target_col, true);
                        }
                    }
                    // Non-numeric cells in a numeric column fail
                    // reconstruction by definition.
                    for r in 0..t.n_rows() {
                        rein_guard::checkpoint(1);
                        let v = t.cell(r, target_col);
                        if !v.is_null() && v.as_f64().is_none() {
                            mask.set(r, target_col, true);
                        }
                    }
                }
                _ => {
                    let labels = LabelMap::fit([t], target_col);
                    if labels.n_classes() < 2 || labels.n_classes() > 50 {
                        continue; // free text column: reconstruction hopeless
                    }
                    let (rows, y) = labels.encode(t, target_col);
                    if rows.len() < 10 {
                        continue;
                    }
                    let xs = select_matrix_rows(&x, &rows);
                    let mut model = DecisionTreeClassifier::new(TreeParams {
                        max_depth: 6,
                        ..Default::default()
                    });
                    model.fit(&xs, &y, labels.n_classes());
                    let probs = model.predict_proba(&xs, labels.n_classes());
                    for (local, &row) in rows.iter().enumerate() {
                        let given = y[local];
                        let best = rein_ml::linalg::argmax(probs.row(local));
                        if best != given && probs[(local, best)] >= self.min_confidence {
                            mask.set(row, target_col, true);
                        }
                    }
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, Schema, Table, Value};

    /// Two strongly coupled columns so reconstruction has signal.
    fn dataset() -> (Table, Table) {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("y", ColumnType::Float),
            ColumnMeta::new("group", ColumnType::Str),
        ]);
        let clean = Table::from_rows(
            schema,
            (0..240)
                .map(|i| {
                    let x = (i % 20) as f64;
                    vec![
                        Value::Float(x),
                        Value::Float(2.0 * x + 1.0),
                        Value::str(if x < 10.0 { "low" } else { "high" }),
                    ]
                })
                .collect(),
        );
        let mut dirty = clean.clone();
        // Break the x↔y coupling at a few cells.
        for i in 0..8 {
            dirty.set_cell(i * 25 + 3, 1, Value::Float(999.0));
        }
        // Break the group consistency.
        dirty.set_cell(2, 2, Value::str("high")); // x=2 should be "low"
        dirty.set_cell(44, 2, Value::str("low")); // x=4... row44: x=4 -> low actually
        (clean, dirty)
    }

    #[test]
    fn reconstruction_failures_are_flagged_without_labels() {
        let (_, dirty) = dataset();
        let m = Picket::default().detect(&DetectContext::bare(&dirty));
        for i in 0..8 {
            assert!(m.get(i * 25 + 3, 1), "broken y at row {}", i * 25 + 3);
        }
        assert!(m.get(2, 2), "inconsistent group label");
    }

    #[test]
    fn clean_coupled_data_yields_few_flags() {
        let (clean, _) = dataset();
        let m = Picket::default().detect(&DetectContext::bare(&clean));
        assert!(m.count() <= 5, "count {}", m.count());
    }

    #[test]
    fn tiny_tables_are_skipped() {
        let schema = Schema::new(vec![
            ColumnMeta::new("a", ColumnType::Int),
            ColumnMeta::new("b", ColumnType::Int),
        ]);
        let t = Table::from_rows(schema, vec![vec![Value::Int(1), Value::Int(2)]; 5]);
        assert!(Picket::default().detect(&DetectContext::bare(&t)).is_empty());
    }
}
