//! Negative fixture: the ambient read hides inside a closure body —
//! taint must flow through the closure capture into the entry point.

pub fn detect_with_context(rows: &[u64]) -> Vec<u64> {
    rows.iter().map(|r| r + std::env::var("X").map(|v| v.len() as u64).unwrap_or(0)).collect()
}
