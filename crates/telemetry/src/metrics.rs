//! Named counters and duration histograms.
//!
//! Handles returned by [`counter`] and [`histogram`] are `Arc`s onto
//! atomic storage: look one up once, then increment from any thread
//! (including rayon workers) without touching the registry lock again.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A monotonically increasing named counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

fn counter_registry() -> &'static Mutex<BTreeMap<String, Arc<AtomicU64>>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Arc<AtomicU64>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Looks up (or registers) the counter `name`.
pub fn counter(name: &str) -> Counter {
    // audit:allow(panic, registry lock poisoning only follows another panic)
    let mut registry = counter_registry().lock().expect("counter registry lock");
    let cell = registry.entry(name.to_string()).or_insert_with(|| Arc::new(AtomicU64::new(0)));
    Counter(Arc::clone(cell))
}

/// Current value of every registered counter.
pub fn counters_snapshot() -> BTreeMap<String, u64> {
    counter_registry()
        .lock()
        // audit:allow(panic, registry lock poisoning only follows another panic)
        .expect("counter registry lock")
        .iter()
        .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
        .collect()
}

/// Histogram buckets: bucket `i` holds durations whose nanosecond count
/// has its highest set bit at position `i-1`, i.e. the half-open range
/// `[2^(i-1), 2^i)` ns; bucket 0 holds exactly 0 ns. 64 buckets cover
/// every representable duration.
const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl HistogramInner {
    fn new() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed duration histogram.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (64 - ns.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive-exclusive nanosecond bounds of bucket `i`.
fn bucket_bounds(i: usize) -> (f64, f64) {
    if i == 0 {
        (0.0, 1.0)
    } else {
        (2f64.powi(i as i32 - 1), 2f64.powi(i as i32))
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.0.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.0.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`) in nanoseconds, by
    /// linear interpolation inside the bucket containing the target
    /// rank. Returns 0.0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * count as f64;
        let mut cumulative = 0u64;
        for (i, bucket) in self.0.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if cumulative as f64 + in_bucket as f64 >= target {
                let (lo, hi) = bucket_bounds(i);
                let rank_in_bucket = (target - cumulative as f64).max(0.0);
                let fraction = (rank_in_bucket / in_bucket as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * fraction;
            }
            cumulative += in_bucket;
        }
        self.0.max_ns.load(Ordering::Relaxed) as f64
    }

    /// Snapshot of derived statistics.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum_ns = self.0.sum_ns.load(Ordering::Relaxed);
        let to_ms = |ns: f64| ns / 1e6;
        HistogramSummary {
            count,
            mean_ms: if count == 0 { 0.0 } else { to_ms(sum_ns as f64 / count as f64) },
            p50_ms: to_ms(self.quantile_ns(0.50)),
            p90_ms: to_ms(self.quantile_ns(0.90)),
            p95_ms: to_ms(self.quantile_ns(0.95)),
            p99_ms: to_ms(self.quantile_ns(0.99)),
            max_ms: to_ms(self.0.max_ns.load(Ordering::Relaxed) as f64),
        }
    }
}

/// Derived statistics of one histogram, in milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Exact mean (from the running sum, not the buckets).
    pub mean_ms: f64,
    /// Median, interpolated within its bucket.
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 95th percentile. `#[serde(default)]` so manifests written before
    /// the percentile surfacing (PR 9) still deserialize.
    #[serde(default)]
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Exact maximum.
    pub max_ms: f64,
}

fn histogram_registry() -> &'static Mutex<BTreeMap<String, Arc<HistogramInner>>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Arc<HistogramInner>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Looks up (or registers) the duration histogram `name`.
pub fn histogram(name: &str) -> Histogram {
    // audit:allow(panic, registry lock poisoning only follows another panic)
    let mut registry = histogram_registry().lock().expect("histogram registry lock");
    let inner = registry.entry(name.to_string()).or_insert_with(|| Arc::new(HistogramInner::new()));
    Histogram(Arc::clone(inner))
}

/// Summary of every registered histogram.
pub fn histograms_snapshot() -> BTreeMap<String, HistogramSummary> {
    let names: Vec<String> =
        // audit:allow(panic, registry lock poisoning only follows another panic)
        histogram_registry().lock().expect("histogram registry lock").keys().cloned().collect();
    names.into_iter().map(|name| (name.clone(), histogram(&name).summary())).collect()
}

pub(crate) fn reset_metrics() {
    // audit:allow(panic, registry lock poisoning only follows another panic)
    for cell in counter_registry().lock().expect("counter registry lock").values() {
        cell.store(0, Ordering::Relaxed);
    }
    // audit:allow(panic, registry lock poisoning only follows another panic)
    for inner in histogram_registry().lock().expect("histogram registry lock").values() {
        for bucket in &inner.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        inner.count.store(0, Ordering::Relaxed);
        inner.sum_ns.store(0, Ordering::Relaxed);
        inner.max_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_percentiles_are_monotone_and_include_p95() {
        let h = histogram("test:percentile_monotonicity");
        for i in 1..=100u64 {
            h.record(Duration::from_micros(i * 10));
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!(s.p50_ms > 0.0);
        assert!(s.p50_ms <= s.p90_ms, "p50 {} > p90 {}", s.p50_ms, s.p90_ms);
        assert!(s.p90_ms <= s.p95_ms, "p90 {} > p95 {}", s.p90_ms, s.p95_ms);
        assert!(s.p95_ms <= s.p99_ms, "p95 {} > p99 {}", s.p95_ms, s.p99_ms);
        // Bucket interpolation may overshoot the exact max by up to one
        // bucket's width.
        assert!(s.p99_ms <= s.max_ms * 1.05, "p99 {} > max {}", s.p99_ms, s.max_ms);
    }

    #[test]
    fn pre_percentile_summaries_deserialize_with_default_p95() {
        let old =
            r#"{"count":3,"mean_ms":1.0,"p50_ms":1.0,"p90_ms":2.0,"p99_ms":3.0,"max_ms":3.0}"#;
        let s: HistogramSummary = serde_json::from_str(old).expect("pre-p95 summary parses");
        assert_eq!(s.p95_ms, 0.0);
        assert_eq!(s.p99_ms, 3.0);
    }

    #[test]
    fn bucket_index_matches_bounds() {
        for ns in [0u64, 1, 2, 3, 1_000, 1_000_000, u64::MAX] {
            let i = bucket_index(ns);
            let (lo, hi) = bucket_bounds(i);
            assert!((ns as f64) >= lo || ns == 0, "{ns} below bucket {i} lower bound {lo}");
            assert!((ns as f64) < hi || i == BUCKETS - 1, "{ns} above bucket {i} bound {hi}");
        }
    }
}
