//! # rein-constraints
//!
//! The cleaning-signal substrate of the REIN benchmark: functional
//! dependencies ([`fd`]), denial constraints ([`dc`]), syntactic value
//! patterns ([`pattern`]) and approximate FD discovery ([`discovery`], the
//! FDX-profiler substitute). Rule-based detectors (NADEEF, HoloClean) and
//! the BART-style rule-violation injector are built on these primitives.

pub mod dc;
pub mod discovery;
pub mod fd;
pub mod pattern;

pub use dc::{all_dc_violations, CmpOp, DenialConstraint, Operand, Predicate};
pub use discovery::{discover_fds, g3_error, DiscoveryConfig};
pub use fd::{all_fd_violations, fd_violations, FunctionalDependency};
pub use pattern::{
    fingerprint, pattern_of, pattern_outliers, value_pattern, PatternProfile, ValuePattern,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rein_data::{ColumnMeta, ColumnType, Schema, Table, Value};

    fn two_col_table(pairs: &[(u8, u8)]) -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("a", ColumnType::Int),
            ColumnMeta::new("b", ColumnType::Int),
        ]);
        Table::from_rows(
            schema,
            pairs.iter().map(|&(a, b)| vec![Value::Int(a as i64), Value::Int(b as i64)]).collect(),
        )
    }

    proptest! {
        #[test]
        fn g3_error_in_unit_interval(pairs in prop::collection::vec((0u8..6, 0u8..6), 1..80)) {
            let t = two_col_table(&pairs);
            let e = g3_error(&t, &[0], 1);
            prop_assert!((0.0..=1.0).contains(&e));
        }

        #[test]
        fn g3_zero_iff_fd_holds(pairs in prop::collection::vec((0u8..4, 0u8..4), 1..60)) {
            let t = two_col_table(&pairs);
            let fd = fd::FunctionalDependency::new([0usize], 1);
            let holds = fd::holds(&t, &fd);
            let e = g3_error(&t, &[0], 1);
            prop_assert_eq!(holds, e == 0.0, "holds={} g3={}", holds, e);
        }

        #[test]
        fn fd_violations_subset_of_rhs_column(
            pairs in prop::collection::vec((0u8..4, 0u8..4), 1..60)
        ) {
            let t = two_col_table(&pairs);
            let fd = fd::FunctionalDependency::new([0usize], 1);
            for cell in fd::fd_violations(&t, &fd).iter() {
                prop_assert_eq!(cell.col, 1);
            }
        }

        #[test]
        fn fd_and_equivalent_dc_agree_on_violating_rows(
            pairs in prop::collection::vec((0u8..4, 0u8..4), 2..50)
        ) {
            let t = two_col_table(&pairs);
            let fd = fd::FunctionalDependency::new([0usize], 1);
            let dc = dc::DenialConstraint::from_fd(&fd);
            let fd_rows: std::collections::BTreeSet<usize> =
                fd::fd_violations(&t, &fd).iter().map(|c| c.row).collect();
            let dc_rows: std::collections::BTreeSet<usize> =
                dc.violations(&t).iter().map(|c| c.row).collect();
            // Every FD-flagged row participates in some DC violation pair.
            for r in &fd_rows {
                prop_assert!(dc_rows.contains(r), "row {} flagged by FD not DC", r);
            }
        }

        #[test]
        fn pattern_of_is_deterministic_and_total(s in "[ -~]{0,24}") {
            let p1 = pattern_of(&s);
            let p2 = pattern_of(&s);
            prop_assert_eq!(&p1, &p2);
            // Generalised pattern never longer than 2x char count.
            prop_assert!(p1.as_str().len() <= 2 * s.chars().count().max(1));
        }
    }
}
