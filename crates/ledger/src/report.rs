//! The static observability report rendered from the ledger.
//!
//! Everything here is a pure function of the index plus the artifacts it
//! points at: same ledger, same bytes. The report exists in two forms —
//! markdown (`report.md`, for diffs and terminals) and a dependency-free
//! static HTML page (`report.html`, uploaded by CI) — rendered from the
//! same row structs so they cannot drift apart.
//!
//! Sections mirror the paper's result surfaces: the per-strategy
//! cost/failure table (the shape of Fig 2/4/5), the guard-failure
//! taxonomy, benchmark median trends across ledger generations, and an
//! optional flamegraph-style span-profile diff between two runs.

use std::collections::BTreeMap;
use std::path::Path;

use rein_telemetry::perf::span_profile;
use rein_telemetry::RunManifest;

use crate::index::{FailureTaxonomy, LedgerIndex};

/// One row of the per-strategy table, aggregated across every run
/// manifest in the ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyRow {
    /// `phase:strategy` name.
    pub strategy: String,
    /// Distinct runs (manifests) that exercised the strategy.
    pub runs: u64,
    /// Completed invocations (spans) across those runs.
    pub invocations: u64,
    /// Total wall-clock milliseconds across completed invocations.
    pub total_ms: f64,
    /// Largest single invocation.
    pub max_ms: f64,
    /// Guarded failures attributed to the strategy.
    pub failures: u64,
}

impl StrategyRow {
    /// Failures over attempts (completed invocations + failures), in
    /// [0, 1]. A failed attempt never closes its span, so the two sets
    /// are disjoint.
    pub fn failure_rate(&self) -> f64 {
        let attempts = self.invocations + self.failures;
        if attempts == 0 {
            0.0
        } else {
            self.failures as f64 / attempts as f64
        }
    }
}

/// One row of the guard-failure taxonomy: a `phase:strategy` cell and
/// its failure-cause breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaxonomyRow {
    /// `phase:strategy` cell.
    pub cell: String,
    /// Cause breakdown.
    pub taxonomy: FailureTaxonomy,
    /// Sorted, deduplicated 16-hex trace ids of the cell traces the
    /// failures landed on — the join key into the `rein_trace` exports
    /// (`artifacts/trace/*.cells.json` rows carry the same ids). Empty
    /// entries (pre-trace manifests, failures outside any cell) are
    /// dropped rather than rendered as blanks.
    pub traces: Vec<String>,
}

/// One row of the store cache-effectiveness table: the durable
/// cell-store counters one store-backed run manifest recorded
/// (DESIGN.md §6j). Store-less runs record no `store_*` counters and
/// produce no row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheRow {
    /// Repo-relative manifest source.
    pub source: String,
    /// Cells served from the store without recomputation.
    pub hits: u64,
    /// Cells computed because the store had no (parseable) entry.
    pub misses: u64,
    /// Journal records replayed into the in-memory index at open.
    pub replayed: u64,
    /// Corrupt journal stretches quarantined during recovery.
    pub quarantined: u64,
    /// Staged cells the run durably committed.
    pub commits: u64,
    /// Recomputed cells whose bytes diverged from the stored payload —
    /// any non-zero value is a determinism regression.
    pub divergence: u64,
}

impl CacheRow {
    /// Hits over consulted cells (hits + misses), in [0, 1]; 0 when the
    /// run consulted nothing.
    pub fn hit_rate(&self) -> f64 {
        let consulted = self.hits + self.misses;
        if consulted == 0 {
            0.0
        } else {
            self.hits as f64 / consulted as f64
        }
    }
}

/// One row of the generation trend table — what each ingest pass added.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrendRow {
    /// Ledger generation.
    pub generation: u32,
    /// Entries first seen at this generation.
    pub entries: u64,
    /// Spans those entries recorded.
    pub spans: u64,
    /// Guarded failures those entries recorded.
    pub failures: u64,
    /// Macro-benchmarks those entries carry.
    pub benchmarks: u64,
    /// Audit violations those entries carry.
    pub violations: u64,
}

/// One row of the duration-percentile table: one histogram of one run
/// manifest, straight from its recorded [`HistogramSummary`].
///
/// [`HistogramSummary`]: rein_telemetry::HistogramSummary
#[derive(Debug, Clone, PartialEq)]
pub struct PercentileRow {
    /// Histogram name.
    pub histogram: String,
    /// Repo-relative manifest source.
    pub source: String,
    /// Observation count.
    pub count: u64,
    /// Median milliseconds.
    pub p50_ms: f64,
    /// 95th percentile milliseconds.
    pub p95_ms: f64,
    /// 99th percentile milliseconds.
    pub p99_ms: f64,
    /// Exact maximum milliseconds.
    pub max_ms: f64,
}

/// One row of a span-profile diff between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Span path (`/`-joined names) or bare span name, depending on the
    /// detail both manifests can support.
    pub path: String,
    /// Total milliseconds in run A (0 when the path is absent).
    pub a_ms: f64,
    /// Total milliseconds in run B (0 when the path is absent).
    pub b_ms: f64,
    /// Invocation counts in A and B.
    pub a_count: u64,
    /// Invocation count in run B.
    pub b_count: u64,
}

impl DiffRow {
    /// `b_ms - a_ms`.
    pub fn delta_ms(&self) -> f64 {
        self.b_ms - self.a_ms
    }
}

/// The fully computed report, ready to render.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Ledger generation the report describes.
    pub generation: u32,
    /// Entry counts per kind, sorted by kind.
    pub kind_counts: BTreeMap<String, u64>,
    /// Per-strategy aggregate table, sorted by strategy.
    pub strategies: Vec<StrategyRow>,
    /// Guard-failure taxonomy, sorted by cell; only failing cells.
    pub taxonomy: Vec<TaxonomyRow>,
    /// Duration percentiles of every recorded histogram, sorted by
    /// (histogram, source).
    pub percentiles: Vec<PercentileRow>,
    /// Store cache effectiveness of every store-backed run, sorted by
    /// source; empty when no manifest recorded `store_*` counters.
    pub cache: Vec<CacheRow>,
    /// Benchmark medians of every bench report, keyed by benchmark id
    /// then source file.
    pub bench_medians: BTreeMap<String, BTreeMap<String, f64>>,
    /// Generation trend rows, oldest first.
    pub trends: Vec<TrendRow>,
    /// Optional span-profile diff: `(label_a, label_b, rows)`.
    pub diff: Option<(String, String, Vec<DiffRow>)>,
}

fn load_manifest(root: &Path, source: &str) -> Result<RunManifest, String> {
    let path = root.join(source);
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    RunManifest::from_json(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

/// Name-level invocation stats of one manifest: `name -> (count,
/// total_ms, max_ms)`. Uses the rollup when present (it covers spans the
/// summary sample dropped), the raw span stream otherwise.
fn name_stats(manifest: &RunManifest) -> BTreeMap<String, (u64, f64, f64)> {
    let mut stats: BTreeMap<String, (u64, f64, f64)> = BTreeMap::new();
    if manifest.span_rollup.is_empty() {
        for s in &manifest.spans {
            let e = stats.entry(s.name.clone()).or_insert((0, 0.0, 0.0));
            e.0 += 1;
            e.1 += s.duration_ms;
            e.2 = e.2.max(s.duration_ms);
        }
    } else {
        for r in &manifest.span_rollup {
            stats.insert(r.name.clone(), (r.count, r.total_ms, r.max_ms));
        }
    }
    stats
}

/// The manifest-derived tables of the report, in render order.
type ManifestTables = (Vec<StrategyRow>, Vec<TaxonomyRow>, Vec<PercentileRow>, Vec<CacheRow>);

/// Aggregates the per-strategy table and the failure taxonomy across
/// every run manifest the index points at.
fn strategy_tables(root: &Path, index: &LedgerIndex) -> Result<ManifestTables, String> {
    let mut rows: BTreeMap<String, StrategyRow> = BTreeMap::new();
    let mut taxonomy: BTreeMap<String, (FailureTaxonomy, Vec<String>)> = BTreeMap::new();
    let mut percentiles: Vec<PercentileRow> = Vec::new();
    let mut cache: Vec<CacheRow> = Vec::new();
    for entry in index.entries.iter().filter(|e| e.kind == "run_manifest") {
        let manifest = load_manifest(root, &entry.source)?;
        let stats = name_stats(&manifest);
        let n = |name: &str| manifest.counters.get(name).copied().unwrap_or(0);
        if manifest.counters.keys().any(|k| k.starts_with("store_")) {
            cache.push(CacheRow {
                source: entry.source.clone(),
                hits: n("store_hits"),
                misses: n("store_misses"),
                replayed: n("store_replayed"),
                quarantined: n("store_quarantined"),
                commits: n("store_commits"),
                divergence: n("store_divergence"),
            });
        }
        for (name, summary) in &manifest.histograms {
            percentiles.push(PercentileRow {
                histogram: name.clone(),
                source: entry.source.clone(),
                count: summary.count,
                p50_ms: summary.p50_ms,
                p95_ms: summary.p95_ms,
                p99_ms: summary.p99_ms,
                max_ms: summary.max_ms,
            });
        }
        for strategy in &entry.strategies {
            let row = rows.entry(strategy.clone()).or_insert_with(|| StrategyRow {
                strategy: strategy.clone(),
                runs: 0,
                invocations: 0,
                total_ms: 0.0,
                max_ms: 0.0,
                failures: 0,
            });
            row.runs += 1;
            if let Some(&(count, total_ms, max_ms)) = stats.get(strategy) {
                row.invocations += count;
                row.total_ms += total_ms;
                row.max_ms = row.max_ms.max(max_ms);
            }
        }
        for failure in &manifest.failures {
            let cell = format!("{}:{}", failure.phase, failure.strategy);
            if let Some(row) = rows.get_mut(&cell) {
                row.failures += 1;
            }
            let (causes, traces) = taxonomy.entry(cell).or_default();
            causes.count(&failure.cause);
            if !failure.trace_id.is_empty() {
                traces.push(failure.trace_id.clone());
            }
        }
    }
    let taxonomy = taxonomy
        .into_iter()
        .map(|(cell, (taxonomy, mut traces))| {
            traces.sort();
            traces.dedup();
            TaxonomyRow { cell, taxonomy, traces }
        })
        .collect();
    percentiles.sort_by(|a, b| (&a.histogram, &a.source).cmp(&(&b.histogram, &b.source)));
    cache.sort_by(|a, b| a.source.cmp(&b.source));
    Ok((rows.into_values().collect(), taxonomy, percentiles, cache))
}

/// Folds the index into per-generation trend rows (pure — no file IO).
pub fn trend_rows(index: &LedgerIndex) -> Vec<TrendRow> {
    let mut by_gen: BTreeMap<u32, TrendRow> = BTreeMap::new();
    for e in &index.entries {
        let row = by_gen.entry(e.generation).or_insert(TrendRow {
            generation: e.generation,
            entries: 0,
            spans: 0,
            failures: 0,
            benchmarks: 0,
            violations: 0,
        });
        row.entries += 1;
        row.spans += e.summary.spans;
        row.failures += e.summary.failures.total();
        row.benchmarks += e.summary.benchmarks;
        row.violations += e.summary.violations;
    }
    by_gen.into_values().collect()
}

/// Computes the span-profile diff between two run manifests. When both
/// carry a full span stream the diff is path-level (flamegraph paths via
/// [`span_profile`]); if either is a summary the diff falls back to
/// name-level rollup stats, which both modes can supply exactly.
pub fn profile_diff(root: &Path, source_a: &str, source_b: &str) -> Result<Vec<DiffRow>, String> {
    let a = load_manifest(root, source_a)?;
    let b = load_manifest(root, source_b)?;
    let stats = |m: &RunManifest| -> BTreeMap<String, (u64, f64)> {
        if m.span_rollup.is_empty() {
            span_profile(&m.spans).into_iter().map(|p| (p.path, (p.count, p.total_ms))).collect()
        } else {
            name_stats(m)
                .into_iter()
                .map(|(name, (count, total, _))| (name, (count, total)))
                .collect()
        }
    };
    let full_diff = a.span_rollup.is_empty() && b.span_rollup.is_empty();
    let (stats_a, stats_b) = if full_diff {
        (stats(&a), stats(&b))
    } else {
        // Uniform detail on both sides: name-level rollup stats.
        let name_level = |m: &RunManifest| {
            name_stats(m).into_iter().map(|(n, (c, t, _))| (n, (c, t))).collect::<BTreeMap<_, _>>()
        };
        (name_level(&a), name_level(&b))
    };
    let mut paths: Vec<&String> = stats_a.keys().chain(stats_b.keys()).collect();
    paths.sort();
    paths.dedup();
    Ok(paths
        .into_iter()
        .map(|path| {
            let (a_count, a_ms) = stats_a.get(path).copied().unwrap_or((0, 0.0));
            let (b_count, b_ms) = stats_b.get(path).copied().unwrap_or((0, 0.0));
            DiffRow { path: path.clone(), a_ms, b_ms, a_count, b_count }
        })
        .collect())
}

/// Computes the full report for `index`, optionally with a span-profile
/// diff between two manifest sources.
pub fn build_report(
    root: &Path,
    index: &LedgerIndex,
    diff: Option<(&str, &str)>,
) -> Result<Report, String> {
    let mut kind_counts: BTreeMap<String, u64> = BTreeMap::new();
    for e in &index.entries {
        *kind_counts.entry(e.kind.clone()).or_insert(0) += 1;
    }
    let (strategies, taxonomy, percentiles, cache) = strategy_tables(root, index)?;
    let mut bench_medians: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    for e in index.entries.iter().filter(|e| e.kind == "bench_report") {
        for (id, median) in &e.bench_medians {
            bench_medians.entry(id.clone()).or_default().insert(e.source.clone(), *median);
        }
    }
    let diff = match diff {
        None => None,
        Some((a, b)) => Some((a.to_string(), b.to_string(), profile_diff(root, a, b)?)),
    };
    Ok(Report {
        generation: index.generation,
        kind_counts,
        strategies,
        taxonomy,
        percentiles,
        cache,
        bench_medians,
        trends: trend_rows(index),
        diff,
    })
}

fn fmt_ms(ms: f64) -> String {
    format!("{ms:.3}")
}

/// Renders a taxonomy row's trace links: comma-joined 16-hex ids, or
/// `-` when no failure carried one (pre-trace manifests).
fn fmt_traces(traces: &[String]) -> String {
    if traces.is_empty() {
        "-".to_string()
    } else {
        traces.join(", ")
    }
}

fn fmt_rate(rate: f64) -> String {
    format!("{:.1}%", rate * 100.0)
}

impl Report {
    /// Renders the markdown form.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# REIN observability ledger report\n\n");
        let kinds: Vec<String> = self.kind_counts.iter().map(|(k, n)| format!("{n} {k}")).collect();
        out.push_str(&format!(
            "Generation {} — {} entries ({}).\n",
            self.generation,
            self.kind_counts.values().sum::<u64>(),
            kinds.join(", ")
        ));

        out.push_str("\n## Per-strategy cost and failures\n\n");
        out.push_str(
            "| strategy | runs | invocations | total ms | max ms | failures | failure rate |\n",
        );
        out.push_str("|---|---:|---:|---:|---:|---:|---:|\n");
        for r in &self.strategies {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} |\n",
                r.strategy,
                r.runs,
                r.invocations,
                fmt_ms(r.total_ms),
                fmt_ms(r.max_ms),
                r.failures,
                fmt_rate(r.failure_rate())
            ));
        }

        out.push_str("\n## Guard failure taxonomy\n\n");
        if self.taxonomy.is_empty() {
            out.push_str("No guarded failures recorded.\n");
        } else {
            out.push_str("| cell | panics | deadlines | retries | corrupt | total | traces |\n");
            out.push_str("|---|---:|---:|---:|---:|---:|---|\n");
            for r in &self.taxonomy {
                let t = &r.taxonomy;
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {} | {} |\n",
                    r.cell,
                    t.panics,
                    t.deadlines,
                    t.retries,
                    t.corrupt,
                    t.total(),
                    fmt_traces(&r.traces)
                ));
            }
        }

        out.push_str("\n## Duration percentiles\n\n");
        if self.percentiles.is_empty() {
            out.push_str("No histograms recorded.\n");
        } else {
            out.push_str("| histogram | source | count | p50 ms | p95 ms | p99 ms | max ms |\n");
            out.push_str("|---|---|---:|---:|---:|---:|---:|\n");
            for r in &self.percentiles {
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {} | {} |\n",
                    r.histogram,
                    r.source,
                    r.count,
                    fmt_ms(r.p50_ms),
                    fmt_ms(r.p95_ms),
                    fmt_ms(r.p99_ms),
                    fmt_ms(r.max_ms)
                ));
            }
        }

        out.push_str("\n## Store cache effectiveness\n\n");
        if self.cache.is_empty() {
            out.push_str("No store-backed runs in the ledger.\n");
        } else {
            out.push_str(
                "| source | hits | misses | hit rate | replayed | quarantined | commits \
                 | divergence |\n",
            );
            out.push_str("|---|---:|---:|---:|---:|---:|---:|---:|\n");
            for r in &self.cache {
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
                    r.source,
                    r.hits,
                    r.misses,
                    fmt_rate(r.hit_rate()),
                    r.replayed,
                    r.quarantined,
                    r.commits,
                    r.divergence
                ));
            }
        }

        out.push_str("\n## Benchmark medians\n\n");
        if self.bench_medians.is_empty() {
            out.push_str("No bench reports in the ledger.\n");
        } else {
            out.push_str("| benchmark | source | median ms |\n|---|---|---:|\n");
            for (id, by_source) in &self.bench_medians {
                for (source, median) in by_source {
                    out.push_str(&format!("| {id} | {source} | {} |\n", fmt_ms(*median)));
                }
            }
        }

        out.push_str("\n## Generation trends\n\n");
        out.push_str(
            "| generation | entries added | spans | failures | benchmarks | violations |\n",
        );
        out.push_str("|---:|---:|---:|---:|---:|---:|\n");
        for t in &self.trends {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                t.generation, t.entries, t.spans, t.failures, t.benchmarks, t.violations
            ));
        }

        if let Some((a, b, rows)) = &self.diff {
            out.push_str(&format!("\n## Span profile diff\n\nA = `{a}`, B = `{b}`.\n\n"));
            out.push_str("| span path | A count | B count | A ms | B ms | Δ ms |\n");
            out.push_str("|---|---:|---:|---:|---:|---:|\n");
            for r in rows {
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {} |\n",
                    r.path,
                    r.a_count,
                    r.b_count,
                    fmt_ms(r.a_ms),
                    fmt_ms(r.b_ms),
                    fmt_ms(r.delta_ms())
                ));
            }
        }
        out
    }

    /// Renders the static HTML form — no scripts, inline CSS only, so
    /// the file is viewable from a CI artifact download as-is.
    pub fn to_html(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
             <title>REIN observability ledger report</title>\n<style>\n\
             body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; \
             color: #1a1a2e; }\n\
             h1, h2 { border-bottom: 1px solid #d0d0e0; padding-bottom: .3rem; }\n\
             table { border-collapse: collapse; margin: 1rem 0; width: 100%; }\n\
             th, td { border: 1px solid #d0d0e0; padding: .35rem .6rem; font-size: .9rem; }\n\
             th { background: #f0f0f8; text-align: left; }\n\
             td.n { text-align: right; font-variant-numeric: tabular-nums; }\n\
             .bar { background: #4a6fa5; height: .7rem; display: inline-block; }\n\
             .bad { background: #b4403f; }\n\
             code { background: #f0f0f8; padding: 0 .25rem; }\n\
             </style>\n</head>\n<body>\n",
        );
        out.push_str("<h1>REIN observability ledger report</h1>\n");
        let kinds: Vec<String> =
            self.kind_counts.iter().map(|(k, n)| format!("{n} {}", esc(k))).collect();
        out.push_str(&format!(
            "<p>Generation {} — {} entries ({}).</p>\n",
            self.generation,
            self.kind_counts.values().sum::<u64>(),
            kinds.join(", ")
        ));

        out.push_str(
            "<h2>Per-strategy cost and failures</h2>\n<table>\n<tr><th>strategy</th>\
             <th>runs</th><th>invocations</th><th>total ms</th><th>max ms</th><th>failures</th>\
             <th>failure rate</th><th></th></tr>\n",
        );
        let max_total =
            self.strategies.iter().map(|r| r.total_ms).fold(0.0_f64, f64::max).max(1e-9);
        for r in &self.strategies {
            let width = (r.total_ms / max_total * 100.0).clamp(0.0, 100.0);
            let bar_class = if r.failures > 0 { "bar bad" } else { "bar" };
            out.push_str(&format!(
                "<tr><td><code>{}</code></td><td class=\"n\">{}</td><td class=\"n\">{}</td>\
                 <td class=\"n\">{}</td><td class=\"n\">{}</td><td class=\"n\">{}</td>\
                 <td class=\"n\">{}</td><td><span class=\"{}\" style=\"width:{:.1}%\"></span></td></tr>\n",
                esc(&r.strategy),
                r.runs,
                r.invocations,
                fmt_ms(r.total_ms),
                fmt_ms(r.max_ms),
                r.failures,
                fmt_rate(r.failure_rate()),
                bar_class,
                width
            ));
        }
        out.push_str("</table>\n");

        out.push_str("<h2>Guard failure taxonomy</h2>\n");
        if self.taxonomy.is_empty() {
            out.push_str("<p>No guarded failures recorded.</p>\n");
        } else {
            out.push_str(
                "<table>\n<tr><th>cell</th><th>panics</th><th>deadlines</th><th>retries</th>\
                 <th>corrupt</th><th>total</th><th>traces</th></tr>\n",
            );
            for r in &self.taxonomy {
                let t = &r.taxonomy;
                out.push_str(&format!(
                    "<tr><td><code>{}</code></td><td class=\"n\">{}</td><td class=\"n\">{}</td>\
                     <td class=\"n\">{}</td><td class=\"n\">{}</td><td class=\"n\">{}</td>\
                     <td><code>{}</code></td></tr>\n",
                    esc(&r.cell),
                    t.panics,
                    t.deadlines,
                    t.retries,
                    t.corrupt,
                    t.total(),
                    esc(&fmt_traces(&r.traces))
                ));
            }
            out.push_str("</table>\n");
        }

        out.push_str("<h2>Duration percentiles</h2>\n");
        if self.percentiles.is_empty() {
            out.push_str("<p>No histograms recorded.</p>\n");
        } else {
            out.push_str(
                "<table>\n<tr><th>histogram</th><th>source</th><th>count</th><th>p50 ms</th>\
                 <th>p95 ms</th><th>p99 ms</th><th>max ms</th></tr>\n",
            );
            for r in &self.percentiles {
                out.push_str(&format!(
                    "<tr><td><code>{}</code></td><td>{}</td><td class=\"n\">{}</td>\
                     <td class=\"n\">{}</td><td class=\"n\">{}</td><td class=\"n\">{}</td>\
                     <td class=\"n\">{}</td></tr>\n",
                    esc(&r.histogram),
                    esc(&r.source),
                    r.count,
                    fmt_ms(r.p50_ms),
                    fmt_ms(r.p95_ms),
                    fmt_ms(r.p99_ms),
                    fmt_ms(r.max_ms)
                ));
            }
            out.push_str("</table>\n");
        }

        out.push_str("<h2>Store cache effectiveness</h2>\n");
        if self.cache.is_empty() {
            out.push_str("<p>No store-backed runs in the ledger.</p>\n");
        } else {
            out.push_str(
                "<table>\n<tr><th>source</th><th>hits</th><th>misses</th><th>hit rate</th>\
                 <th>replayed</th><th>quarantined</th><th>commits</th><th>divergence</th>\
                 <th></th></tr>\n",
            );
            for r in &self.cache {
                let width = (r.hit_rate() * 100.0).clamp(0.0, 100.0);
                let bar_class =
                    if r.divergence > 0 || r.quarantined > 0 { "bar bad" } else { "bar" };
                out.push_str(&format!(
                    "<tr><td>{}</td><td class=\"n\">{}</td><td class=\"n\">{}</td>\
                     <td class=\"n\">{}</td><td class=\"n\">{}</td><td class=\"n\">{}</td>\
                     <td class=\"n\">{}</td><td class=\"n\">{}</td>\
                     <td><span class=\"{}\" style=\"width:{:.1}%\"></span></td></tr>\n",
                    esc(&r.source),
                    r.hits,
                    r.misses,
                    fmt_rate(r.hit_rate()),
                    r.replayed,
                    r.quarantined,
                    r.commits,
                    r.divergence,
                    bar_class,
                    width
                ));
            }
            out.push_str("</table>\n");
        }

        out.push_str("<h2>Benchmark medians</h2>\n");
        if self.bench_medians.is_empty() {
            out.push_str("<p>No bench reports in the ledger.</p>\n");
        } else {
            out.push_str("<table>\n<tr><th>benchmark</th><th>source</th><th>median ms</th></tr>\n");
            for (id, by_source) in &self.bench_medians {
                for (source, median) in by_source {
                    out.push_str(&format!(
                        "<tr><td><code>{}</code></td><td>{}</td><td class=\"n\">{}</td></tr>\n",
                        esc(id),
                        esc(source),
                        fmt_ms(*median)
                    ));
                }
            }
            out.push_str("</table>\n");
        }

        out.push_str(
            "<h2>Generation trends</h2>\n<table>\n<tr><th>generation</th><th>entries added</th>\
             <th>spans</th><th>failures</th><th>benchmarks</th><th>violations</th></tr>\n",
        );
        for t in &self.trends {
            out.push_str(&format!(
                "<tr><td class=\"n\">{}</td><td class=\"n\">{}</td><td class=\"n\">{}</td>\
                 <td class=\"n\">{}</td><td class=\"n\">{}</td><td class=\"n\">{}</td></tr>\n",
                t.generation, t.entries, t.spans, t.failures, t.benchmarks, t.violations
            ));
        }
        out.push_str("</table>\n");

        if let Some((a, b, rows)) = &self.diff {
            out.push_str(&format!(
                "<h2>Span profile diff</h2>\n<p>A = <code>{}</code>, B = <code>{}</code>.</p>\n",
                esc(a),
                esc(b)
            ));
            out.push_str(
                "<table>\n<tr><th>span path</th><th>A count</th><th>B count</th><th>A ms</th>\
                 <th>B ms</th><th>Δ ms</th><th></th></tr>\n",
            );
            let max_ms = rows.iter().map(|r| r.a_ms.max(r.b_ms)).fold(0.0_f64, f64::max).max(1e-9);
            for r in rows {
                let width = (r.b_ms / max_ms * 100.0).clamp(0.0, 100.0);
                let bar_class = if r.delta_ms() > 0.0 { "bar bad" } else { "bar" };
                out.push_str(&format!(
                    "<tr><td><code>{}</code></td><td class=\"n\">{}</td><td class=\"n\">{}</td>\
                     <td class=\"n\">{}</td><td class=\"n\">{}</td><td class=\"n\">{}</td>\
                     <td><span class=\"{}\" style=\"width:{:.1}%\"></span></td></tr>\n",
                    esc(&r.path),
                    r.a_count,
                    r.b_count,
                    fmt_ms(r.a_ms),
                    fmt_ms(r.b_ms),
                    fmt_ms(r.delta_ms()),
                    bar_class,
                    width
                ));
            }
            out.push_str("</table>\n");
        }

        out.push_str("</body>\n</html>\n");
        out
    }
}

/// Minimal HTML escaping for text and attribute positions.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{EntrySummary, LedgerEntry};
    use std::collections::BTreeMap;

    fn entry(kind: &str, key: &str, generation: u32, spans: u64) -> LedgerEntry {
        LedgerEntry {
            key: key.to_string(),
            kind: kind.to_string(),
            source: format!("{key}.json"),
            bin: "fig2".to_string(),
            seed: 11,
            scale: 0.05,
            threads: 1,
            mode: "full".to_string(),
            strategies: Vec::new(),
            generation,
            summary: EntrySummary { spans, ..EntrySummary::default() },
            bench_medians: BTreeMap::new(),
        }
    }

    #[test]
    fn trend_rows_group_by_generation() {
        let index = LedgerIndex {
            schema: 1,
            generation: 2,
            entries: vec![
                entry("run_manifest", "aa", 1, 10),
                entry("run_manifest", "bb", 1, 5),
                entry("bench_report", "cc", 2, 0),
            ],
        };
        let trends = trend_rows(&index);
        assert_eq!(trends.len(), 2);
        assert_eq!((trends[0].generation, trends[0].entries, trends[0].spans), (1, 2, 15));
        assert_eq!((trends[1].generation, trends[1].entries), (2, 1));
    }

    #[test]
    fn failure_rate_counts_failures_as_extra_attempts() {
        let row = StrategyRow {
            strategy: "detect:raha".into(),
            runs: 1,
            invocations: 3,
            total_ms: 1.0,
            max_ms: 1.0,
            failures: 1,
        };
        assert!((row.failure_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rendering_is_deterministic_and_escaped() {
        let report = Report {
            generation: 1,
            kind_counts: BTreeMap::from([("run_manifest".to_string(), 1)]),
            strategies: vec![StrategyRow {
                strategy: "detect:a<b".into(),
                runs: 1,
                invocations: 2,
                total_ms: 3.5,
                max_ms: 2.0,
                failures: 0,
            }],
            taxonomy: vec![TaxonomyRow {
                cell: "detect:zeroed".into(),
                taxonomy: FailureTaxonomy { deadlines: 1, ..FailureTaxonomy::default() },
                traces: vec!["00000000deadbeef".into()],
            }],
            percentiles: vec![PercentileRow {
                histogram: "grid:cell_ms".into(),
                source: "artifacts/telemetry/fig2-11.json".into(),
                count: 9,
                p50_ms: 1.0,
                p95_ms: 2.0,
                p99_ms: 3.0,
                max_ms: 3.0,
            }],
            cache: vec![CacheRow {
                source: "artifacts/telemetry/crash_smoke-37.json".into(),
                hits: 408,
                misses: 0,
                replayed: 408,
                quarantined: 0,
                commits: 0,
                divergence: 0,
            }],
            bench_medians: BTreeMap::new(),
            trends: Vec::new(),
            diff: None,
        };
        let html = report.to_html();
        assert!(html.contains("detect:a&lt;b"), "strategy names are escaped in HTML");
        assert!(!html.contains("detect:a<b"));
        assert_eq!(report.to_markdown(), report.to_markdown());
        assert_eq!(html, report.to_html());
        let md = report.to_markdown();
        assert!(md.contains("| detect:a<b | 1 | 2 | 3.500 | 2.000 | 0 | 0.0% |"));
        assert!(
            md.contains("| detect:zeroed | 0 | 1 | 0 | 0 | 1 | 00000000deadbeef |"),
            "taxonomy rows link their cell trace ids"
        );
        assert!(md.contains("| grid:cell_ms | artifacts/telemetry/fig2-11.json | 9 | 1.000 | 2.000 | 3.000 | 3.000 |"));
        assert!(html.contains("00000000deadbeef"));
        assert!(html.contains("grid:cell_ms"));
        assert!(
            md.contains(
                "| artifacts/telemetry/crash_smoke-37.json | 408 | 0 | 100.0% | 408 | 0 | 0 | 0 |"
            ),
            "cache table renders hits, hit rate and recovery counters:\n{md}"
        );
        assert!(html.contains("<h2>Store cache effectiveness</h2>"));
    }

    #[test]
    fn cache_hit_rate_handles_unconsulted_and_warm_stores() {
        let cold = CacheRow {
            source: "a.json".into(),
            hits: 0,
            misses: 0,
            replayed: 0,
            quarantined: 0,
            commits: 0,
            divergence: 0,
        };
        assert_eq!(cold.hit_rate(), 0.0);
        let warm = CacheRow { hits: 9, misses: 1, ..cold };
        assert!((warm.hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn report_over_committed_artifacts_builds_and_diffs() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let mut index = LedgerIndex::default();
        assert!(index.apply(crate::ingest::ingest_repo(&root).expect("ingest")));
        let diff = (
            "artifacts/telemetry/fig2_detection-11.json",
            "artifacts/telemetry/chaos_smoke-29.json",
        );
        let report = build_report(&root, &index, Some(diff)).expect("report builds");
        assert!(!report.strategies.is_empty());
        assert!(
            report.strategies.iter().any(|r| r.strategy.starts_with("detect:")),
            "detector strategies appear in the table"
        );
        let (_, _, rows) = report.diff.as_ref().expect("diff present");
        assert!(!rows.is_empty());
        // Determinism: building twice renders byte-identical output.
        let again = build_report(&root, &index, Some(diff)).expect("report builds again");
        assert_eq!(report.to_markdown(), again.to_markdown());
        assert_eq!(report.to_html(), again.to_html());
    }
}
