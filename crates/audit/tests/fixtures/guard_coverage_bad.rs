//! Negative fixture: a toolbox dispatch outside rein_guard::run.

pub fn dispatch(detector: &dyn Detector, ctx: &Ctx) -> Mask {
    detector.detect(ctx)
}

pub fn apply(repairer: &dyn Repairer, ctx: &Ctx) -> Outcome {
    repairer.repair(ctx)
}
