//! Fixture: forbidden tokens inside comments and strings must not fire.
//! A doc mention of HashMap or thread_rng is not a use of either.
pub fn describe() -> &'static str {
    // HashMap and Instant::now are only named in this comment.
    "prefer BTreeMap over HashMap; never call thread_rng or panic!"
}
