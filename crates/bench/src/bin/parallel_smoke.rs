//! Parallel-determinism smoke test: runs the full S1–S5 benchmark grid
//! (detection → repair → scenario evaluation) under scoped rayon pools
//! of 1, 4 and N worker threads in one process, and asserts that every
//! serialized grid cell is byte-identical across the three runs.
//!
//! This is the runtime half of the parallel-grid certification: the
//! static half is `rein-audit`'s `par-*` rule family, which proves the
//! sharded code derives seeds per cell, merges through registered
//! combiners, and shares no unsynchronized state. The smoke test closes
//! the loop chaos-style — if any worker-count-dependent behaviour slips
//! past the analyzer, the byte comparison catches it here.
//!
//! The same invariance is asserted for the causal trace layer: each
//! run's span stream is reconstructed into per-cell trace trees, every
//! trace-carrying span must be reachable from a `cell:*` root (no
//! orphans), and the canonical Chrome-trace and flamegraph exports must
//! be byte-identical across pool widths — the trace tree is a function
//! of the grid, not of the scheduler.
//!
//! Exit codes: `0` on success, `4` when any cell or trace export
//! differs between thread counts (or a causal tree is broken), `5` when
//! a run degraded cells (the grid must be fault-free under the default
//! policy), `2` for a bad environment.

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use std::collections::BTreeMap;

use rein_bench::{conclude, dataset, dump_cells, header, phase, worker_threads};
use rein_core::{Controller, Scenario};
use rein_datasets::{DatasetId, GeneratedDataset};

const SEED: u64 = 31;
const LABEL_BUDGET: usize = 50;
const REPEATS: usize = 1;

/// The canonical trace exports of one grid run — byte-comparable
/// across pool widths because the exporter erases wall-clock, worker
/// identity and span-id allocation order.
struct TraceCheck {
    chrome: String,
    flame: String,
    traces: usize,
}

/// Reconstructs the run's causal trace trees and renders the canonical
/// exports, enforcing the structural invariants on the way: no orphan
/// spans, and every trace rooted at a `cell:*` span.
fn trace_check(threads: usize) -> TraceCheck {
    let spans = rein_telemetry::snapshot_spans();
    let forest = rein_telemetry::build_traces(&spans);
    if !forest.orphans.is_empty() {
        eprintln!("error: the {threads}-thread run left {} orphan span(s):", forest.orphans.len());
        for o in &forest.orphans {
            eprintln!(
                "  {:?} (id {}) on trace {:016x}, parent {}",
                o.name, o.id, o.trace_id, o.parent_id
            );
        }
        std::process::exit(4);
    }
    for t in &forest.traces {
        if !t.root.name.starts_with("cell:") {
            eprintln!(
                "error: trace {} is rooted at {:?}, not a cell span",
                t.trace_hex(),
                t.root.name
            );
            std::process::exit(4);
        }
    }
    TraceCheck {
        chrome: rein_telemetry::chrome_trace_json(&forest),
        flame: rein_telemetry::flamegraph_svg(&forest),
        traces: forest.traces.len(),
    }
}

/// Runs the S1–S5 grid inside a scoped pool of exactly `threads`
/// workers and returns the serialized cells plus the canonical trace
/// exports. Telemetry is reset first so each run's failure set and span
/// stream stand alone.
fn grid_at(threads: usize, ds: &GeneratedDataset) -> (BTreeMap<String, String>, TraceCheck) {
    rein_telemetry::reset();
    let run = phase(&format!("grid-{threads}"));
    let pool = match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot build a {threads}-thread pool: {e}");
            std::process::exit(2);
        }
    };
    let ctrl = Controller { label_budget: LABEL_BUDGET, seed: SEED, ..Controller::default() };
    let cells = pool.install(|| ctrl.run_grid(ds, &Scenario::ALL, REPEATS));
    drop(run);
    let failures = rein_telemetry::failures_snapshot();
    if !failures.is_empty() {
        eprintln!("error: the {threads}-thread run degraded {} cell(s):", failures.len());
        for f in &failures {
            eprintln!("  {}:{}@{}#{} -> {}", f.phase, f.strategy, f.dataset, f.scope, f.cause);
        }
        std::process::exit(5);
    }
    let traces = trace_check(threads);
    (cells, traces)
}

/// Reports the cells that differ between two runs; returns their count.
fn diff(
    label: &str,
    reference: &BTreeMap<String, String>,
    other: &BTreeMap<String, String>,
) -> usize {
    let mut diverged = 0usize;
    for (key, bytes) in reference {
        match other.get(key) {
            Some(b) if b == bytes => {}
            Some(_) => {
                eprintln!("error: cell {key} diverged at {label}");
                diverged += 1;
            }
            None => {
                eprintln!("error: cell {key} missing at {label}");
                diverged += 1;
            }
        }
    }
    for key in other.keys() {
        if !reference.contains_key(key) {
            eprintln!("error: extra cell {key} at {label}");
            diverged += 1;
        }
    }
    diverged
}

fn main() {
    let setup = phase("setup");
    let dump_path = match parse_args() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let ds = dataset(DatasetId::BreastCancer, SEED);
    drop(setup);

    header("Parallel smoke — S1–S5 grid byte-identity across pool widths");
    println!("dataset: {} ({} rows)", ds.info.name, ds.dirty.n_rows());

    // 1, 4, and the configured width (REIN_THREADS or the machine's
    // core count) — deduplicated, reference first.
    let native = worker_threads() as usize;
    let mut widths = vec![1usize, 4, native];
    widths.sort_unstable();
    widths.dedup();
    println!("pool widths: {widths:?} (native {native})");

    let (reference, ref_traces) = grid_at(widths[0], &ds);
    println!(
        "{} cell(s), {} cell trace(s) at {} thread(s)",
        reference.len(),
        ref_traces.traces,
        widths[0]
    );
    if let Some(path) = &dump_path {
        match dump_cells(path, &reference) {
            Ok(()) => println!("cells dump: {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }

    let compare = phase("compare");
    let mut diverged = 0usize;
    for &w in &widths[1..] {
        let (cells, traces) = grid_at(w, &ds);
        let label = format!("{w} thread(s) vs {}", widths[0]);
        diverged += diff(&label, &reference, &cells);
        if traces.chrome != ref_traces.chrome {
            eprintln!("error: Chrome trace export diverged at {label}");
            diverged += 1;
        }
        if traces.flame != ref_traces.flame {
            eprintln!("error: flamegraph export diverged at {label}");
            diverged += 1;
        }
        if diverged == 0 {
            println!(
                "{} cell(s) and {} canonical trace(s) byte-identical at {label}",
                cells.len(),
                traces.traces
            );
        }
    }
    drop(compare);

    if diverged > 0 {
        eprintln!("error: {diverged} cell(s)/export(s) depend on the worker-thread count");
        std::process::exit(4);
    }
    println!("\ngrid and trace exports are worker-count invariant across {widths:?} threads");
    conclude("parallel_smoke", SEED, LABEL_BUDGET as u64);
}

/// Parses the binary's arguments: only `--dump-cells PATH` is accepted.
fn parse_args() -> Result<Option<std::path::PathBuf>, String> {
    let mut args = std::env::args().skip(1);
    let mut dump = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dump-cells" => {
                let path = args.next().ok_or("--dump-cells needs a PATH argument")?;
                dump = Some(std::path::PathBuf::from(path));
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(dump)
}
