//! Positive fixture: the collected manifest is registered in the ledger
//! right after it is written.

pub fn finish(binary: &str, config: RunConfig) {
    let manifest = RunManifest::collect(binary, config);
    match manifest.write() {
        Ok(path) => {
            if let Err(e) = rein_ledger::register_run(Path::new("."), &manifest, &path) {
                rein_telemetry::emit(&format!("ledger registration failed: {e}"));
            }
        }
        Err(e) => rein_telemetry::emit(&format!("manifest write failed: {e}")),
    }
}
