//! OpenRefine-style inconsistency detection: key-fingerprint clustering of
//! each text column; cells spelled differently from their cluster's
//! dominant (canonical) form are flagged — the programmatic equivalent of
//! OpenRefine's "cluster and edit" facet.

use std::collections::BTreeMap;

use rein_constraints::pattern::fingerprint;
use rein_data::{CellMask, Value};

use crate::context::{DetectContext, Detector};

/// OpenRefine detector.
#[derive(Debug, Default, Clone)]
pub struct OpenRefine;

impl Detector for OpenRefine {
    fn name(&self) -> &'static str {
        "openrefine"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:openrefine");
        let t = ctx.dirty;
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());
        for c in ctx.categorical_columns() {
            // fingerprint -> (spelling -> count)
            let mut clusters: BTreeMap<String, BTreeMap<&str, usize>> = BTreeMap::new();
            for v in t.column(c) {
                if let Value::Str(s) = v {
                    *clusters.entry(fingerprint(s)).or_default().entry(s.as_str()).or_insert(0) +=
                        1;
                }
            }
            // Canonical spelling per cluster = most frequent variant.
            let canonical: BTreeMap<String, String> = clusters
                .iter()
                .filter(|(_, variants)| variants.len() > 1)
                .map(|(fp, variants)| {
                    let best = variants
                        .iter()
                        .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                        .map(|(s, _)| s.to_string())
                        .unwrap_or_default();
                    (fp.clone(), best)
                })
                .collect();
            if canonical.is_empty() {
                continue;
            }
            for (r, v) in t.column(c).iter().enumerate() {
                if let Value::Str(s) = v {
                    if let Some(canon) = canonical.get(&fingerprint(s)) {
                        if s != canon {
                            mask.set(r, c, true);
                        }
                    }
                }
            }
        }
        mask
    }
}

/// The canonical spelling map OpenRefine would apply — exposed for the
/// repair stage in `rein-repair`.
pub fn canonical_map(t: &rein_data::Table, col: usize) -> BTreeMap<String, String> {
    let mut clusters: BTreeMap<String, BTreeMap<&str, usize>> = BTreeMap::new();
    for v in t.column(col) {
        if let Value::Str(s) = v {
            *clusters.entry(fingerprint(s)).or_default().entry(s.as_str()).or_insert(0) += 1;
        }
    }
    clusters
        .into_iter()
        .filter(|(_, variants)| variants.len() > 1)
        .map(|(fp, variants)| {
            let best = variants
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                .map(|(s, _)| s.to_string())
                .unwrap_or_default();
            (fp, best)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema, Table};

    fn table() -> Table {
        let schema = Schema::new(vec![ColumnMeta::new("style", ColumnType::Str)]);
        let mut rows: Vec<Vec<Value>> = (0..30).map(|_| vec![Value::str("pale ale")]).collect();
        rows[3][0] = Value::str("Pale Ale");
        rows[7][0] = Value::str(" pale ale");
        rows[11][0] = Value::str("PALE ALE");
        // A different, consistent value.
        for row in rows.iter_mut().take(25).skip(20) {
            row[0] = Value::str("stout");
        }
        Table::from_rows(schema, rows)
    }

    #[test]
    fn variant_spellings_are_flagged() {
        let t = table();
        let m = OpenRefine.detect(&DetectContext::bare(&t));
        assert!(m.get(3, 0));
        assert!(m.get(7, 0));
        assert!(m.get(11, 0));
        assert_eq!(m.count(), 3, "canonical spellings stay clean");
    }

    #[test]
    fn consistent_columns_produce_nothing() {
        let schema = Schema::new(vec![ColumnMeta::new("c", ColumnType::Str)]);
        let t = Table::from_rows(
            schema,
            (0..20).map(|i| vec![Value::str(["a", "b"][i % 2])]).collect(),
        );
        assert!(OpenRefine.detect(&DetectContext::bare(&t)).is_empty());
    }

    #[test]
    fn canonical_map_picks_majority_spelling() {
        let t = table();
        let map = canonical_map(&t, 0);
        assert_eq!(map.get("ale pale").map(String::as_str), Some("pale ale"));
        assert!(!map.contains_key("stout"), "single-variant clusters excluded");
    }
}
