//! Materialises every data version of a dataset — ground truth, dirty, and
//! one repaired version per cleaning strategy — into a file-backed
//! [`rein_core::Repository`] (the PostgreSQL substitute), as CSV files.
//!
//! Usage: `export_versions <dataset> [out_dir]` (default `./rein_repo`).

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use rein_bench::{conclude, dataset, phase};
use rein_core::{Repository, VersionKey};
use rein_datasets::DatasetId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args.first().and_then(|a| DatasetId::from_name(a)).unwrap_or(DatasetId::Beers);
    let out = args.get(1).cloned().unwrap_or_else(|| "rein_repo".to_string());

    let setup = phase("setup");
    let ds = dataset(id, 7);
    let mut repo = Repository::with_root(&out).expect("create repository root");
    repo.store(&ds.info.name, VersionKey::GroundTruth, ds.clean.clone()).unwrap();
    repo.store(&ds.info.name, VersionKey::Dirty, ds.dirty.clone()).unwrap();
    drop(setup);

    let ctrl = rein_bench::controller(100, 3);
    let detect = phase("detect");
    let mut detections = ctrl.run_detection(&ds);
    drop(detect);
    detections.retain(|d| d.quality.detected() > 0);
    detections.sort_by(|a, b| b.quality.f1.total_cmp(&a.quality.f1));
    detections.truncate(4);
    let repair = phase("repair-and-store");
    let mut stored = 2usize;
    for det in &detections {
        for run in ctrl.run_repairs(&ds, det) {
            if let Some(version) = run.version {
                let key = VersionKey::Repaired {
                    detector: det.kind.name().to_string(),
                    repairer: run.kind.name().to_string(),
                };
                repo.store(&ds.info.name, key, version.table).unwrap();
                stored += 1;
            }
        }
    }
    drop(repair);
    println!("stored {stored} data versions of {} under {out}/{}/", ds.info.name, ds.info.name);
    for key in repo.versions_of(&ds.info.name) {
        println!("  {key:?}");
    }
    conclude("export_versions", ctrl.seed, ctrl.label_budget as u64);
}
