//! BIRCH: clustering-feature (CF) summarisation followed by global
//! clustering of the CF centroids.
//!
//! This implements the algorithm's essence — a single pass absorbs points
//! into CF entries under a radius threshold (splitting is unnecessary at
//! benchmark scale because the entry list is flat), then agglomerative
//! merging of CF centroids yields the final `k` clusters.

use crate::hierarchical::Agglomerative;
use crate::linalg::{sq_dist, Matrix};
use crate::model::Clusterer;

/// A clustering feature: count, linear sum, squared-norm sum.
#[derive(Debug, Clone)]
struct Cf {
    n: f64,
    ls: Vec<f64>,
    ss: f64,
}

impl Cf {
    fn new(xr: &[f64]) -> Self {
        Self { n: 1.0, ls: xr.to_vec(), ss: xr.iter().map(|v| v * v).sum() }
    }

    fn centroid(&self) -> Vec<f64> {
        self.ls.iter().map(|v| v / self.n).collect()
    }

    fn absorb(&mut self, xr: &[f64]) {
        self.n += 1.0;
        for (l, &v) in self.ls.iter_mut().zip(xr) {
            *l += v;
        }
        self.ss += xr.iter().map(|v| v * v).sum::<f64>();
    }

    /// Cluster radius after hypothetically absorbing `xr`.
    fn radius_with(&self, xr: &[f64]) -> f64 {
        let n = self.n + 1.0;
        let ss = self.ss + xr.iter().map(|v| v * v).sum::<f64>();
        let mut centroid_norm = 0.0;
        for (l, &v) in self.ls.iter().zip(xr) {
            let c = (l + v) / n;
            centroid_norm += c * c;
        }
        (ss / n - centroid_norm).max(0.0).sqrt()
    }
}

/// BIRCH clusterer.
#[derive(Debug, Clone)]
pub struct Birch {
    /// Final number of clusters.
    pub k: usize,
    /// CF absorption radius threshold; `None` = auto (estimated from a
    /// sample of pairwise distances).
    pub threshold: Option<f64>,
}

impl Birch {
    /// Builds a BIRCH clusterer producing `k` clusters.
    pub fn new(k: usize) -> Self {
        Self { k: k.max(1), threshold: None }
    }

    fn auto_threshold(x: &Matrix) -> f64 {
        let n = x.rows();
        if n < 2 {
            return 1.0;
        }
        // Median distance of a deterministic sample of pairs, scaled down so
        // CF entries stay fine-grained.
        let step = (n / 64).max(1);
        let mut ds = Vec::new();
        let mut i = 0;
        while i + step < n {
            ds.push(sq_dist(x.row(i), x.row(i + step)).sqrt());
            i += step;
        }
        ds.sort_by(|a, b| a.total_cmp(b));
        let median = ds.get(ds.len() / 2).copied().unwrap_or(1.0);
        (median * 0.25).max(1e-9)
    }
}

impl Clusterer for Birch {
    fn fit_predict(&mut self, x: &Matrix) -> Vec<usize> {
        let n = x.rows();
        if n == 0 {
            return Vec::new();
        }
        let threshold = self.threshold.unwrap_or_else(|| Self::auto_threshold(x));

        // Phase 1: absorb points into CF entries.
        let mut cfs: Vec<Cf> = Vec::new();
        let mut assignment = vec![0usize; n];
        for r in 0..n {
            let xr = x.row(r);
            let nearest = cfs
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    sq_dist(&a.centroid(), xr).total_cmp(&sq_dist(&b.centroid(), xr))
                })
                .map(|(i, _)| i);
            match nearest {
                Some(i) if cfs[i].radius_with(xr) <= threshold => {
                    cfs[i].absorb(xr);
                    assignment[r] = i;
                }
                _ => {
                    assignment[r] = cfs.len();
                    cfs.push(Cf::new(xr));
                }
            }
        }

        // Phase 2: global clustering of CF centroids.
        let centroids: Vec<Vec<f64>> = cfs.iter().map(Cf::centroid).collect();
        let k = self.k.min(centroids.len());
        let cf_labels = Agglomerative::new(k).fit_predict(&Matrix::from_rows(&centroids));

        assignment.iter().map(|&cf| cf_labels[cf]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blob_classification;

    #[test]
    fn recovers_blobs() {
        let (x, truth) = blob_classification(120, 3, 231);
        let labels = Birch::new(3).fit_predict(&x);
        let mut purity = 0usize;
        for class in 0..3 {
            let members: Vec<usize> = (0..truth.len()).filter(|&i| truth[i] == class).collect();
            let mut counts = std::collections::BTreeMap::new();
            for &m in &members {
                *counts.entry(labels[m]).or_insert(0usize) += 1;
            }
            purity += counts.values().copied().max().unwrap_or(0);
        }
        assert!(purity as f64 / truth.len() as f64 > 0.9);
    }

    #[test]
    fn cf_statistics_are_exact() {
        let mut cf = Cf::new(&[1.0, 2.0]);
        cf.absorb(&[3.0, 4.0]);
        assert_eq!(cf.n, 2.0);
        assert_eq!(cf.centroid(), vec![2.0, 3.0]);
        assert_eq!(cf.ss, 1.0 + 4.0 + 9.0 + 16.0);
    }

    #[test]
    fn summarisation_compresses() {
        // 200 points in 2 tight blobs (σ=0.5, centres 8 apart) -> CF entries
        // compress points but never bridge the blobs at this threshold.
        let (x, _) = blob_classification(200, 2, 233);
        let mut b = Birch::new(2);
        b.threshold = Some(1.0);
        let labels = b.fit_predict(&x);
        assert_eq!(labels.len(), 200);
        let mut d = labels.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn k_clamped_to_cf_count() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![0.0]]);
        let labels = Birch::new(10).fit_predict(&x);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn empty_input() {
        assert!(Birch::new(3).fit_predict(&Matrix::zeros(0, 2)).is_empty());
    }
}
