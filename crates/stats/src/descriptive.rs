//! Descriptive statistics over `f64` samples.

/// Arithmetic mean; `NaN` on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; `NaN` on an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sample standard deviation (Bessel's correction); `NaN` for n < 2.
pub fn sample_std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation on sorted data.
/// `NaN` on an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median (0.5-quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Interquartile range `Q3 - Q1` (§3.1's IQR outlier rule uses this).
pub fn iqr(xs: &[f64]) -> f64 {
    quantile(xs, 0.75) - quantile(xs, 0.25)
}

/// Summary of a repeated-measurement series: mean ± sample std.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Mean of the series.
    pub mean: f64,
    /// Sample standard deviation (`NaN` for fewer than two points).
    pub std: f64,
}

/// Mean and sample standard deviation of a series.
pub fn mean_std(xs: &[f64]) -> MeanStd {
    MeanStd { mean: mean(xs), std: sample_std(xs) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn empty_slices_yield_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[]).is_nan());
        assert!(quantile(&[], 0.5).is_nan());
        assert!(sample_std(&[1.0]).is_nan());
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_order_invariant() {
        let a = [5.0, 1.0, 3.0];
        let b = [1.0, 3.0, 5.0];
        assert_eq!(median(&a), median(&b));
        assert_eq!(median(&a), 3.0);
    }

    #[test]
    fn iqr_of_uniform_grid() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert!((iqr(&xs) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn sample_std_matches_known_value() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // population var 4.0 -> sample var 32/7
        assert!((sample_std(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        let ms = mean_std(&xs);
        assert_eq!(ms.mean, 5.0);
    }
}
