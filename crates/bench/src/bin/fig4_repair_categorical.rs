//! Figure 4: repair accuracy and runtime over the categorical attributes
//! of the Beers and Breast Cancer datasets.
//!
//! Every planned detector feeds every planned generic repairer; each
//! cleaning strategy reports its categorical repair precision/recall/F1
//! (the bubble plot of the paper, with bubbles above F1 0.6 highlighted)
//! and the repairers' runtimes.

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use rein_bench::{conclude, dataset, f, header, phase};
use rein_core::DetectorRun;
use rein_datasets::DatasetId;
use rein_repair::RepairKind;

fn run_dataset(id: DatasetId, seed: u64) {
    let generate = phase("generate");
    let ds = dataset(id, seed);
    drop(generate);
    let ctrl = rein_bench::controller(100, seed);
    header(&format!("Figure 4 — categorical repair ({})", ds.info.name));
    let detect = phase("detect");
    let mut detections: Vec<DetectorRun> = ctrl.run_detection(&ds);
    drop(detect);
    detections.retain(|d| d.quality.detected() > 0);
    detections.sort_by(|a, b| b.quality.f1.total_cmp(&a.quality.f1));
    detections.truncate(6); // figure shows the interesting strategies

    let _repair = phase("repair");
    println!(
        "{:<10} {:<18} {:>7} {:>7} {:>7} {:>10}",
        "detector", "repairer", "P", "R", "F1", "runtime"
    );
    let mut repair_times: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
    for det in &detections {
        let runs = ctrl.run_repairs(&ds, det);
        let records = ctrl.repair_records(&ds, det.kind, &runs);
        for rec in &records {
            if let Some(cause) = &rec.failure {
                println!("  DEGRADED {}+{} ({cause})", rec.detector, rec.repairer);
                continue;
            }
            if rec.repairer == RepairKind::Delete.name() {
                continue; // no cell-wise accuracy for row deletion
            }
            let Some(f1) = rec.cat_f1 else { continue };
            let mark = if f1 > 0.6 { " *" } else { "" };
            println!(
                "{:<10} {:<18} {:>7} {:>7} {:>7} {:>9.3}s{}",
                det.kind.name().chars().take(10).collect::<String>(),
                rec.repairer,
                rein_bench::fo(rec.cat_precision),
                rein_bench::fo(rec.cat_recall),
                f(f1),
                rec.runtime_ms / 1e3,
                mark,
            );
            repair_times
                .entry(match rec.repairer.as_str() {
                    s if s == RepairKind::Baran.name() => "baran",
                    s if s == RepairKind::HoloClean.name() => "holoclean",
                    s if s == RepairKind::MissMix.name() => "miss_mix",
                    s if s == RepairKind::DataWigMix.name() => "datawig_mix",
                    s if s == RepairKind::ImputeMeanMode.name() => "impute_mean_mode",
                    s if s == RepairKind::GroundTruth.name() => "ground_truth",
                    s if s == RepairKind::OpenRefine.name() => "openrefine",
                    _ => "other",
                })
                .or_default()
                .push(rec.runtime_ms / 1e3);
        }
    }

    println!("\nrepairer mean runtime (s):");
    for (name, times) in &repair_times {
        let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
        let std = {
            let v =
                times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len().max(1) as f64;
            v.sqrt()
        };
        println!("  {:<18} {:>8.3} ± {:.3}", name, mean, std);
    }
    println!("\n(* = strategies with repair F1 above 0.6, the coloured bubbles)");
}

fn main() {
    run_dataset(DatasetId::Beers, 51);
    run_dataset(DatasetId::BreastCancer, 52);
    conclude("fig4_repair_categorical", 51, 100);
}
