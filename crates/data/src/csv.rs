//! Minimal RFC-4180-flavoured CSV codec.
//!
//! The original benchmark stores every data version as CSV in PostgreSQL;
//! our repository does the same on the filesystem. The codec supports
//! quoted fields, embedded separators/quotes/newlines, and a header row.

use std::fmt::Write as _;

use crate::schema::{ColumnMeta, ColumnType, Schema};
use crate::table::Table;
use crate::value::Value;

/// Errors produced by the CSV codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A record had a different number of fields than the header.
    RaggedRow {
        /// 1-based line number of the offending record.
        line: usize,
        /// Fields found.
        found: usize,
        /// Fields expected (header width).
        expected: usize,
    },
    /// A quoted field was never terminated.
    UnterminatedQuote {
        /// 1-based line number where the quote opened.
        line: usize,
    },
    /// A single field exceeded [`MAX_FIELD_LEN`] bytes.
    OverlongField {
        /// 1-based line number where the field started growing.
        line: usize,
        /// Observed length in bytes when the limit tripped.
        len: usize,
    },
    /// The input bytes were not valid UTF-8.
    InvalidUtf8 {
        /// Byte offset of the first invalid sequence.
        offset: usize,
    },
    /// The input contained no header row.
    Empty,
}

/// Upper bound on a single field's byte length (1 MiB). Fields beyond
/// this are overwhelmingly corrupt input (an unbalanced quote swallowing
/// the rest of a file, a torn write); failing fast keeps memory bounded.
pub const MAX_FIELD_LEN: usize = 1 << 20;

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::RaggedRow { line, found, expected } => {
                write!(f, "line {line}: expected {expected} fields, found {found}")
            }
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
            CsvError::OverlongField { line, len } => {
                write!(f, "line {line}: field of {len} bytes exceeds {MAX_FIELD_LEN}-byte limit")
            }
            CsvError::InvalidUtf8 { offset } => {
                write!(f, "invalid UTF-8 at byte offset {offset}")
            }
            CsvError::Empty => write!(f, "empty CSV input"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Appends a character to a field, rejecting fields past [`MAX_FIELD_LEN`].
fn push_bounded(field: &mut String, ch: char, line: usize) -> Result<(), CsvError> {
    field.push(ch);
    if field.len() > MAX_FIELD_LEN {
        return Err(CsvError::OverlongField { line, len: field.len() });
    }
    Ok(())
}

/// Splits raw CSV text into records of string fields.
fn parse_records(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut quote_line = 1usize;
    let mut saw_any = false;

    while let Some(ch) = chars.next() {
        saw_any = true;
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        push_bounded(&mut field, '"', line)?;
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    push_bounded(&mut field, '\n', line)?;
                }
                c => push_bounded(&mut field, c, line)?,
            }
        } else {
            match ch {
                '"' => {
                    in_quotes = true;
                    quote_line = line;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    if chars.peek() == Some(&'\n') {
                        continue; // handled by the \n branch
                    }
                }
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                c => push_bounded(&mut field, c, line)?,
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line: quote_line });
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    if !saw_any || records.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(records)
}

/// Parses CSV text (header row required) into a table, inferring each
/// column's type from the parsed values via [`Table::observed_type`].
pub fn read_str(input: &str) -> Result<Table, CsvError> {
    let records = parse_records(input)?;
    let header = &records[0];
    let width = header.len();

    let mut columns: Vec<Vec<Value>> = vec![Vec::with_capacity(records.len() - 1); width];
    for (i, rec) in records.iter().enumerate().skip(1) {
        if rec.len() != width {
            return Err(CsvError::RaggedRow { line: i + 1, found: rec.len(), expected: width });
        }
        for (c, raw) in rec.iter().enumerate() {
            columns[c].push(Value::parse(raw));
        }
    }

    // Provisional schema; retype from observed values.
    let metas: Vec<ColumnMeta> =
        header.iter().map(|name| ColumnMeta::new(name.clone(), ColumnType::Str)).collect();
    let table = Table::from_columns(Schema::new(metas), columns);
    let mut schema = table.schema().clone();
    for c in 0..table.n_cols() {
        schema = schema.with_type(c, table.observed_type(c));
    }
    Ok(Table::from_columns(schema, (0..table.n_cols()).map(|c| table.column(c).to_vec()).collect()))
}

/// Parses raw bytes as UTF-8 CSV. Invalid byte sequences are a typed
/// [`CsvError::InvalidUtf8`] carrying the offset of the first bad byte,
/// so on-disk corruption surfaces as a recoverable error, not a panic.
pub fn read_bytes(bytes: &[u8]) -> Result<Table, CsvError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| CsvError::InvalidUtf8 { offset: e.valid_up_to() })?;
    read_str(text)
}

/// Quotes a field if it contains separators, quotes or newlines.
fn escape(field: &str, out: &mut String) {
    if field.contains(['"', ',', '\n', '\r']) {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Serialises a table to CSV text with a header row.
pub fn write_str(table: &Table) -> String {
    let mut out = String::new();
    for (i, col) in table.schema().columns().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape(&col.name, &mut out);
    }
    out.push('\n');
    for r in 0..table.n_rows() {
        for c in 0..table.n_cols() {
            if c > 0 {
                out.push(',');
            }
            let cell = table.cell(r, c);
            match cell {
                Value::Null => {}
                Value::Str(s) => escape(s, &mut out),
                other => {
                    let _ = write!(out, "{other}");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Reads a table from a CSV file on disk.
pub fn read_file(path: &std::path::Path) -> std::io::Result<Table> {
    let bytes = std::fs::read(path)?;
    read_bytes(&bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Writes a table to a CSV file on disk.
pub fn write_file(path: &std::path::Path, table: &Table) -> std::io::Result<()> {
    std::fs::write(path, write_str(table))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parse_with_types() {
        let t = read_str("id,abv,name\n1,5.2,Pale Ale\n2,6.0,IPA\n").unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.schema().column(0).ctype, ColumnType::Int);
        assert_eq!(t.schema().column(1).ctype, ColumnType::Float);
        assert_eq!(t.schema().column(2).ctype, ColumnType::Str);
        assert_eq!(t.cell(0, 2), &Value::str("Pale Ale"));
    }

    #[test]
    fn quoted_fields_with_commas_and_newlines() {
        let t = read_str("a,b\n\"x,y\",\"line1\nline2\"\n").unwrap();
        assert_eq!(t.cell(0, 0), &Value::str("x,y"));
        assert_eq!(t.cell(0, 1), &Value::str("line1\nline2"));
    }

    #[test]
    fn escaped_quotes() {
        let t = read_str("a\n\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.cell(0, 0), &Value::str("say \"hi\""));
    }

    #[test]
    fn empty_fields_are_null() {
        let t = read_str("a,b\n,2\n").unwrap();
        assert!(t.cell(0, 0).is_null());
        assert_eq!(t.cell(0, 1), &Value::Int(2));
    }

    #[test]
    fn crlf_line_endings() {
        let t = read_str("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.cell(0, 1), &Value::Int(2));
    }

    #[test]
    fn ragged_row_is_error() {
        let err = read_str("a,b\n1\n").unwrap_err();
        assert!(matches!(err, CsvError::RaggedRow { line: 2, found: 1, expected: 2 }));
    }

    #[test]
    fn unterminated_quote_is_error() {
        let err = read_str("a\n\"oops\n").unwrap_err();
        assert!(matches!(err, CsvError::UnterminatedQuote { .. }));
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(read_str("").unwrap_err(), CsvError::Empty);
    }

    #[test]
    fn roundtrip_preserves_values() {
        let src = "id,name,score\n1,\"a,b\",2.5\n2,,3.0\n3,\"q\"\"q\",\n";
        let t = read_str(src).unwrap();
        let t2 = read_str(&write_str(&t)).unwrap();
        assert_eq!(t.n_rows(), t2.n_rows());
        for r in 0..t.n_rows() {
            for c in 0..t.n_cols() {
                assert_eq!(t.cell(r, c), t2.cell(r, c), "cell ({r},{c})");
            }
        }
    }

    #[test]
    fn overlong_field_is_error() {
        let input = format!("a\n{}\n", "x".repeat(MAX_FIELD_LEN + 1));
        let err = read_str(&input).unwrap_err();
        assert!(
            matches!(err, CsvError::OverlongField { line: 2, len } if len > MAX_FIELD_LEN),
            "got {err:?}"
        );
    }

    #[test]
    fn overlong_quoted_runaway_is_error() {
        // An unbalanced quote swallows the rest of the input into one
        // field; the limit must trip before the parser reaches the end.
        let input = format!("a\n\"{}\n", "y".repeat(MAX_FIELD_LEN + 8));
        let err = read_str(&input).unwrap_err();
        assert!(matches!(err, CsvError::OverlongField { .. }), "got {err:?}");
    }

    #[test]
    fn invalid_utf8_is_error() {
        let err = read_bytes(b"a,b\n1,\xff\xfe\n").unwrap_err();
        assert_eq!(err, CsvError::InvalidUtf8 { offset: 6 });
    }

    #[test]
    fn read_bytes_accepts_valid_utf8() {
        let t = read_bytes("a,b\n1,caf\u{e9}\n".as_bytes()).unwrap();
        assert_eq!(t.cell(0, 1), &Value::str("caf\u{e9}"));
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let t = read_str("a\n1").unwrap();
        assert_eq!(t.n_rows(), 1);
    }
}
