//! A comment- and string-aware lexer for Rust sources.
//!
//! The audit rules are token searches, and a naive `contains` would fire
//! on occurrences inside string literals (`"HashMap"`), doc comments and
//! `//` prose. This lexer splits every source line into its *code* part
//! (string/char literal contents blanked, comments removed) and its
//! *comment* part (where `audit:allow` annotations live). It understands
//! line comments, nested block comments, string/byte-string literals with
//! escapes, raw strings with arbitrary `#` fences, character literals and
//! lifetimes.

/// One physical source line, split into code and comment text.
#[derive(Debug, Default, Clone)]
pub struct SourceLine {
    /// Code with literal contents blanked and comments stripped. Quotes of
    /// string literals are kept (as `""`) so tokens cannot fuse across a
    /// removed literal.
    pub code: String,
    /// Concatenated comment text of the line (line comments and the part
    /// of any block comment that falls on this line).
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    /// Nested block comments; payload is the nesting depth.
    BlockComment(u32),
    /// Inside `"…"` or `b"…"` (escapes active).
    Str,
    /// Inside `r"…"`/`r#"…"#`/`br##"…"##`; payload is the fence size.
    RawStr(u32),
}

/// Splits `source` into per-line code/comment parts.
pub fn lex(source: &str) -> Vec<SourceLine> {
    let cs: Vec<char> = source.chars().collect();
    let n = cs.len();
    let mut lines: Vec<SourceLine> = Vec::new();
    let mut cur = SourceLine::default();
    let mut st = State::Normal;
    let mut i = 0usize;

    while i < n {
        let c = cs[i];
        if c == '\n' {
            if st == State::LineComment {
                st = State::Normal;
            }
            // A string spanning the line break is closed and reopened
            // around it: every SourceLine keeps balanced quotes (the
            // tokenizer's invariant) without collapsing physical lines.
            let in_str = matches!(st, State::Str | State::RawStr(_));
            if in_str {
                cur.code.push('"');
            }
            lines.push(std::mem::take(&mut cur));
            if in_str {
                cur.code.push('"');
            }
            i += 1;
            continue;
        }
        match st {
            State::Normal => {
                // Comments.
                if c == '/' && i + 1 < n && cs[i + 1] == '/' {
                    st = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && i + 1 < n && cs[i + 1] == '*' {
                    st = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw / byte string prefixes: r" r#" b" br" br#" — only
                // when the prefix letter is not part of a longer ident.
                if (c == 'r' || c == 'b') && !prev_is_ident(&cs, i) {
                    let mut j = i;
                    if cs[j] == 'b' {
                        j += 1;
                        if j < n && cs[j] == 'r' {
                            j += 1;
                        }
                    } else {
                        j += 1;
                    }
                    let raw = j > i + 1 || cs[i] == 'r';
                    let mut hashes = 0u32;
                    let mut k = j;
                    while k < n && cs[k] == '#' {
                        hashes += 1;
                        k += 1;
                    }
                    if k < n && cs[k] == '"' && (raw || hashes == 0) {
                        cur.code.push('"');
                        st = if raw { State::RawStr(hashes) } else { State::Str };
                        i = k + 1;
                        continue;
                    }
                }
                if c == '"' {
                    cur.code.push('"');
                    st = State::Str;
                    i += 1;
                    continue;
                }
                // Char literal vs lifetime.
                if c == '\'' {
                    if i + 1 < n && cs[i + 1] == '\\' {
                        // Escaped char literal: find the terminating quote,
                        // skipping an escaped '\'' / '\\' payload.
                        let start = if i + 2 < n && (cs[i + 2] == '\'' || cs[i + 2] == '\\') {
                            i + 3
                        } else {
                            i + 2
                        };
                        let mut j = start;
                        while j < n && cs[j] != '\'' && cs[j] != '\n' {
                            j += 1;
                        }
                        cur.code.push_str("' '");
                        i = (j + 1).min(n);
                        continue;
                    }
                    if i + 2 < n && cs[i + 2] == '\'' {
                        cur.code.push_str("' '");
                        i += 3;
                        continue;
                    }
                    // Lifetime: keep the tick, continue normally.
                    cur.code.push('\'');
                    i += 1;
                    continue;
                }
                cur.code.push(c);
                i += 1;
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && i + 1 < n && cs[i + 1] == '*' {
                    st = State::BlockComment(depth + 1);
                    cur.comment.push_str("/*");
                    i += 2;
                } else if c == '*' && i + 1 < n && cs[i + 1] == '/' {
                    st = if depth == 1 {
                        State::Normal
                    } else {
                        cur.comment.push_str("*/");
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped char (incl. \" and \\) — but a
                    // line-continuation `\` before the newline must leave
                    // the newline for the top of the loop, or every
                    // continuation line shifts all later line numbers.
                    if i + 1 < n && cs[i + 1] == '\n' {
                        i += 1;
                    } else {
                        i += 2;
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    st = State::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut k = i + 1;
                    let mut seen = 0u32;
                    while k < n && cs[k] == '#' && seen < hashes {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        cur.code.push('"');
                        st = State::Normal;
                        i = k;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() || st != State::Normal {
        lines.push(cur);
    }
    lines
}

fn prev_is_ident(cs: &[char], i: usize) -> bool {
    i > 0 && (cs[i - 1].is_alphanumeric() || cs[i - 1] == '_')
}

/// Returns `true` when `code` contains `token` outside a longer
/// identifier. Boundary checks only apply on the sides of the token that
/// start/end with an identifier character, so tokens like `.unwrap()` or
/// `Instant::now` work naturally.
pub fn has_token(code: &str, token: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let head_ident = token.chars().next().is_some_and(is_ident);
    let tail_ident = token.chars().next_back().is_some_and(is_ident);
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        let ok_before = !head_ident || !code[..at].chars().next_back().is_some_and(is_ident);
        let ok_after =
            !tail_ident || !code[at + token.len()..].chars().next().is_some_and(is_ident);
        if ok_before && ok_after {
            return true;
        }
        from = at + token.len();
    }
    false
}

/// Counts boundary-respecting occurrences of `token` in `code`.
pub fn count_token(code: &str, token: &str) -> usize {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let head_ident = token.chars().next().is_some_and(is_ident);
    let tail_ident = token.chars().next_back().is_some_and(is_ident);
    let mut from = 0;
    let mut count = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        let ok_before = !head_ident || !code[..at].chars().next_back().is_some_and(is_ident);
        let ok_after =
            !tail_ident || !code[at + token.len()..].chars().next().is_some_and(is_ident);
        if ok_before && ok_after {
            count += 1;
        }
        from = at + token.len();
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let ls = lex("let a = 1; // HashMap here\nlet /* HashMap */ b = 2;\n");
        assert!(!ls[0].code.contains("HashMap"));
        assert!(ls[0].comment.contains("HashMap"));
        assert!(!ls[1].code.contains("HashMap"));
        assert!(ls[1].code.contains("b = 2"));
    }

    #[test]
    fn nested_block_comments() {
        let ls = lex("a /* outer /* inner */ still */ b\n");
        assert!(ls[0].code.contains('a') && ls[0].code.contains('b'));
        assert!(!ls[0].code.contains("still"));
    }

    #[test]
    fn blanks_string_contents_and_keeps_quotes() {
        let ls = lex("call(\"HashMap // not a comment\");\n");
        assert_eq!(ls[0].code, "call(\"\");");
        assert!(ls[0].comment.is_empty());
    }

    #[test]
    fn raw_strings_with_fences() {
        let ls = lex("let p = r#\"thread_rng \" inner\"#; next()\n");
        assert!(!ls[0].code.contains("thread_rng"));
        assert!(ls[0].code.contains("next()"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let ls = lex("f(b\"panic!(\"); g(br#\"unwrap()\"#);\n");
        assert!(!ls[0].code.contains("panic!"));
        assert!(!ls[0].code.contains("unwrap"));
        assert!(ls[0].code.contains("f(") && ls[0].code.contains("g("));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let ls = lex("let c = '\"'; let d: &'static str = \"x\"; let e = '\\'';\n");
        assert!(ls[0].code.contains("'static"));
        // The double-quote char literal must not open a string.
        assert!(ls[0].code.contains("let d"));
        assert!(ls[0].code.contains("let e"));
    }

    #[test]
    fn escaped_quotes_inside_strings() {
        let ls = lex("x(\"a \\\" HashMap \\\\\"); y()\n");
        assert!(!ls[0].code.contains("HashMap"));
        assert!(ls[0].code.contains("y()"));
    }

    #[test]
    fn multi_line_block_comment_spans_lines() {
        let ls = lex("a\n/* one\ntwo */ b\n");
        assert_eq!(ls.len(), 3);
        assert!(ls[1].comment.contains("one"));
        assert!(ls[2].code.contains('b'));
        assert!(ls[2].comment.contains("two"));
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token("use std::collections::HashMap;", "HashMap"));
        assert!(!has_token("FxHashMap::new()", "HashMap"));
        assert!(!has_token("let my_phase = 1;", "phase"));
        assert!(has_token("x.unwrap();", ".unwrap()"));
        assert!(has_token("Instant::now()", "Instant::now"));
        assert_eq!(count_token("phase(a); phase(b); rephase(c)", "phase"), 2);
    }

    #[test]
    fn identifier_ending_in_r_before_string() {
        // `writer` ends in `r` but the `r` is part of the identifier, not
        // a raw-string prefix.
        let ls = lex("writer\"HashMap\";\n");
        assert!(!ls[0].code.contains("HashMap"));
        assert!(ls[0].code.contains("writer"));
    }

    /// A `\` line-continuation inside a string must not swallow the
    /// newline: every physical line keeps its own SourceLine, or every
    /// annotation and finding after the string reports a shifted line.
    #[test]
    fn string_continuation_preserves_line_count() {
        let ls = lex("let s = \"one \\\n    two\";\nlet x = 1; // audit:allow(panic, why)\n");
        assert_eq!(ls.len(), 3);
        assert!(ls[2].comment.contains("audit:allow"), "comment stays on physical line 3");
    }

    /// Strings spanning a line break close and reopen their quotes at
    /// the break, so each SourceLine has balanced quotes (the
    /// tokenizer's invariant) and code after the closing quote is kept.
    #[test]
    fn multi_line_string_keeps_per_line_quotes_balanced() {
        for src in ["let s = \"one \\\n  two\"; after();\n", "let s = \"one\n  two\"; after();\n"] {
            let ls = lex(src);
            assert_eq!(ls.len(), 2, "{src:?}");
            for l in &ls {
                assert_eq!(l.code.matches('"').count() % 2, 0, "{src:?} -> {:?}", l.code);
            }
            assert!(ls[1].code.contains("after"), "{src:?}");
            assert!(!ls[1].code.contains("two"), "string content stays blanked: {src:?}");
        }
    }
}
